#!/usr/bin/env python3
"""Serve smoke test: boot `tkc serve` on an ephemeral loopback port and
drive it with four concurrent clients (two writers, two readers) mixing
INSERT/BATCH against KAPPA/MAXK/TRUSS/STATS, then SHUTDOWN and assert a
clean exit. Exercises the real release binary end to end — process
startup, WAL recovery print, the wire protocol, and graceful shutdown.

A second scenario then boots the server with an armed WAL failpoint
(`--failpoint wal.append=enospc@N`), drives writes into the injected
disk-full error, and asserts degraded-mode serving: writes answer
`ERR`, reads keep answering from the last epoch, HEALTH and /metrics
report `read_only`, and the recovery supervisor brings the engine back
to `serving` on its own.

Usage: python3 scripts/serve_smoke.py target/release/tkc
"""

import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request


def connect(addr, timeout=15):
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection(addr, timeout=10)
            return sock, sock.makefile("r", encoding="ascii")
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


class ReconnClient:
    """A client that survives dropped connections: on any socket error it
    reconnects with bounded exponential backoff (0.05s doubling to 1s,
    at most `max_attempts` tries) and replays the command. Callers that
    must not retry non-idempotent commands pass retry=False and get the
    error back after the reconnect."""

    def __init__(self, addr, max_attempts=8):
        self.addr = addr
        self.max_attempts = max_attempts
        self.sock = None
        self.reader = None

    def _ensure(self):
        if self.sock is not None:
            return
        delay = 0.05
        for attempt in range(self.max_attempts):
            try:
                self.sock = socket.create_connection(self.addr, timeout=10)
                self.reader = self.sock.makefile("r", encoding="ascii")
                return
            except OSError:
                if attempt == self.max_attempts - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _drop(self):
        try:
            if self.sock is not None:
                self.sock.close()
        except OSError:
            pass
        self.sock = None
        self.reader = None

    def send(self, cmd, retry=True):
        attempts = self.max_attempts if retry else 1
        for attempt in range(attempts):
            try:
                self._ensure()
                self.sock.sendall((cmd + "\n").encode("ascii"))
                reply = self.reader.readline().rstrip("\n")
                if reply == "":  # peer closed mid-exchange
                    raise ConnectionResetError("empty reply")
                return reply
            except OSError:
                self._drop()
                if attempt == attempts - 1:
                    raise
                time.sleep(min(0.05 * (2 ** attempt), 1.0))

    def close(self):
        self._drop()


def send(sock, reader, cmd):
    sock.sendall((cmd + "\n").encode("ascii"))
    return reader.readline().rstrip("\n")


def read_stats(sock, reader):
    assert send(sock, reader, "STATS") == "OK"
    stats = {}
    while True:
        line = reader.readline().rstrip("\n")
        if line == ".":
            return stats
        key, _, value = line.partition(" ")
        stats[key] = value


def clique(base):
    return [(base + i, base + j) for i in range(5) for j in range(i + 1, 5)]


def scrape(metrics_url):
    """Fetches /metrics and returns {series_name_with_labels: float_value}."""
    with urllib.request.urlopen(metrics_url, timeout=10) as resp:
        assert resp.status == 200, f"GET /metrics -> {resp.status}"
        ctype = resp.headers.get("Content-Type", "")
        assert ctype.startswith("text/plain"), f"Content-Type {ctype!r}"
        text = resp.read().decode("utf-8")
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


def assert_monotonic(before, after):
    """Counter-shaped series must never decrease between two scrapes."""
    regressed = [
        name
        for name, value in before.items()
        if name.endswith(("_total", "_count", "_sum")) or "_bucket{" in name
        if after.get(name, 0.0) < value
    ]
    assert not regressed, f"counters went backwards: {regressed}"


def read_metrics_command(sock, reader):
    """Reads the `.`-terminated METRICS block, returns the raw lines."""
    assert send(sock, reader, "METRICS") == "OK"
    lines = []
    while True:
        line = reader.readline().rstrip("\n")
        if line == ".":
            return lines
        lines.append(line)


def writer_insert(addr, failures):
    try:
        sock, reader = connect(addr)
        assert send(sock, reader, "PING") == "OK pong"
        for u, v in clique(0):
            reply = send(sock, reader, f"INSERT {u} {v}")
            assert reply.startswith("OK"), f"INSERT {u} {v} -> {reply}"
        # Toggle one edge to exercise the REMOVE path durably.
        assert send(sock, reader, "REMOVE 0 1") == "OK removed"
        reply = send(sock, reader, "INSERT 0 1")
        assert reply.startswith("OK"), f"re-INSERT 0 1 -> {reply}"
        metrics = read_metrics_command(sock, reader)
        assert any(l.startswith("tkc_engine_removed_total") for l in metrics), (
            f"METRICS lacks tkc_engine_removed_total: {metrics[:5]}..."
        )
        send(sock, reader, "QUIT")
        sock.close()
    except Exception as e:  # noqa: BLE001 - report into the main thread
        failures.append(f"writer_insert: {e!r}")


def writer_batch(addr, failures):
    try:
        sock, reader = connect(addr)
        ops = clique(5)
        payload = f"BATCH {len(ops)}\n" + "".join(f"+ {u} {v}\n" for u, v in ops)
        sock.sendall(payload.encode("ascii"))
        reply = reader.readline().rstrip("\n")
        assert reply == f"OK queued {len(ops)}", f"BATCH -> {reply}"
        send(sock, reader, "QUIT")
        sock.close()
    except Exception as e:  # noqa: BLE001
        failures.append(f"writer_batch: {e!r}")


def reader_loop(addr, failures, rid):
    try:
        sock, reader = connect(addr)
        for _ in range(30):
            assert send(sock, reader, "MAXK").startswith("OK ")
            assert send(sock, reader, "TRUSS 3").startswith("OK cores=")
            kappa = send(sock, reader, "KAPPA 0 1")
            assert kappa.startswith("OK ") or kappa == "ERR no such edge", kappa
            assert "ops_applied" in read_stats(sock, reader)
        send(sock, reader, "QUIT")
        sock.close()
    except Exception as e:  # noqa: BLE001
        failures.append(f"reader_{rid}: {e!r}")


def boot(binary, state_dir, *extra):
    """Starts `tkc serve` and returns (proc, addr, metrics_url)."""
    proc = subprocess.Popen(
        [binary, "serve", state_dir, "--addr", "127.0.0.1:0", "--no-fsync",
         "--metrics-addr", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    addr = None
    metrics_url = None
    for line in proc.stdout:
        print("[degraded]", line.rstrip())
        if line.startswith("metrics listening on "):
            metrics_url = line.split()[-1]
        if line.startswith("tkc-engine listening on "):
            host, _, port = line.split()[-1].rpartition(":")
            addr = (host, int(port))
            break
    assert addr and metrics_url, "server never printed its addresses"
    return proc, addr, metrics_url


def degraded_scenario(binary):
    """Armed failpoint: the Nth WAL append hits ENOSPC. The server must
    degrade to read-only serving (not die), stay readable, surface the
    state via HEALTH and /metrics, and recover on its own."""
    with tempfile.TemporaryDirectory(prefix="tkc_serve_degraded_") as state_dir:
        # Append 1 is the WAL magic header, so trigger 40 = write #39.
        proc, addr, metrics_url = boot(
            binary, state_dir,
            "--failpoint", "wal.append=enospc@40",
            "--recover-backoff-ms", "1500",
        )
        try:
            c = ReconnClient(addr)
            assert c.send("HEALTH") == "OK serving"

            # A chain of distinct edges: one append per INSERT. Write
            # until the failpoint fires.
            degraded_at = None
            for i in range(60):
                reply = c.send(f"INSERT {i} {i + 1}", retry=False)
                if reply.startswith("ERR"):
                    degraded_at = i
                    assert reply.startswith(("ERR WAL", "ERR DEGRADED")), reply
                    break
            assert degraded_at is not None, "failpoint never fired in 60 writes"

            # Degraded: the health check names the state, reads still
            # answer from the last epoch, further writes are refused.
            health = c.send("HEALTH")
            assert health.startswith("OK read_only"), health
            assert c.send("MAXK").startswith("OK "), "reads must keep serving"
            assert c.send("KAPPA 0 1").startswith(("OK", "ERR no such edge"))
            refused = c.send("INSERT 900 901", retry=False)
            assert refused.startswith("ERR DEGRADED"), refused

            series = scrape(metrics_url)
            assert series['tkc_engine_state{state="read_only"}'] == 1.0, series
            assert series['tkc_engine_state{state="serving"}'] == 0.0, series
            assert series["tkc_engine_degraded_total"] >= 1.0, series
            assert series["tkc_faults_injected_total"] >= 1.0, series

            # The supervisor recovers without any operator action.
            deadline = time.monotonic() + 30
            while c.send("HEALTH") != "OK serving":
                assert time.monotonic() < deadline, "engine never recovered"
                time.sleep(0.25)
            assert c.send("INSERT 900 901", retry=False).startswith("OK")
            series = scrape(metrics_url)
            assert series["tkc_recoveries_total"] >= 1.0, series
            assert series['tkc_engine_state{state="serving"}'] == 1.0, series

            assert c.send("SHUTDOWN") == "OK shutting down"
            c.close()
            rest = proc.stdout.read()
            if rest:
                print("[degraded]", rest.rstrip())
            code = proc.wait(timeout=30)
            assert code == 0, f"degraded server exited with {code}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("degraded smoke OK: ENOSPC failpoint -> read-only serving -> "
          "supervised recovery -> writes restored")


def boot_repl(binary, state_dir, tag, *extra):
    """Starts `tkc serve` with replication flags and returns
    (proc, client_addr, repl_addr_or_None)."""
    proc = subprocess.Popen(
        [binary, "serve", state_dir, "--addr", "127.0.0.1:0", "--no-fsync",
         *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    addr = None
    repl_addr = None
    for line in proc.stdout:
        print(f"[{tag}]", line.rstrip())
        if line.startswith("replication listening on "):
            repl_addr = line.split()[-1]
        if line.startswith("tkc-engine listening on "):
            host, _, port = line.split()[-1].rpartition(":")
            addr = (host, int(port))
            break
    assert addr, f"{tag} never printed its listening address"
    return proc, addr, repl_addr


def repl_scenario(binary):
    """Two-node replication: writes land on the primary and become
    readable on the follower once the lag drains; follower writes are
    redirected with ERR READONLY; PROMOTE fences the old primary (it
    refuses writes at the lower term) and makes the follower writable;
    after the old primary is killed the promoted node keeps serving."""
    with tempfile.TemporaryDirectory(prefix="tkc_repl_primary_") as p_dir, \
         tempfile.TemporaryDirectory(prefix="tkc_repl_follower_") as f_dir:
        p_proc, p_addr, repl_addr = boot_repl(
            binary, p_dir, "primary", "--repl-addr", "127.0.0.1:0")
        assert repl_addr, "primary never printed its replication address"
        f_proc, f_addr, _ = boot_repl(
            binary, f_dir, "follower", "--follow", repl_addr)
        try:
            p = ReconnClient(p_addr)
            f = ReconnClient(f_addr)
            assert p.send("HEALTH") == "OK serving"

            # Write a K5 to the primary; every edge settles at kappa 3.
            ops = clique(0)
            for u, v in ops:
                reply = p.send(f"INSERT {u} {v}", retry=False)
                assert reply.startswith("OK"), f"INSERT {u} {v} -> {reply}"

            # Read-your-write from the follower once the lag drains.
            deadline = time.monotonic() + 30
            while True:
                sock, reader = connect(f_addr)
                stats = read_stats(sock, reader)
                reader.close()
                sock.close()
                if (int(stats.get("repl_ops_applied", 0)) >= len(ops)
                        and int(stats.get("repl_lag_seq", 1)) == 0):
                    break
                assert time.monotonic() < deadline, \
                    f"follower lag never drained: {stats}"
                time.sleep(0.1)
            assert f.send("EPOCH").startswith("OK ")
            assert f.send("KAPPA 0 1") == "OK 3"
            assert f.send("MAXK") == "OK 3"

            # Follower writes are redirected to the primary.
            refused = f.send("INSERT 90 91", retry=False)
            assert refused == f"ERR READONLY {repl_addr}", refused
            health = f.send("HEALTH")
            assert health.startswith(f"OK follower following {repl_addr}"), health

            # PROMOTE: the follower becomes writable at term 1 and the
            # still-running old primary is fenced read-only.
            assert f.send("PROMOTE") == "OK promoted term=1"
            assert f.send("INSERT 90 91", retry=False).startswith("OK")
            deadline = time.monotonic() + 30
            while not p.send("HEALTH").startswith("OK read_only"):
                assert time.monotonic() < deadline, "old primary never fenced"
                time.sleep(0.1)
            fenced = p.send("INSERT 92 93", retry=False)
            assert fenced.startswith("ERR DEGRADED"), fenced
            # The fence is sticky: the recovery supervisor must not
            # resurrect the superseded primary into a writable state.
            time.sleep(1.0)
            assert p.send("HEALTH").startswith("OK read_only")

            # Kill the old primary outright; the promoted node keeps
            # serving both reads and writes on its own.
            p.close()
            p_proc.kill()
            p_proc.wait()
            assert f.send("INSERT 94 95", retry=False).startswith("OK")
            assert f.send("HEALTH") == "OK serving"
            assert f.send("KAPPA 0 1") == "OK 3"

            assert f.send("SHUTDOWN") == "OK shutting down"
            f.close()
            rest = f_proc.stdout.read()
            if rest:
                print("[follower]", rest.rstrip())
            assert f_proc.wait(timeout=30) == 0, "promoted follower exit"
        finally:
            for proc in (p_proc, f_proc):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
    print("repl smoke OK: follower read-your-write after lag drain, "
          "ERR READONLY redirect, PROMOTE fenced the old primary, "
          "promoted node served writes after primary kill")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="tkc_serve_smoke_") as state_dir:
        proc = subprocess.Popen(
            [binary, "serve", state_dir, "--addr", "127.0.0.1:0", "--no-fsync",
             "--epoch-ops", "8", "--metrics-addr", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # The server prints "metrics listening on http://<addr>/metrics"
            # and then "tkc-engine listening on <addr>" once bound.
            addr = None
            metrics_url = None
            for line in proc.stdout:
                print("[server]", line.rstrip())
                if line.startswith("metrics listening on "):
                    metrics_url = line.split()[-1]
                if line.startswith("tkc-engine listening on "):
                    host, _, port = line.split()[-1].rpartition(":")
                    addr = (host, int(port))
                    break
            assert addr, "server never printed its listening address"
            assert metrics_url, "server never printed its metrics address"

            failures = []
            threads = [
                threading.Thread(target=writer_insert, args=(addr, failures)),
                threading.Thread(target=writer_batch, args=(addr, failures)),
                threading.Thread(target=reader_loop, args=(addr, failures, 1)),
                threading.Thread(target=reader_loop, args=(addr, failures, 2)),
            ]
            for t in threads:
                t.start()
            # Scrape twice while the clients hammer the server: every
            # counter-shaped series must be monotonically non-decreasing.
            mid1 = scrape(metrics_url)
            time.sleep(0.2)
            mid2 = scrape(metrics_url)
            assert_monotonic(mid1, mid2)
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "client thread hung"
            assert not failures, "; ".join(failures)

            # Wait for the queued batch to drain, then check the merged
            # state: two disjoint K5s, every edge at kappa = 3.
            sock, reader = connect(addr)
            deadline = time.monotonic() + 15
            while int(read_stats(sock, reader).get("ops_applied", 0)) < 22:
                assert time.monotonic() < deadline, "batch queue never drained"
                time.sleep(0.05)

            assert send(sock, reader, "EPOCH").startswith("OK ")

            # Final scrape (after EPOCH, so the snapshot gauges caught up):
            # counters must agree with the ops we issued and with the STATS
            # wire block, still monotonic vs the mid-load scrapes, and span
            # every instrumented layer. The writers issued 10 INSERTs, a
            # REMOVE + re-INSERT toggle, and one BATCH of 10 ops
            # = 13 applies / WAL appends, 22 ops (20 live edges).
            final = scrape(metrics_url)
            assert_monotonic(mid2, final)
            stats = read_stats(sock, reader)
            assert final["tkc_engine_ops_applied_total"] == 22.0, final
            assert int(stats["ops_applied"]) == 22, stats
            assert final['tkc_server_requests_total{cmd="INSERT"}'] == 11.0, final
            assert final['tkc_server_requests_total{cmd="REMOVE"}'] == 1.0, final
            assert final["tkc_engine_removed_total"] == 1.0, final
            assert final['tkc_server_requests_total{cmd="BATCH"}'] == 1.0, final
            assert final["tkc_engine_wal_bytes_total"] > 0, final
            assert final["tkc_engine_wal_appends_total"] >= 13, final
            assert final["tkc_engine_apply_seconds_count"] >= 13, final
            assert final["tkc_engine_triangles_per_op_count"] == 22.0, final
            assert final["tkc_engine_epochs_published_total"] >= 1, final
            assert final["tkc_graph_edges"] == 20.0, final
            families = {name.split("{")[0] for name in final}
            # Strip histogram sub-series down to their family name.
            families = {
                f.rsplit("_bucket", 1)[0].rsplit("_sum", 1)[0].rsplit("_count", 1)[0]
                for f in families
            }
            assert len(families) >= 12, f"only {len(families)} series: {sorted(families)}"
            assert send(sock, reader, "KAPPA 0 1") == "OK 3"
            assert send(sock, reader, "KAPPA 5 9") == "OK 3"
            assert send(sock, reader, "MAXK") == "OK 3"
            assert send(sock, reader, "TRUSS 3") == "OK cores=2 edges=20 vertices=10"
            assert send(sock, reader, "SHUTDOWN") == "OK shutting down"
            sock.close()

            rest = proc.stdout.read()
            if rest:
                print("[server]", rest.rstrip())
            code = proc.wait(timeout=30)
            assert code == 0, f"server exited with {code}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Graceful shutdown compacts: the state file exists and a second
        # serve recovers the graph from it (WAL-replay equivalence is
        # covered by the Rust integration tests).
        import os

        assert os.path.exists(os.path.join(state_dir, "state.tkc")), \
            "graceful shutdown must leave a compacted state file"
        # The restarted server also carries the request-span surface:
        # --slow-op-ms 0 logs every request (elapsed > threshold) with
        # its completed span tree, and --slo arms per-verb objectives
        # behind the SLO verb and the tkc_slo_* gauges.
        proc2 = subprocess.Popen(
            [binary, "serve", state_dir, "--addr", "127.0.0.1:0", "--no-fsync",
             "--metrics-addr", "127.0.0.1:0",
             "--slow-op-ms", "0", "--slo", "INSERT=50,KAPPA=50"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            addr = None
            metrics_url = None
            for line in proc2.stdout:
                print("[restart]", line.rstrip())
                if line.startswith("metrics listening on "):
                    metrics_url = line.split()[-1]
                if line.startswith("tkc-engine listening on "):
                    host, _, port = line.split()[-1].rpartition(":")
                    addr = (host, int(port))
                    break
            assert addr, "restarted server never printed its address"
            assert metrics_url, "restarted server never printed its metrics address"
            sock, reader = connect(addr)
            assert send(sock, reader, "KAPPA 0 1") == "OK 3"
            assert send(sock, reader, "MAXK") == "OK 3"

            def read_block():
                lines = []
                while True:
                    line = reader.readline().rstrip("\n")
                    if line == ".":
                        return lines
                    lines.append(line)

            # SLO: the configured objectives answer with status lines.
            assert send(sock, reader, "SLO") == "OK"
            slo_lines = read_block()
            assert any(l.startswith("KAPPA ") and "status=" in l
                       for l in slo_lines), slo_lines
            assert any(l.startswith("INSERT ") for l in slo_lines), slo_lines

            # TRACE: span records for the requests just served, as JSONL.
            assert send(sock, reader, "TRACE 50") == "OK"
            trace_lines = read_block()
            assert any('"kind":"span"' in l for l in trace_lines), trace_lines
            assert any('"name":"KAPPA"' in l for l in trace_lines), trace_lines

            series = scrape(metrics_url)
            assert 'tkc_slo_burn_rate{cmd="KAPPA"}' in series, sorted(series)
            assert series["tkc_server_slow_ops_total"] >= 2.0, series

            assert send(sock, reader, "SHUTDOWN") == "OK shutting down"
            sock.close()
            rest = proc2.stdout.read()
            if rest:
                print("[restart]", rest.rstrip())
            assert proc2.wait(timeout=30) == 0
            # With the threshold at 0 ms every request is "slow": the
            # slow-op log must have fired with a rendered span tree
            # (the parse child span shows up inside the tree).
            assert "slow op KAPPA" in rest, "slow-op log never fired"
            assert "parse" in rest, "slow-op log lacks the span tree"
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()
    print("serve smoke OK: 4 concurrent clients, graceful shutdown, "
          "state compacted and recovered on restart, slow-op log + "
          "SLO/TRACE verbs live")
    degraded_scenario(binary)
    repl_scenario(binary)


if __name__ == "__main__":
    main()
