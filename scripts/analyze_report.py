#!/usr/bin/env python3
"""Summarize (and optionally diff) `tkc analyze --format json` output.

CI usage (the `analyze` job):

    cargo run -q -p tkc-cli -- analyze --format json | tee analyze.json
    python3 scripts/analyze_report.py analyze.json

Prints a per-lint breakdown of active and allowlisted findings and exits
nonzero when any active (non-allowlisted) finding is present, so the job
fails even if the producing pipeline masked the analyzer's own exit code.

Drift review between two runs (e.g. a PR branch vs. main):

    python3 scripts/analyze_report.py --diff base.json head.json

lists findings that appeared or disappeared, keyed by
(lint, file, message) — line numbers are ignored so pure code motion does
not read as drift. --diff exits nonzero only on *new active* findings;
newly-allowlisted ones are reported but do not fail, matching the
analyzer's own gating rule (see DESIGN.md §11).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"analyze_report: cannot read {path}: {err}")
    for field in ("findings", "files_scanned", "active", "allowed"):
        if field not in report:
            sys.exit(f"analyze_report: {path} is missing {field!r} — "
                     "not a `tkc analyze --format json` report?")
    return report


def is_active(finding: dict) -> bool:
    return not finding.get("allowed_by")


def key(finding: dict) -> tuple:
    """Identity of a finding across runs: line numbers excluded so code
    motion above a site does not register as appearance + disappearance."""
    return (finding["lint"], finding["file"], finding["message"])


def summarize(path: str) -> int:
    report = load(path)
    findings = report["findings"]
    by_lint_active = Counter(f["lint"] for f in findings if is_active(f))
    by_lint_allowed = Counter(f["lint"] for f in findings if not is_active(f))

    print(f"analyze report: {report['files_scanned']} file(s) scanned, "
          f"{report['active']} active, {report['allowed']} allowlisted")
    for lint in sorted(set(by_lint_active) | set(by_lint_allowed)):
        print(f"  {lint:22} active={by_lint_active[lint]:<4} "
              f"allowed={by_lint_allowed[lint]}")

    active = [f for f in findings if is_active(f)]
    if active:
        print("\nactive findings (these gate CI):")
        for f in active:
            print(f"  {f['severity']}: [{f['lint']}] "
                  f"{f['file']}:{f['line']}: {f['message']}")
        return 1
    return 0


def diff(base_path: str, head_path: str) -> int:
    base = load(base_path)
    head = load(head_path)
    base_keys = {key(f): f for f in base["findings"]}
    head_keys = {key(f): f for f in head["findings"]}

    appeared = [head_keys[k] for k in head_keys.keys() - base_keys.keys()]
    disappeared = [base_keys[k] for k in base_keys.keys() - head_keys.keys()]
    # Suppression drift: same finding, allowlist status flipped.
    flipped = [(base_keys[k], head_keys[k])
               for k in head_keys.keys() & base_keys.keys()
               if is_active(base_keys[k]) != is_active(head_keys[k])]

    def show(label: str, items: list) -> None:
        print(f"{label}: {len(items)}")
        for f in items:
            status = "active" if is_active(f) else "allowlisted"
            print(f"  [{f['lint']}] {f['file']}:{f['line']} ({status}): "
                  f"{f['message']}")

    show("appeared", appeared)
    show("disappeared", disappeared)
    if flipped:
        print(f"allowlist status changed: {len(flipped)}")
        for old, new in flipped:
            arrow = "active -> allowlisted" if is_active(old) else \
                    "allowlisted -> active"
            print(f"  [{new['lint']}] {new['file']}:{new['line']}: {arrow}")

    new_active = [f for f in appeared if is_active(f)]
    new_active += [new for _, new in flipped if is_active(new)]
    if new_active:
        print(f"\n{len(new_active)} new active finding(s) — gate fails")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Summarize or diff tkc analyze JSON reports")
    parser.add_argument("reports", nargs="+",
                        help="one report to summarize, or two with --diff")
    parser.add_argument("--diff", action="store_true",
                        help="diff two reports (base head) instead of "
                             "summarizing one")
    args = parser.parse_args()

    if args.diff:
        if len(args.reports) != 2:
            parser.error("--diff needs exactly two reports: base head")
        return diff(args.reports[0], args.reports[1])
    if len(args.reports) != 1:
        parser.error("summary mode takes exactly one report")
    return summarize(args.reports[0])


if __name__ == "__main__":
    sys.exit(main())
