//! # tkc-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4) plus shared
//! plumbing: wall-clock timing, aligned text tables, and an output
//! directory for SVG/TSV artifacts.
//!
//! Environment knobs honored by every binary:
//!
//! * `TKC_SCALE` — global multiplier on each dataset's default scale
//!   (e.g. `TKC_SCALE=0.1` for a quick smoke run);
//! * `TKC_SEED` — base RNG seed (default 42);
//! * `TKC_OUT`  — artifact directory (default `target/experiments`).

// Experiment harness: figure/table binaries panic on malformed inputs by
// design (the run is the report). See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Seconds with adaptive precision, matching the paper's tables
/// (`0.005`, `0.70`, `561`).
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 0.01 {
        format!("{s:.3}")
    } else {
        format!("{s:.5}")
    }
}

/// Global scale multiplier from `TKC_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("TKC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Base seed from `TKC_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("TKC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Artifact directory from `TKC_OUT` (default `target/experiments`),
/// created on first use.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("TKC_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// Writes an artifact file into [`out_dir`] and reports its path.
pub fn write_artifact(name: &str, content: &str) -> PathBuf {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write artifact");
    println!("  wrote {}", path.display());
    path
}

/// Builds every Table I dataset at `scale_mult ×` its default scale.
/// Returns `(info, effective_scale, graph)` triples in Table I order.
pub fn build_all_datasets(
    scale_mult: f64,
    seed: u64,
) -> Vec<(tkc_datasets::DatasetInfo, f64, tkc_graph::Graph)> {
    tkc_datasets::DatasetId::all()
        .into_iter()
        .map(|id| {
            let info = id.info();
            let scale = info.default_scale * scale_mult;
            let g = tkc_datasets::build(id, scale, seed);
            (info, scale, g)
        })
        .collect()
}

/// A simple aligned text table for paper-style console output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(out.trim_end().chars().count()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as TSV for artifacts.
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn fmt_secs_precision_bands() {
        assert_eq!(fmt_secs(Duration::from_secs(561)), "561");
        assert_eq!(fmt_secs(Duration::from_millis(2700)), "2.70");
        assert_eq!(fmt_secs(Duration::from_millis(27)), "0.027");
        assert_eq!(fmt_secs(Duration::from_micros(50)), "0.00005");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Graph", "Time"]);
        t.row(vec!["PPI", "0.1"]);
        t.row(vec!["LiveJournal", "306"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Graph"));
        assert!(lines[2].ends_with("0.1"));
        assert_eq!(t.to_tsv().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
