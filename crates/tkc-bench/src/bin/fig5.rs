#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 5 — the DN-Graph coverage gap: in the example graph only BCDE is
//! a DN-Graph, so vertex A belongs to none; the per-edge λ(e)/κ(e) values
//! still give A's edges a local density, which is the point of §VI.

use tkc_baselines::dngraph::bitridn;
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_graph::Graph;

fn main() {
    let names = ["A", "B", "C", "D", "E"];
    // A=0 attached to B=1 and C=2 of the K4 {B,C,D,E}.
    let g = Graph::from_edges(
        5,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
        ],
    );
    let d = triangle_kcore_decomposition(&g);
    let est = bitridn(&g);
    println!("Figure 5: DN-Graph example — per-edge λ (converged) vs κ\n");
    for (e, u, v) in g.edges() {
        println!(
            "  {}{}: λ = {}  κ = {}",
            names[u.index()],
            names[v.index()],
            est.lambda(e),
            d.kappa(e)
        );
        assert_eq!(est.lambda(e), d.kappa(e), "Claim 3");
    }
    println!("\nOnly BCDE is a DN-Graph (λ = 2 subgraph); vertex A is in none.");
    println!("But A's edges carry λ = κ = 1, so every vertex still gets a local density —");
    println!("the coverage advantage of the per-edge Triangle K-Core view (§VI problem 1).");
}
