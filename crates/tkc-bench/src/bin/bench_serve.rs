//! `bench_serve` — the served-latency trajectory (`BENCH_serve.json`).
//!
//! Boots the **release `tkc serve` binary** on ephemeral loopback ports
//! and drives it with an open-loop multi-connection load generator: each
//! connection sends requests on a fixed schedule (arrival times are
//! `start + k/rate`, independent of how fast replies come back), so a
//! slow server shows up as queueing delay in the numbers instead of
//! silently throttling the generator — the coordinated-omission-free
//! way to measure a served latency distribution.
//!
//! The verb mix is seeded and deterministic (`TKC_SEED`): reads
//! (`KAPPA`/`MAXK`/`TRUSS`) against durable `INSERT` writes. Two client
//! latencies are recorded per request — scheduled-time latency (includes
//! open-loop queueing) and pure RTT — and reduced to exact per-verb
//! p50/p90/p99 from the sorted samples. The server's own
//! `tkc_server_command_seconds` histograms are then scraped from `/metrics`
//! and folded to bucket-upper-bound quantiles; the run **hard-asserts**
//! that client RTT p99 and the server's p99 bound agree within a
//! generous factor, so a unit mix-up or a dead histogram fails the
//! bench rather than producing a quietly wrong record. The `SLO` and
//! `TRACE` verbs are exercised on the way out, and the server's span
//! trace lands at `--trace-out` (default `target/bench_serve_trace.jsonl`)
//! for `tkc obs report`.
//!
//! ```text
//! cargo run --release -p tkc-bench --bin bench_serve            # full
//! cargo run --release -p tkc-bench --bin bench_serve -- --quick # CI smoke
//! ```
//!
//! Flags: `--quick` shrinks connections/requests for CI; `--out <path>`
//! overrides the JSON destination (default `BENCH_serve.json`); `--bin
//! <path>` points at the server binary (default `target/release/tkc`);
//! `--trace-out <path>` relocates the span trace.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tkc_bench::seed_from_env;

/// The load mix: verb name, sampling weight, and whether it writes.
const MIX: [(&str, u32); 4] = [("KAPPA", 50), ("MAXK", 15), ("TRUSS", 15), ("INSERT", 20)];

/// One connection's worth of samples: `(verb index, scheduled-time
/// latency, rtt)` per request.
type Samples = Vec<(usize, Duration, Duration)>;

/// A blocking line-protocol client over one TCP connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    // The benchmark measures the server, not Nagle.
                    stream.set_nodelay(true).unwrap();
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Client { stream, reader };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one command and reads its single-line reply.
    fn send(&mut self, cmd: &str) -> String {
        writeln!(self.stream, "{cmd}").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("reply");
        line.trim_end().to_string()
    }

    /// Reads a `.`-terminated multi-line body after an `OK` status line.
    fn send_block(&mut self, cmd: &str) -> Vec<String> {
        let status = self.send(cmd);
        assert_eq!(status, "OK", "{cmd} -> {status}");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("block line");
            let line = line.trim_end().to_string();
            if line == "." {
                return lines;
            }
            lines.push(line);
        }
    }
}

/// Exact quantile from a sorted sample vector (nearest-rank on the
/// inclusive index scale, the same convention `numpy.percentile`'s
/// `lower` interpolation rounds to).
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One open-loop load connection: `n` requests at `rate` per second,
/// latency measured from each request's *scheduled* time.
fn load_connection(addr: SocketAddr, seed: u64, n: usize, rate: f64, vertices: u32) -> Samples {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut client = Client::connect(addr);
    assert_eq!(client.send("PING"), "OK pong");
    let period = Duration::from_secs_f64(1.0 / rate);
    let total_weight: u32 = MIX.iter().map(|m| m.1).sum();
    let mut samples = Vec::with_capacity(n);
    let start = Instant::now();
    for k in 0..n {
        let scheduled = start + period.mul_f64(k as f64);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let mut pick = rng.gen_range(0u32..total_weight);
        let verb_idx = MIX
            .iter()
            .position(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .unwrap();
        let u = rng.gen_range(0u32..vertices);
        let v = (u + 1 + rng.gen_range(0u32..vertices - 1)) % vertices;
        let cmd = match MIX[verb_idx].0 {
            "KAPPA" => format!("KAPPA {u} {v}"),
            "MAXK" => "MAXK".to_string(),
            "TRUSS" => format!("TRUSS {}", rng.gen_range(1u32..4)),
            _ => format!("INSERT {u} {v}"),
        };
        let sent = Instant::now();
        let reply = client.send(&cmd);
        let done = Instant::now();
        assert!(
            reply.starts_with("OK") || reply == "ERR no such edge",
            "{cmd} -> {reply}"
        );
        samples.push((verb_idx, done - scheduled, done - sent));
    }
    client.send("QUIT");
    samples
}

/// Pulls per-verb bucket-bound quantiles out of a `/metrics` scrape:
/// returns `(count, p50, p90, p99)` upper bounds in seconds for one
/// `cmd` label of `tkc_server_command_seconds`.
fn server_histogram(metrics: &str, verb: &str) -> Option<(u64, f64, f64, f64)> {
    let bucket_prefix = format!("tkc_server_command_seconds_bucket{{cmd=\"{verb}\"");
    let count_prefix = format!("tkc_server_command_seconds_count{{cmd=\"{verb}\"}}");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    let mut count = 0u64;
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(&bucket_prefix) {
            let le_raw = rest
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())?;
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                le_raw.parse().ok()?
            };
            let value: f64 = line.rsplit(' ').next()?.parse().ok()?;
            buckets.push((le, value));
        } else if let Some(rest) = line.strip_prefix(&count_prefix) {
            count = rest.trim().parse().ok()?;
        }
    }
    if buckets.is_empty() || count == 0 {
        return None;
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = count as f64;
    let bound = |q: f64| -> f64 {
        buckets
            .iter()
            .find(|(_, cum)| *cum >= q * total)
            .map(|(le, _)| *le)
            .unwrap_or(f64::INFINITY)
    };
    Some((count, bound(0.5), bound(0.9), bound(0.99)))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Boots one `tkc serve` process for the replication phase and returns
/// the child, its client address, the replication listen address (when
/// started with `--repl-addr`), and the stdout drain thread.
fn boot_repl_node(
    bin: &str,
    state_dir: &std::path::Path,
    tag: &'static str,
    extra: &[&str],
) -> (
    std::process::Child,
    SocketAddr,
    Option<String>,
    std::thread::JoinHandle<()>,
) {
    let mut proc = std::process::Command::new(bin)
        .arg("serve")
        .arg(state_dir)
        .args(["--addr", "127.0.0.1:0", "--no-fsync"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stdout = proc.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr: Option<SocketAddr> = None;
    let mut repl_addr: Option<String> = None;
    for line in lines.by_ref() {
        let line = line.expect("server stdout");
        println!("[{tag}] {line}");
        if let Some(rest) = line.strip_prefix("replication listening on ") {
            repl_addr = Some(rest.trim().to_string());
        }
        if let Some(rest) = line.strip_prefix("tkc-engine listening on ") {
            addr = Some(rest.trim().parse().expect("serve addr"));
            break;
        }
    }
    let drain = std::thread::spawn(move || {
        for line in lines.by_ref().map_while(Result::ok) {
            println!("[{tag}] {line}");
        }
    });
    (
        proc,
        addr.unwrap_or_else(|| panic!("{tag} never printed its address")),
        repl_addr,
        drain,
    )
}

/// The replication phase: a primary/follower pair on loopback. Measures
/// (a) write-to-follower-visibility lag — one fresh edge per sample is
/// inserted at the primary and the follower is polled until `KAPPA`
/// sees it — and (b) follower-read service latency under the same
/// open-loop discipline as the standalone phase. Returns the
/// `"replication"` JSON fragment for `BENCH_serve.json`.
fn replication_phase(bin: &str, quick: bool, seed: u64) -> String {
    let (preload_edges, lag_samples, read_conns, reads_per_conn, read_rate) = if quick {
        (200u32, 40usize, 2usize, 400usize, 400.0f64)
    } else {
        (1000, 200, 4, 1200, 500.0)
    };
    let vertices: u32 = if quick { 120 } else { 600 };

    let root = std::env::temp_dir().join(format!("tkc_bench_repl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create repl bench dirs");
    let (mut p_proc, p_addr, p_repl, p_drain) = boot_repl_node(
        bin,
        &root.join("primary"),
        "primary",
        &["--repl-addr", "127.0.0.1:0"],
    );
    let p_repl = p_repl.expect("primary never printed its replication address");
    let (mut f_proc, f_addr, _, f_drain) = boot_repl_node(
        bin,
        &root.join("follower"),
        "follower",
        &["--follow", &p_repl],
    );

    // Preload through the primary, then wait for the follower to drain.
    let mut primary = Client::connect(p_addr);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e17);
    let mut batch = format!("BATCH {preload_edges}\n");
    for _ in 0..preload_edges {
        let u = rng.gen_range(0u32..vertices);
        let v = (u + 1 + rng.gen_range(0u32..vertices - 1)) % vertices;
        batch.push_str(&format!("+ {u} {v}\n"));
    }
    primary.stream.write_all(batch.as_bytes()).expect("preload");
    let mut line = String::new();
    primary.reader.read_line(&mut line).expect("preload reply");
    assert!(line.starts_with("OK queued"), "preload -> {line}");
    assert!(primary.send("EPOCH").starts_with("OK"));
    let mut follower = Client::connect(f_addr);
    let drained = |c: &mut Client| {
        let stats = c.send_block("STATS");
        let get = |key: &str| {
            stats
                .iter()
                .find_map(|l| l.strip_prefix(key).map(|v| v.trim().to_string()))
                .unwrap_or_default()
        };
        get("repl_lag_seq ") == "0" && get("repl_ops_applied ") != "0"
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !drained(&mut follower) {
        assert!(
            Instant::now() < deadline,
            "follower preload lag never drained"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let redirected = follower.send("INSERT 0 1");
    assert!(
        redirected.starts_with("ERR READONLY"),
        "follower accepted a write: {redirected}"
    );

    // (a) Replication lag: each sample inserts one edge between fresh
    // vertices at the primary and polls the follower's applied-seq
    // watermark (`STATS seq`) until it covers the write — wall time
    // from the primary's OK to the op being applied on the follower.
    // Reads are epochal on both roles (publish every `epoch_ops`), so
    // the watermark, not `KAPPA` visibility, is the replication lag.
    let follower_seq = |c: &mut Client| -> u64 {
        c.send_block("STATS")
            .iter()
            .find_map(|l| l.strip_prefix("seq ").and_then(|v| v.trim().parse().ok()))
            .expect("STATS without a seq watermark")
    };
    let mut lags: Vec<Duration> = Vec::with_capacity(lag_samples);
    for i in 0..lag_samples as u32 {
        let (u, v) = (vertices + 2 * i, vertices + 2 * i + 1);
        let target = u64::from(preload_edges + i + 1);
        let reply = primary.send(&format!("INSERT {u} {v}"));
        assert!(reply.starts_with("OK"), "INSERT {u} {v} -> {reply}");
        let sent = Instant::now();
        while follower_seq(&mut follower) < target {
            assert!(
                sent.elapsed() < Duration::from_secs(30),
                "seq {target} never reached the follower"
            );
        }
        lags.push(sent.elapsed());
    }
    lags.sort_unstable();
    // Epochal read-your-write: once the watermark covers the writes, a
    // forced publish makes the freshest edge readable on the follower.
    assert!(follower.send("EPOCH").starts_with("OK"));
    let last = vertices + 2 * (lag_samples as u32 - 1);
    let reply = follower.send(&format!("KAPPA {last} {}", last + 1));
    assert!(reply.starts_with("OK"), "follower read-your-write: {reply}");

    // (b) Follower reads under open-loop load (reads only: the follower
    // redirects writes, so the mix is the read verbs re-weighted).
    let read_start = Instant::now();
    let handles: Vec<_> = (0..read_conns)
        .map(|i| {
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xf0 ^ (i as u64) << 8);
                let mut client = Client::connect(f_addr);
                let period = Duration::from_secs_f64(1.0 / read_rate);
                let mut samples: Vec<(Duration, Duration)> = Vec::with_capacity(reads_per_conn);
                let start = Instant::now();
                for k in 0..reads_per_conn {
                    let scheduled = start + period.mul_f64(k as f64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let u = rng.gen_range(0u32..vertices);
                    let v = (u + 1 + rng.gen_range(0u32..vertices - 1)) % vertices;
                    let cmd = match k % 4 {
                        0 => "MAXK".to_string(),
                        1 => format!("TRUSS {}", rng.gen_range(1u32..4)),
                        _ => format!("KAPPA {u} {v}"),
                    };
                    let sent = Instant::now();
                    let reply = client.send(&cmd);
                    let done = Instant::now();
                    assert!(
                        reply.starts_with("OK") || reply == "ERR no such edge",
                        "{cmd} -> {reply}"
                    );
                    samples.push((done - scheduled, done - sent));
                }
                client.send("QUIT");
                samples
            })
        })
        .collect();
    let mut sched: Vec<Duration> = Vec::new();
    let mut rtt: Vec<Duration> = Vec::new();
    for h in handles {
        for (s, r) in h.join().expect("follower read connection panicked") {
            sched.push(s);
            rtt.push(r);
        }
    }
    let read_elapsed = read_start.elapsed();
    sched.sort_unstable();
    rtt.sort_unstable();

    tkc_obs::info!(
        "  replication: lag p50/p90/p99 {:.3}/{:.3}/{:.3} ms over {} writes; \
         follower reads {} reqs p50/p90/p99 {:.3}/{:.3}/{:.3} ms (rtt p99 {:.3} ms)",
        ms(quantile(&lags, 0.5)),
        ms(quantile(&lags, 0.9)),
        ms(quantile(&lags, 0.99)),
        lags.len(),
        rtt.len(),
        ms(quantile(&sched, 0.5)),
        ms(quantile(&sched, 0.9)),
        ms(quantile(&sched, 0.99)),
        ms(quantile(&rtt, 0.99)),
    );

    assert_eq!(follower.send("SHUTDOWN"), "OK shutting down");
    assert!(f_proc.wait().expect("follower wait").success());
    f_drain.join().expect("follower drain");
    assert_eq!(primary.send("SHUTDOWN"), "OK shutting down");
    assert!(p_proc.wait().expect("primary wait").success());
    p_drain.join().expect("primary drain");
    let _ = std::fs::remove_dir_all(&root);

    format!(
        concat!(
            "  \"replication\": {{\n",
            "    \"lag\": {{\"samples\":{},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3}}},\n",
            "    \"follower_read\": {{\"count\":{},\"open_loop_rate_per_conn\":{:.0},",
            "\"load_millis\":{:.1},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},",
            "\"rtt_p50_ms\":{:.3},\"rtt_p99_ms\":{:.3}}}\n",
            "  }}"
        ),
        lags.len(),
        ms(quantile(&lags, 0.5)),
        ms(quantile(&lags, 0.9)),
        ms(quantile(&lags, 0.99)),
        rtt.len(),
        read_rate,
        ms(read_elapsed),
        ms(quantile(&sched, 0.5)),
        ms(quantile(&sched, 0.9)),
        ms(quantile(&sched, 0.99)),
        ms(quantile(&rtt, 0.5)),
        ms(quantile(&rtt, 0.99)),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let bin = flag("--bin").unwrap_or_else(|| "target/release/tkc".to_string());
    let trace_out = flag("--trace-out").unwrap_or_else(|| "target/bench_serve_trace.jsonl".into());
    let seed = seed_from_env();
    // Full mode keeps the graph sparse (mean degree ~6 after preload):
    // INSERT cascade cost grows superlinearly with density, and an
    // offered rate the writer cannot sustain turns the scheduled-time
    // percentiles into a queueing-delay measurement instead of a
    // service-latency trajectory.
    let (conns, requests_per_conn, rate) = if quick {
        (4, 250, 400.0)
    } else {
        (8, 1500, 500.0)
    };
    let vertices: u32 = if quick { 120 } else { 1200 };
    let preload_edges = if quick { 600 } else { 2400 };

    let state_dir = std::env::temp_dir().join(format!("tkc_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).expect("create state dir");

    // Boot the real release binary with the full observability surface
    // on: SLO objectives, span recording (via --trace-out), and a
    // slow-op threshold high enough to stay quiet under healthy load.
    let mut proc = std::process::Command::new(&bin)
        .args([
            "serve",
            state_dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--no-fsync",
            "--slo",
            "INSERT=50,KAPPA=10,MAXK=10,TRUSS=20",
            "--slow-op-ms",
            "250",
            "--trace-out",
            &trace_out,
            "--trace-cap",
            "8192",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e} (build with cargo build --release first)"));
    let stdout = proc.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr: Option<SocketAddr> = None;
    let mut metrics_addr: Option<SocketAddr> = None;
    for line in lines.by_ref() {
        let line = line.expect("server stdout");
        println!("[serve] {line}");
        if let Some(rest) = line.strip_prefix("metrics listening on http://") {
            let hostport = rest.split('/').next().unwrap_or_default();
            metrics_addr = Some(hostport.parse().expect("metrics addr"));
        }
        if let Some(rest) = line.strip_prefix("tkc-engine listening on ") {
            addr = Some(rest.trim().parse().expect("serve addr"));
            break;
        }
    }
    let addr = addr.expect("server never printed its address");
    let metrics_addr = metrics_addr.expect("server never printed its metrics address");
    // Keep the pipe drained so the shutdown prints cannot block the child.
    let drain = std::thread::spawn(move || {
        for line in lines.by_ref().map_while(Result::ok) {
            println!("[serve] {line}");
        }
    });

    // Preload a seeded graph through the batch-ingest path, then force
    // an epoch so reads hit a populated snapshot.
    let mut setup = Client::connect(addr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut batch = format!("BATCH {preload_edges}\n");
    for _ in 0..preload_edges {
        let u = rng.gen_range(0u32..vertices);
        let v = (u + 1 + rng.gen_range(0u32..vertices - 1)) % vertices;
        batch.push_str(&format!("+ {u} {v}\n"));
    }
    setup.stream.write_all(batch.as_bytes()).expect("preload");
    let mut line = String::new();
    setup.reader.read_line(&mut line).expect("preload reply");
    assert!(line.starts_with("OK queued"), "preload -> {line}");
    assert!(setup.send("EPOCH").starts_with("OK"));

    // Open-loop load phase.
    tkc_obs::info!(
        "bench_serve ({} mode, seed {seed}): {conns} connections x {requests_per_conn} \
         requests at {rate}/s each against {bin}",
        if quick { "quick" } else { "full" }
    );
    let load_start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            std::thread::spawn(move || {
                load_connection(
                    addr,
                    seed ^ (i as u64 + 1),
                    requests_per_conn,
                    rate,
                    vertices,
                )
            })
        })
        .collect();
    let mut samples: Samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("load connection panicked"));
    }
    let load_elapsed = load_start.elapsed();

    // Exercise the observability verbs and scrape the server's own view.
    let slo_lines = setup.send_block("SLO");
    assert!(
        slo_lines.iter().any(|l| l.starts_with("INSERT ")),
        "SLO missing INSERT objective: {slo_lines:?}"
    );
    let trace_lines = setup.send_block("TRACE 100");
    assert!(
        trace_lines.iter().any(|l| l.contains("\"kind\":\"span\"")),
        "TRACE returned no span records"
    );
    let (status, metrics) = tkc_obs::http::get(metrics_addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);

    // Per-verb reduction + client/server cross-check.
    let mut rows = Vec::new();
    for (verb_idx, (verb, _)) in MIX.iter().enumerate() {
        let mut sched: Vec<Duration> = Vec::new();
        let mut rtt: Vec<Duration> = Vec::new();
        for &(vi, s, r) in &samples {
            if vi == verb_idx {
                sched.push(s);
                rtt.push(r);
            }
        }
        assert!(!rtt.is_empty(), "verb {verb} drew no samples");
        sched.sort_unstable();
        rtt.sort_unstable();
        let (srv_count, srv_p50, srv_p90, srv_p99) = server_histogram(&metrics, verb)
            .unwrap_or_else(|| panic!("no server histogram for {verb}"));
        let rtt_p99 = quantile(&rtt, 0.99);
        // The server histogram measures service time in power-of-two
        // buckets; client RTT adds loopback + client scheduling. A wide
        // factor still catches unit errors and dead histograms.
        let tolerance = |a: f64| a * 16.0 + 5e-3;
        assert!(
            rtt_p99.as_secs_f64() <= tolerance(srv_p99)
                && srv_p99 <= tolerance(rtt_p99.as_secs_f64()),
            "{verb}: client rtt p99 {:.3}ms vs server bucket p99 <= {:.3}ms disagree",
            ms(rtt_p99),
            srv_p99 * 1e3,
        );
        tkc_obs::info!(
            "  {verb}: {} reqs, client p50/p90/p99 {:.3}/{:.3}/{:.3} ms \
             (rtt p99 {:.3} ms), server p99 <= {:.3} ms over {} obs",
            rtt.len(),
            ms(quantile(&sched, 0.5)),
            ms(quantile(&sched, 0.9)),
            ms(quantile(&sched, 0.99)),
            ms(rtt_p99),
            srv_p99 * 1e3,
            srv_count,
        );
        rows.push(format!(
            concat!(
                "    {{\"verb\":\"{}\",\"count\":{},",
                "\"client\":{{\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},",
                "\"rtt_p50_ms\":{:.3},\"rtt_p99_ms\":{:.3}}},",
                "\"server\":{{\"count\":{},\"p50_ms_le\":{:.3},\"p90_ms_le\":{:.3},",
                "\"p99_ms_le\":{:.3}}}}}"
            ),
            verb,
            rtt.len(),
            ms(quantile(&sched, 0.5)),
            ms(quantile(&sched, 0.9)),
            ms(quantile(&sched, 0.99)),
            ms(quantile(&rtt, 0.5)),
            ms(rtt_p99),
            srv_count,
            srv_p50 * 1e3,
            srv_p90 * 1e3,
            srv_p99 * 1e3,
        ));
    }

    // Graceful shutdown writes the span trace for `tkc obs report`.
    assert_eq!(setup.send("SHUTDOWN"), "OK shutting down");
    let status = proc.wait().expect("server wait");
    assert!(status.success(), "server exited {status}");
    drain.join().expect("drain thread");
    let trace_bytes = std::fs::metadata(&trace_out).map(|m| m.len()).unwrap_or(0);
    assert!(trace_bytes > 0, "server wrote no trace to {trace_out}");
    let _ = std::fs::remove_dir_all(&state_dir);

    // Replication phase: primary/follower lag + follower-read latency.
    let replication = replication_phase(&bin, quick, seed);

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"version\": 2,\n  \"mode\": \"{}\",\n  \
         \"seed\": {},\n  \"connections\": {},\n  \"requests\": {},\n  \
         \"open_loop_rate_per_conn\": {:.0},\n  \"load_millis\": {:.1},\n  \
         \"results\": [\n{}\n  ],\n{}\n}}\n",
        if quick { "quick" } else { "full" },
        seed,
        conns,
        samples.len(),
        rate,
        ms(load_elapsed),
        rows.join(",\n"),
        replication,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!(
        "wrote {out_path} ({} requests over {} connections; span trace at {trace_out})",
        samples.len(),
        conns
    );
}
