//! `bench_snapshot` — the decompose/support perf trajectory.
//!
//! Measures Algorithm 1's support stage and full decomposition across the
//! seed's sequential hash path, the oriented CSR snapshot kernel, the
//! wedge-balanced parallel kernel, and (since version 3) the
//! level-synchronous parallel peel at a 1/2/4/8-thread scaling curve,
//! then writes the machine-readable record `BENCH_decompose.json` so
//! every future perf PR appends to a trajectory instead of claiming
//! speedups in prose. The headline is the end-to-end decomposition
//! speedup over the sequential bucket peel, gated at >=1.2x in every
//! mode (quick mode is the CI smoke). Version 4 adds the span-recording
//! overhead gate on the engine apply path next to the original kernel
//! instrumentation gate — both enforce the <2% observability budget.
//!
//! ```text
//! cargo run --release -p tkc-bench --bin bench_snapshot            # full
//! cargo run --release -p tkc-bench --bin bench_snapshot -- --quick # CI smoke
//! ```
//!
//! Flags / env: `--quick` shrinks graphs for the CI smoke step; `--out
//! <path>` overrides the JSON destination (default `BENCH_decompose.json`
//! in the working directory); `TKC_SEED` seeds the generators.
//!
//! Every kernel's support vector is asserted bit-identical to the seed
//! sequential path before its timing is recorded — a bench run that would
//! report a wrong kernel aborts instead.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use std::sync::Arc;
use std::time::Duration;

use tkc_bench::{fmt_secs, seed_from_env, time};
use tkc_core::decompose::{
    triangle_kcore_decomposition, triangle_kcore_decomposition_timed, Decomposition, PhaseTimings,
};
use tkc_core::peel_parallel::triangle_kcore_decomposition_parallel_timed;
use tkc_graph::csr::CsrGraph;
use tkc_graph::{generators, triangles, Graph};

/// One timed measurement, later serialized as a JSON object.
struct Sample {
    family: &'static str,
    vertices: usize,
    edges: usize,
    wedge_work: u64,
    kernel: &'static str,
    threads: usize,
    elapsed: Duration,
    /// Speedup of this kernel over the seed sequential hash path on the
    /// same graph (1.0 for the baseline row itself).
    speedup_vs_hash_seq: f64,
    /// Freeze/supports/peel breakdown (full-decomposition rows only).
    phases: Option<PhaseTimings>,
}

impl Sample {
    fn ns_per_edge(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.edges as f64
        }
    }

    fn to_json(&self) -> String {
        let phases = match &self.phases {
            Some(t) => format!(
                ",\"phases\":{{\"freeze_millis\":{:.3},\"supports_millis\":{:.3},\"peel_millis\":{:.3}}}",
                t.freeze.as_secs_f64() * 1e3,
                t.supports.as_secs_f64() * 1e3,
                t.peel.as_secs_f64() * 1e3,
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"family\":\"{}\",\"vertices\":{},\"edges\":{},",
                "\"wedge_work\":{},\"kernel\":\"{}\",\"threads\":{},",
                "\"millis\":{:.3},\"ns_per_edge\":{:.2},",
                "\"speedup_vs_hash_seq\":{:.3}{}}}"
            ),
            self.family,
            self.vertices,
            self.edges,
            self.wedge_work,
            self.kernel,
            self.threads,
            self.elapsed.as_secs_f64() * 1e3,
            self.ns_per_edge(),
            self.speedup_vs_hash_seq,
            phases,
        )
    }
}

/// Median-of-`reps` timing of `f` (first call warms caches and pool).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps.max(1) {
        let (value, elapsed) = time(&mut f);
        if elapsed < best {
            best = elapsed;
            out = value;
        }
    }
    (out, best)
}

fn bench_family(
    family: &'static str,
    g: &Graph,
    thread_counts: &[usize],
    decomp_threads: &[usize],
    reps: usize,
    samples: &mut Vec<Sample>,
) {
    let (vertices, edges, wedge_work) = (g.num_vertices(), g.num_edges(), g.wedge_work());
    let push = |samples: &mut Vec<Sample>,
                kernel,
                threads,
                elapsed: Duration,
                base: Duration,
                phases: Option<PhaseTimings>| {
        samples.push(Sample {
            family,
            vertices,
            edges,
            wedge_work,
            kernel,
            threads,
            elapsed,
            speedup_vs_hash_seq: base.as_secs_f64() / elapsed.as_secs_f64().max(1e-12),
            phases,
        });
    };

    // Baseline: the seed's sequential support path.
    let (reference, hash_time) = best_of(reps, || triangles::edge_supports(g));
    push(samples, "support_hash_seq", 1, hash_time, hash_time, None);

    // CSR sequential, freeze included (end-to-end cost of taking the
    // snapshot and running the oriented kernel once).
    let (csr_sup, csr_time) = best_of(reps, || tkc_graph::csr::edge_supports_csr(g));
    assert_eq!(csr_sup, reference, "CSR kernel diverged from hash path");
    push(samples, "support_csr_seq", 1, csr_time, hash_time, None);

    // CSR parallel at each requested thread count (freeze included).
    for &threads in thread_counts {
        let (par_sup, par_time) = best_of(reps, || {
            Arc::new(CsrGraph::freeze(g)).edge_supports_parallel(threads)
        });
        assert_eq!(
            par_sup, reference,
            "parallel kernel diverged at {threads} threads"
        );
        push(
            samples,
            "support_csr_parallel",
            threads,
            par_time,
            hash_time,
            None,
        );
    }

    // Full Algorithm 1, seed path vs the level-synchronous CSR peel at
    // each requested thread count. The timed variants attribute each run
    // to freeze/supports/peel so the trajectory records where the time
    // actually goes (for the parallel rows, `peel` includes building the
    // triangle lookup structure).
    let (timed_seq, decomp_time) = best_of(reps, || triangle_kcore_decomposition_timed(g, 1));
    let base_d = triangle_kcore_decomposition(g);
    assert_eq!(
        timed_seq.0.kappa_slice(),
        base_d.kappa_slice(),
        "timed decomposition diverged"
    );
    push(
        samples,
        "decompose_seq",
        1,
        decomp_time,
        decomp_time,
        Some(timed_seq.1),
    );
    for &threads in decomp_threads {
        // Forced level-sync (not routed through the wedge-work gate) so
        // the scaling curve exists even for quick-mode graphs.
        let (timed_par, par_decomp_time) = best_of(reps, || {
            triangle_kcore_decomposition_parallel_timed(g, threads)
        });
        assert_eq!(
            timed_par.0.kappa_slice(),
            base_d.kappa_slice(),
            "level-sync decomposition diverged at {threads} threads"
        );
        push(
            samples,
            "decompose_csr_parallel",
            threads,
            par_decomp_time,
            decomp_time,
            Some(timed_par.1),
        );
    }
    let max_threads = decomp_threads.iter().copied().max().unwrap_or(1);
    let par_check = Decomposition::compute_with(g, max_threads);
    assert_eq!(
        par_check.kappa_slice(),
        base_d.kappa_slice(),
        "compute_with diverged from the timed path"
    );

    let base = samples
        .iter()
        .rev()
        .find(|s| s.kernel == "support_hash_seq")
        .map(|s| s.elapsed)
        .unwrap_or(hash_time);
    let threads = thread_counts.iter().copied().max().unwrap_or(1);
    tkc_obs::info!(
        "  {family}: {vertices} vertices / {edges} edges, hash {} s, csr {} s, \
         csr@{threads}t {} s",
        fmt_secs(base),
        fmt_secs(csr_time),
        fmt_secs(
            samples
                .iter()
                .rev()
                .find(|s| s.kernel == "support_csr_parallel")
                .map(|s| s.elapsed)
                .unwrap_or_default()
        ),
    );
}

/// The observability acceptance gate: `support_csr_parallel` with kernel
/// instrumentation enabled (the default) must run within 2% of the same
/// kernel with instrumentation killed — i.e. the per-batch timing hooks
/// are in the noise. Min-of-N timings on both sides; a small absolute
/// floor absorbs scheduler jitter on the quick CI graphs. Aborts the
/// bench on regression and returns the JSON fragment for the record.
fn instrumentation_overhead_gate(g: &Graph, thread_counts: &[usize], reps: usize) -> String {
    let threads = thread_counts.iter().copied().max().unwrap_or(1);
    let reps = reps.max(3);
    let run = || Arc::new(CsrGraph::freeze(g)).edge_supports_parallel(threads);

    tkc_obs::set_kernel_instrumentation(false);
    let (_, off) = best_of(reps, run);
    tkc_obs::set_kernel_instrumentation(true);
    let (_, on) = best_of(reps, run);

    let budget = off.mul_f64(0.02).max(Duration::from_micros(300));
    assert!(
        on <= off + budget,
        "instrumentation overhead gate: enabled {on:?} vs disabled {off:?} \
         exceeds 2% (+{budget:?} floor)"
    );
    tkc_obs::info!(
        "instrumentation overhead: enabled {} s vs disabled {} s (gate: <=2%)",
        fmt_secs(on),
        fmt_secs(off),
    );
    format!(
        "  \"instrumentation_overhead\": {{\"kernel\":\"support_csr_parallel\",\
         \"threads\":{threads},\"enabled_millis\":{:.3},\"disabled_millis\":{:.3}}},\n",
        on.as_secs_f64() * 1e3,
        off.as_secs_f64() * 1e3,
    )
}

/// The span-recording acceptance gate (ISSUE 9): a real `Engine::apply`
/// ingest run — WAL append, triangle cascade, epoch publish — with span
/// recording enabled must run within 2% of the same run with spans shed
/// via `TraceBuffer::set_spans_enabled(false)` (every `SpanGuard` inert:
/// one relaxed load, no clock reads, no ring push). The op-trace ring
/// stays ON for both sides — it predates the span layer and carries its
/// own per-op record cost, so toggling it too would attribute that cost
/// to spans. Each rep opens a fresh engine in a throwaway temp dir with
/// fsync off so the measured path is pure apply work, not disk flush
/// latency. Min-of-N on both sides with an absolute jitter floor;
/// aborts on regression.
fn span_overhead_gate(reps: usize, seed: u64) -> String {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tkc_engine::{Engine, EngineConfig, WalOp};

    let reps = reps.max(3);
    // Deterministic ingest workload: 32 batches of 64 ops over a small
    // vertex universe, dense enough that the cascade does real triangle
    // work on every batch.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ba2);
    let batches: Vec<Vec<WalOp>> = (0..32)
        .map(|_| {
            (0..64)
                .map(|_| {
                    let u = rng.gen_range(0u32..160);
                    let v = rng.gen_range(0u32..160);
                    let (u, v) = if u == v { (u, u + 1) } else { (u, v) };
                    if rng.gen_bool(0.9) {
                        WalOp::Insert(u, v)
                    } else {
                        WalOp::Remove(u, v)
                    }
                })
                .collect()
        })
        .collect();

    // Per-batch timings: the reducer below takes the minimum of each
    // batch position across reps, which rejects scheduler preemptions
    // and drift far better than whole-run minima — one slow 4ms batch
    // no longer poisons a 130ms total on a 2% margin.
    let run_once = |dir: &std::path::Path| -> Vec<Duration> {
        let config = EngineConfig {
            fsync: false,
            // No auto-publish inside the timed loop: an epoch publish
            // runs a full parallel decomposition whose pool-scheduling
            // jitter (several ms) would swamp a 2% margin. The spans
            // under test wrap the apply path itself — WAL append,
            // fsync split, cascade — which stays on the clock.
            epoch_ops: 0,
            ..EngineConfig::new(dir)
        };
        let engine = Engine::open(config).expect("span gate: open engine");
        batches
            .iter()
            .map(|batch| {
                let start = std::time::Instant::now();
                engine.apply(batch).expect("span gate: apply");
                start.elapsed()
            })
            .collect()
    };
    let run_in_temp = |tag: &str, rep: usize, spans: bool| -> Vec<Duration> {
        // Buffer enabled on BOTH sides (op-trace cost held constant);
        // only span recording toggles.
        tkc_obs::TraceBuffer::global().set_enabled(true);
        tkc_obs::TraceBuffer::global().set_spans_enabled(spans);
        let dir =
            std::env::temp_dir().join(format!("tkc_bench_span_{tag}_{}_{rep}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("span gate: create temp dir");
        let timings = run_once(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        timings
    };
    let fold_min = |acc: &mut Vec<Duration>, timings: Vec<Duration>| {
        if acc.is_empty() {
            *acc = timings;
        } else {
            for (slot, t) in acc.iter_mut().zip(timings) {
                *slot = (*slot).min(t);
            }
        }
    };

    // Interleave the two sides rep-by-rep so slow drift (background
    // load, thermal throttling on a shared runner) hits both equally
    // instead of biasing whichever block ran second. The quick-mode
    // gate reps are raised for the same reason — this gate hard-asserts
    // on a 2% margin, far tighter than the kernel gate's. One untimed
    // warmup rep first: the very first engine run after process start
    // pays one-off page-cache and allocator costs that would otherwise
    // land entirely on whichever side runs first.
    let reps = reps.max(8);
    let _ = run_in_temp("warmup", 0, false);
    let measure_once = |attempt: usize| -> (Duration, Duration) {
        let mut off_batches = Vec::new();
        let mut on_batches = Vec::new();
        for rep in 0..reps {
            fold_min(
                &mut off_batches,
                run_in_temp("off", attempt * reps + rep, false),
            );
            fold_min(
                &mut on_batches,
                run_in_temp("on", attempt * reps + rep, true),
            );
        }
        (off_batches.iter().sum(), on_batches.iter().sum())
    };
    // A genuine span-cost regression persists across attempts; a
    // co-tenant burst or frequency-scaling window covering one whole
    // measurement does not. One re-measure before failing keeps the
    // tight 2% assert without turning environmental noise into CI red.
    let (mut off, mut on) = measure_once(0);
    let over_budget =
        |on: Duration, off: Duration| on > off + off.mul_f64(0.02).max(Duration::from_micros(300));
    if over_budget(on, off) {
        tkc_obs::warn!(
            "span overhead gate: first attempt over budget (on {} s vs off {} s); re-measuring",
            fmt_secs(on),
            fmt_secs(off),
        );
        (off, on) = measure_once(1);
    }
    // Leave the process-global buffer the way the rest of the bench
    // expects it: disabled and empty, spans back on.
    tkc_obs::TraceBuffer::global().set_enabled(false);
    tkc_obs::TraceBuffer::global().set_spans_enabled(true);
    tkc_obs::TraceBuffer::global().clear();

    let budget = off.mul_f64(0.02).max(Duration::from_micros(300));
    assert!(
        on <= off + budget,
        "span overhead gate: spans on {on:?} vs spans shed {off:?} \
         exceeds 2% (+{budget:?} floor) on the engine apply path twice"
    );
    tkc_obs::info!(
        "span overhead: spans on {} s vs spans shed {} s on engine apply (gate: <=2%)",
        fmt_secs(on),
        fmt_secs(off),
    );
    format!(
        "  \"span_overhead\": {{\"path\":\"engine_apply\",\"batches\":32,\
         \"ops_per_batch\":64,\"spans_on_millis\":{:.3},\"spans_off_millis\":{:.3}}},\n",
        on.as_secs_f64() * 1e3,
        off.as_secs_f64() * 1e3,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_decompose.json".to_string());
    let seed = seed_from_env();
    // Min-of-N: the scaling curve compares thread counts against each
    // other, so per-row noise must be well under the few percent
    // separating adjacent counts on a contended box. Quick mode needs
    // min-of-3 too — its regression gate is a hard assert, and a single
    // preemption on a shared CI runner can inflate a lone measurement
    // several-fold.
    let reps = if quick { 3 } else { 7 };
    let thread_counts: &[usize] = if quick { &[2] } else { &[2, 4] };
    // End-to-end decomposition scaling curve; quick mode keeps only the
    // thread count the CI regression gate reads.
    let decomp_threads: &[usize] = if quick { &[4] } else { &[1, 2, 4, 8] };

    // Graph families: a scale-free clustered graph at >=100k edges (the
    // acceptance-gate workload), a community graph, and a dense clique
    // batch that stresses the orientation rather than the memory layout.
    let families: Vec<(&'static str, Graph)> = if quick {
        vec![
            ("holme_kim", generators::holme_kim(3_000, 3, 0.6, seed)),
            (
                "planted_partition",
                generators::planted_partition(8, 40, 0.3, 0.01, seed),
            ),
        ]
    } else {
        vec![
            ("holme_kim", generators::holme_kim(40_000, 3, 0.6, seed)),
            (
                "planted_partition",
                generators::planted_partition(40, 120, 0.25, 0.002, seed),
            ),
            ("complete", generators::complete(450)),
        ]
    };

    let mut samples = Vec::new();
    tkc_obs::info!(
        "bench_snapshot ({} mode, seed {seed})",
        if quick { "quick" } else { "full" }
    );
    for (family, g) in &families {
        bench_family(family, g, thread_counts, decomp_threads, reps, &mut samples);
    }

    // Regression gate on the acceptance workload (the first family, the
    // >=100k-edge scale-free graph in full mode): the level-synchronous
    // peel at 4 threads must beat the seed sequential decomposition by at
    // least 1.2x, or the bench aborts — CI runs this in quick mode so an
    // end-to-end perf regression fails the build, not just the trajectory.
    let gate_family = families[0].0;
    let seq = samples
        .iter()
        .find(|s| s.family == gate_family && s.kernel == "decompose_seq")
        .map(|s| s.elapsed)
        .expect("decompose_seq sample missing");
    let par4 = samples
        .iter()
        .find(|s| s.family == gate_family && s.kernel == "decompose_csr_parallel" && s.threads == 4)
        .map(|s| s.elapsed)
        .expect("decompose_csr_parallel@4 sample missing");
    let ratio = seq.as_secs_f64() / par4.as_secs_f64().max(1e-12);
    assert!(
        ratio >= 1.2,
        "decompose regression gate: decompose_csr_parallel@4 is only {ratio:.2}x \
         decompose_seq on {gate_family} (need >=1.2x)"
    );

    let overhead = instrumentation_overhead_gate(&families[0].1, thread_counts, reps);
    let span_overhead = span_overhead_gate(reps, seed);

    let rows: Vec<String> = samples
        .iter()
        .map(|s| format!("    {}", s.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"decompose-snapshot\",\n  \"version\": 4,\n  \
         \"mode\": \"{}\",\n  \"seed\": {},\n{}{}  \"results\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        seed,
        overhead,
        span_overhead,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_decompose.json");
    println!("wrote {out_path} ({} samples)", samples.len());

    // Trajectory headline: the end-to-end decomposition speedup on the
    // acceptance workload, with the full per-thread scaling curve, so the
    // number the ISSUE gates on is visible in the run log.
    let curve: Vec<String> = samples
        .iter()
        .filter(|s| s.family == gate_family && s.kernel == "decompose_csr_parallel")
        .map(|s| format!("{}t={:.2}x", s.threads, s.speedup_vs_hash_seq))
        .collect();
    println!(
        "headline: decompose {ratio:.2}x over seq at 4 threads on {gate_family} \
         (scaling: {})",
        curve.join(" "),
    );
}
