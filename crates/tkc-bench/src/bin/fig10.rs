#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 10 — Bridge Cliques in the DBLP-style pair: two groups that
//! published separately in year one (the paper's data-streams and
//! networking teams) co-author one paper in year two, forming a 6-author
//! bridge clique.

use tkc_bench::{seed_from_env, write_artifact};
use tkc_datasets::collaboration::bridge_scenario;
use tkc_patterns::{detect_template, AttributedGraph, BridgeClique};
use tkc_viz::ordering::density_order;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn main() {
    let seed = seed_from_env();
    let (g2003, g2004, planted) = bridge_scenario(2000, 1200, 4, 2, seed);
    println!(
        "Figure 10: Bridge Clique plot (DBLP 2003 → 2004 stand-in, {} authors)\n",
        g2004.num_vertices()
    );

    let ag = AttributedGraph::from_snapshots(&g2003, &g2004);
    let res = detect_template(&ag, &BridgeClique);
    let plot = density_order(ag.graph(), &res.co_clique);
    println!("pattern plot: {}\n", ascii_sparkline(&plot, 72));

    let top = res.top_structures(10);
    for core in top.iter().take(3) {
        println!(
            "  bridge structure: {} authors at level {} ({})",
            core.vertices.len(),
            core.level,
            if core.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
    // The planted weld must surface among the top bridge structures.
    let hit = top
        .iter()
        .find(|c| planted.iter().all(|v| c.vertices.contains(v)))
        .expect("planted bridge clique not surfaced");
    assert!(hit.level >= 4, "6-clique bridge implies level >= 4");
    println!(
        "\nthe planted bridge (group of 4 welded with group of 2) surfaces at level {}.",
        hit.level
    );

    let svg = render_density_plot(
        &plot,
        &PlotStyle {
            title: "DBLP 2003→2004 — Bridge Clique distribution".into(),
            ..PlotStyle::default()
        },
    );
    write_artifact("fig10_bridge.svg", &svg);
    write_artifact("fig10_bridge.tsv", &density_plot_tsv(&plot));
}
