#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 7 — the PPI case study: three near-cliques sit at the peaks of
//! the density plot; one is an exact 10-clique, another a 10-vertex clique
//! missing one edge that therefore *plots* as a 9-clique.

use tkc_bench::{seed_from_env, write_artifact};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::extract::densest_cliques;
use tkc_datasets::ppi::ppi_case_study;
use tkc_viz::ordering::kappa_density_plot;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn main() {
    let seed = seed_from_env();
    let (g, [c1, c2, c3]) = ppi_case_study(seed);
    println!(
        "Figure 7: PPI case study ({} proteins, {} interactions)\n",
        g.num_vertices(),
        g.num_edges()
    );

    let d = triangle_kcore_decomposition(&g);
    let plot = kappa_density_plot(&g, &d);
    println!("density plot: {}\n", ascii_sparkline(&plot, 72));

    // The three planted structures at the plot's peaks.
    let max_kappa = |members: &[tkc_graph::VertexId]| -> u32 {
        members
            .iter()
            .flat_map(|&u| members.iter().map(move |&v| (u, v)))
            .filter(|(u, v)| u < v)
            .filter_map(|(u, v)| g.edge_between(u, v))
            .map(|e| d.kappa(e))
            .max()
            .unwrap_or(0)
    };
    println!(
        "clique 1 (8 proteins, the DN-Graph group): peak co-clique {} → shown as {}-clique",
        max_kappa(&c1) + 2,
        max_kappa(&c1) + 2
    );
    println!(
        "clique 2 (10 proteins, exact): peak co-clique {} → shown as 10-clique",
        max_kappa(&c2) + 2
    );
    println!(
        "clique 3 (10 proteins, one edge missing): peak co-clique {} → shown as 9-clique",
        max_kappa(&c3) + 2
    );
    assert_eq!(max_kappa(&c1), 6);
    assert_eq!(max_kappa(&c2), 8);
    assert_eq!(max_kappa(&c3), 7, "the missing edge drops the peak by one");

    // The generic extractor also surfaces them without knowing the plants.
    let found = densest_cliques(&g, &d, 3);
    println!("\ndensest exact cliques surfaced by extraction:");
    for core in &found {
        println!(
            "  {} vertices at level {} ({})",
            core.vertices.len(),
            core.level,
            if core.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
    assert!(found.iter().any(|c| c.vertices.len() == 10));

    let svg = render_density_plot(
        &plot,
        &PlotStyle {
            title: "PPI — Triangle K-Core density plot".into(),
            ..PlotStyle::default()
        },
    );
    write_artifact("fig7_ppi.svg", &svg);
    write_artifact("fig7_ppi.tsv", &density_plot_tsv(&plot));

    // Detail panels: the three structures drawn as the paper draws them
    // (clique 3's missing APC4-CDC16 edge is visible as the absent chord).
    for (i, members) in [&c1, &c2, &c3].iter().enumerate() {
        let drawing = tkc_viz::render_structure(&g, members, |_| false, 320);
        write_artifact(&format!("fig7_clique{}.svg", i + 1), &drawing);
    }
}
