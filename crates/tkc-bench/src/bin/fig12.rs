#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 12 — static template patterns on the labeled PPI stand-in: with
//! "new" redefined as *inter-complex*, Bridge Cliques surface the protein
//! groups that connect two complexes (the paper's PRE1 hub between the 20S
//! proteasome and the 19/22S regulator).

use tkc_bench::{seed_from_env, write_artifact};
use tkc_datasets::ppi::ppi_bridge_study;
use tkc_patterns::{detect_template, AttributedGraph, BridgeClique};
use tkc_viz::ordering::density_order;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn main() {
    let seed = seed_from_env();
    let (g, labels, planted) = ppi_bridge_study(seed);
    println!(
        "Figure 12: Bridge Cliques across protein complexes ({} proteins)\n",
        g.num_vertices()
    );

    let ag = AttributedGraph::from_vertex_labels(g, &labels);
    let res = detect_template(&ag, &BridgeClique);
    let plot = density_order(ag.graph(), &res.co_clique);
    println!("pattern plot: {}\n", ascii_sparkline(&plot, 72));

    let top = res.top_structures(3);
    for core in &top {
        let complexes: std::collections::BTreeSet<u32> =
            core.vertices.iter().map(|v| labels[v.index()]).collect();
        println!(
            "  bridge structure: {} proteins spanning complexes {:?} at level {}",
            core.vertices.len(),
            complexes,
            core.level
        );
    }
    let densest = &top[0];
    assert!(
        planted.iter().all(|v| densest.vertices.contains(v)),
        "planted hub bridge must top the plot"
    );
    // The hub (PRE1 analogue) connects the two complexes.
    let hub = planted[0];
    println!(
        "\nvertex {} is the bridge hub: its complex ({}) differs from the other members' ({}).",
        hub,
        labels[hub.index()],
        labels[planted[1].index()]
    );

    let svg = render_density_plot(
        &plot,
        &PlotStyle {
            title: "PPI — inter-complex Bridge Clique distribution".into(),
            ..PlotStyle::default()
        },
    );
    write_artifact("fig12_ppi_bridge.svg", &svg);
    write_artifact("fig12_ppi_bridge.tsv", &density_plot_tsv(&plot));

    // Detail panel like Figure 12(b): the bridge structure with
    // inter-complex edges in red (the PRE1 hub's connections).
    let drawing =
        tkc_viz::render_structure(ag.graph(), &densest.vertices, |e| ag.is_new_edge(e), 360);
    write_artifact("fig12_bridge_detail.svg", &drawing);
}
