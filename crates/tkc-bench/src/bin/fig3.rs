#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 3 — the update example of Algorithm 2: adding edge AC to the
//! 6-vertex graph creates triangles ABC and AEC; processing them one at a
//! time first lifts {AB, BC, AC} to κ = 1, then the second triangle's
//! "illegal" interactions settle everything at κ = 1.

use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_graph::{Graph, VertexId};

fn main() {
    let names = ["A", "B", "C", "D", "E", "F"];
    let g = Graph::from_edges(
        6,
        [
            (0, 1), // AB
            (1, 2), // BC
            (0, 4), // AE
            (0, 5), // AF
            (4, 5), // EF
            (2, 3), // CD
            (2, 4), // CE
            (3, 4), // DE
        ],
    );
    let mut m = DynamicTriangleKCore::new(g);
    let show = |m: &DynamicTriangleKCore, title: &str| {
        println!("{title}");
        for (e, u, v) in m.graph().edges() {
            println!(
                "  {}{}: κ = {}",
                names[u.index()],
                names[v.index()],
                m.kappa(e)
            );
        }
    };
    println!("Figure 3: incremental update walkthrough\n");
    show(&m, "before adding AC:");

    let ac = m.insert_edge(VertexId(0), VertexId(2)).unwrap();
    println!("\nadd AC → new triangles ABC and AEC processed one at a time");
    show(&m, "\nafter the update:");
    let stats = m.stats();
    println!(
        "\nwork done: {} triangles activated, {} promotions, {} demotions, {} edges examined",
        stats.triangles_added, stats.promotions, stats.demotions, stats.edges_examined
    );
    assert_eq!(m.kappa(ac), 1);
    let k = |u: u32, v: u32| m.kappa(m.graph().edge_between(VertexId(u), VertexId(v)).unwrap());
    assert_eq!(k(0, 1), 1, "AB rose to 1");
    assert_eq!(k(1, 2), 1, "BC rose to 1");
    assert_eq!(k(0, 4), 1, "AE stayed at 1");
    println!("matches the paper: every edge of the example ends at κ = 1.");
}
