#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Chaos soak: long-form fault-schedule sweep over the durable engine.
//!
//! Runs `TKC_CHAOS_SEEDS` seeded cases (default 216, mirroring the
//! differential suite's stream count) starting at `TKC_SEED`. Each case
//! derives its initial graph, op stream, and fault schedule (`ENOSPC`,
//! `EIO`, short writes, bit flips, crash-at-offset) entirely from the
//! seed, drives them through a real WAL-backed engine, and checks
//! `κ ≡ recompute` (the `tkc_verify` oracle) after every recovery and
//! across a final clean reopen. Any panic, divergence, or durability
//! loss fails the soak with a one-integer reproduction.
//!
//! The per-shape table it emits is the robustness analog of the paper
//! tables: how many faults each graph family's schedules absorbed, and
//! how the engine repaired itself (in-place recovery vs crash replay).

use std::time::Instant;

use tkc_bench::{seed_from_env, write_artifact, Table};
use tkc_engine::chaos::{run_case, ChaosCase, ChaosReport};

/// Graph-shape label for the per-family breakdown (mirrors
/// `ChaosCase::from_seed`'s kind cycle).
fn shape_of(seed: u64) -> &'static str {
    match seed % 6 {
        0 => "empty",
        1 => "gnp-sparse",
        2 => "gnp-dense",
        3 => "holme-kim",
        4 => "planted",
        _ => "caveman",
    }
}

fn main() {
    let seeds: u64 = std::env::var("TKC_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(216);
    let start = seed_from_env();
    let root = std::env::temp_dir().join("tkc_chaos_soak");
    println!(
        "chaos soak: {seeds} seeded schedules (seeds {start}..{})\n",
        start + seeds
    );

    let mut per_shape: Vec<(&str, ChaosReport, u64)> = [
        "empty",
        "gnp-sparse",
        "gnp-dense",
        "holme-kim",
        "planted",
        "caveman",
    ]
    .iter()
    .map(|&s| (s, ChaosReport::default(), 0u64))
    .collect();

    let started = Instant::now();
    let mut failures = 0u64;
    for seed in start..start + seeds {
        let dir = root.join(format!("seed-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let case = ChaosCase::from_seed(seed);
        match run_case(&dir, &case) {
            Ok(r) => {
                let row = per_shape
                    .iter_mut()
                    .find(|(s, _, _)| *s == shape_of(seed))
                    .unwrap();
                row.1.batches_acked += r.batches_acked;
                row.1.faults_injected += r.faults_injected;
                row.1.recoveries += r.recoveries;
                row.1.crash_restarts += r.crash_restarts;
                row.1.oracle_checks += r.oracle_checks;
                row.2 += 1;
            }
            Err(f) => {
                failures += 1;
                eprintln!("seed {seed} FAILED: {f}");
                eprintln!("reproduce with: tkc chaos --seeds 1 --start-seed {seed}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    let took = started.elapsed();

    let mut table = Table::new(vec![
        "Shape",
        "Cases",
        "Faults",
        "Recoveries",
        "Crash replays",
        "Oracle checks",
    ]);
    for (shape, r, cases) in &per_shape {
        table.row(vec![
            (*shape).to_string(),
            cases.to_string(),
            r.faults_injected.to_string(),
            r.recoveries.to_string(),
            r.crash_restarts.to_string(),
            r.oracle_checks.to_string(),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!("soak finished in {took:?}: {failures} failing seeds");
    write_artifact("chaos_soak.txt", &rendered);

    if failures > 0 {
        std::process::exit(1);
    }
}
