#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 8 — Dual View Plots on two Wiki snapshots: plot(a) shows the
//! original clique distribution, plot(b) only the changed cliques after
//! the snapshot's edge additions, and correspondence markers tie the three
//! planted evolution events (clique growth, clique merge, twin expansion)
//! back to their origins.

use tkc_bench::{scale_from_env, seed_from_env, write_artifact};
use tkc_datasets::scenarios::wiki_dual_view_scenario;
use tkc_viz::dual_view::{dual_view, marker_table_tsv, render_dual_view};
use tkc_viz::plot::ascii_sparkline;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let (g, additions, [ev1, ev2, ev3]) = wiki_dual_view_scenario(scale.min(1.0), seed);
    println!(
        "Figure 8: Wiki dual view — snapshot 1: {} vertices / {} edges, {} added links\n",
        g.num_vertices(),
        g.num_edges(),
        additions.len()
    );

    let view = dual_view(&g, &additions, 3);
    println!("plot(a): {}", ascii_sparkline(&view.before, 72));
    println!("plot(b): {}\n", ascii_sparkline(&view.after, 72));

    println!("correspondence markers (densest changed structures):");
    for (i, m) in view.markers.iter().enumerate() {
        println!(
            "  marker {} [{}]: κ = {} over {} vertices; appears at {} positions in plot(a)",
            i + 1,
            m.color,
            m.level,
            m.vertices.len(),
            m.before_positions.len(),
        );
    }

    // The top marker must be one of the planted events.
    let top = &view.markers[0];
    let covers =
        |ev: &[tkc_graph::VertexId]| ev.iter().filter(|v| top.vertices.contains(v)).count();
    let (c1, c2, c3) = (covers(&ev1), covers(&ev2), covers(&ev3));
    println!(
        "\ntop marker overlaps events: growth {}/{} merge {}/{} expansion {}/{}",
        c1,
        ev1.len(),
        c2,
        ev2.len(),
        c3,
        ev3.len()
    );
    assert!(
        c1 == ev1.len() || c2 == ev2.len() || c3 == ev3.len(),
        "top marker should cover one planted event"
    );

    let svg = render_dual_view(&view, 900, 230);
    write_artifact("fig8_dual_view.svg", &svg);
    write_artifact("fig8_markers.tsv", &marker_table_tsv(&view));

    // Drill-down panels (Figure 8(c)-(e)): each marked structure drawn with
    // the snapshot's new links in red, like the "Astrology" detail.
    let mut g2 = g.clone();
    let mut is_new = vec![false; g2.edge_bound() + additions.len()];
    for &(u, v) in &additions {
        if u != v && !g2.has_edge(u, v) {
            if let Ok(e) = g2.add_edge(u, v) {
                if e.index() >= is_new.len() {
                    is_new.resize(e.index() + 1, false);
                }
                is_new[e.index()] = true;
            }
        }
    }
    for (i, m) in view.markers.iter().enumerate() {
        let drawing = tkc_viz::render_structure(
            &g2,
            &m.vertices,
            |e| is_new.get(e.index()).copied().unwrap_or(false),
            360,
        );
        write_artifact(&format!("fig8_detail_{}.svg", i + 1), &drawing);
    }
}
