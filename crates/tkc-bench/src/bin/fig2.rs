#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 2 — the worked example of Algorithm 1: the 5-vertex graph whose
//! edges start with support {AB:1, AC:1, BD:2, BE:2, CD:2, CE:2, DE:2,
//! BC:3} and end with κ(AB) = κ(AC) = 1, everything else 2.

use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_graph::triangles::edge_supports;
use tkc_graph::{Graph, VertexId};

fn main() {
    let names = ["A", "B", "C", "D", "E"];
    let g = Graph::from_edges(
        5,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
        ],
    );
    let sup = edge_supports(&g);
    println!("Figure 2: Algorithm 1 walkthrough\n");
    println!("initial support (the κ̃ upper bounds):");
    for (e, u, v) in g.edges() {
        println!(
            "  {}{}: {}",
            names[u.index()],
            names[v.index()],
            sup[e.index()]
        );
    }
    let d = triangle_kcore_decomposition(&g);
    println!("\nprocessing order (increasing κ̃, bucket queue):");
    for (i, &e) in d.order().iter().enumerate() {
        let (u, v) = g.endpoints(e);
        println!(
            "  step {}: process {}{}  →  κ = {}",
            i + 1,
            names[u.index()],
            names[v.index()],
            d.kappa(e)
        );
    }
    let k = |u: u32, v: u32| d.kappa(g.edge_between(VertexId(u), VertexId(v)).unwrap());
    assert_eq!(k(0, 1), 1, "AB");
    assert_eq!(k(0, 2), 1, "AC");
    assert_eq!(k(1, 2), 2, "BC peeled from 3 to 2");
    println!("\nresult matches the paper: κ(AB)=κ(AC)=1, all other edges κ=2.");
}
