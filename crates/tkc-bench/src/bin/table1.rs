#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Table I — the dataset inventory: paper sizes vs. the synthetic
//! stand-ins actually built, plus the structural statistics (triangles,
//! clustering) that drive every other experiment.

use tkc_bench::{
    build_all_datasets, fmt_secs, scale_from_env, seed_from_env, time, write_artifact, Table,
};
use tkc_graph::triangles::{global_clustering, triangle_count};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("Table I: data sets (scale multiplier {scale}, seed {seed})\n");

    let mut table = Table::new(vec![
        "Graph",
        "paper |V|",
        "paper |E|",
        "built |V|",
        "built |E|",
        "triangles",
        "clustering",
        "build s",
    ]);
    for id in tkc_datasets::DatasetId::all() {
        let info = id.info();
        let eff = info.default_scale * scale;
        let (g, dur) = time(|| tkc_datasets::build(id, eff, seed));
        table.row(vec![
            info.name.to_string(),
            info.paper_vertices.to_string(),
            info.paper_edges.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            triangle_count(&g).to_string(),
            format!("{:.4}", global_clustering(&g)),
            fmt_secs(dur),
        ]);
    }
    print!("{}", table.render());
    write_artifact("table1.tsv", &table.to_tsv());
    let _ = build_all_datasets; // shared helper exercised by other binaries
}
