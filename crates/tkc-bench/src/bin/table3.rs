#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Table III — incremental update vs. full re-computation after randomly
//! adding/deleting 1% of edges on the five largest datasets, averaged over
//! 5 runs (exactly the paper's protocol).

use std::time::Duration;

use tkc_bench::{fmt_secs, scale_from_env, seed_from_env, time, write_artifact, Table};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore};
use tkc_datasets::scenarios::churn_script;
use tkc_datasets::DatasetId;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let runs = 5;
    println!("Table III: re-compute vs incremental update, 1% edges changed, avg of {runs} runs\n");

    let five_largest = [
        DatasetId::AstroAuthor,
        DatasetId::Epinions,
        DatasetId::Amazon,
        DatasetId::Flickr,
        DatasetId::LiveJournal,
    ];

    let mut table = Table::new(vec![
        "Graph",
        "Total Edges",
        "Edges Changed",
        "Re-Compute (s)",
        "Update (s)",
        "Speedup",
    ]);
    for id in five_largest {
        let info = id.info();
        let g = tkc_datasets::build(id, info.default_scale * scale, seed);
        let kappa0 = triangle_kcore_decomposition(&g).into_kappa();

        let mut recompute_total = Duration::ZERO;
        let mut update_total = Duration::ZERO;
        let mut changed = 0usize;
        for run in 0..runs {
            let (dels, ins) = churn_script(&g, 0.01, seed + run as u64 * 7919);
            changed = dels.len() + ins.len();

            // Incremental: seed from the known decomposition, apply ops.
            let mut maintainer = DynamicTriangleKCore::from_parts(g.clone(), kappa0.clone());
            let ops: Vec<BatchOp> = dels
                .iter()
                .map(|&(u, v)| BatchOp::Remove(u, v))
                .chain(ins.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
                .collect();
            let (_, t_update) = time(|| maintainer.apply_batch(ops));
            update_total += t_update;

            // Re-compute: Algorithm 1 from scratch on the changed graph.
            let changed_graph = maintainer.graph().clone();
            let (fresh, t_recompute) = time(|| triangle_kcore_decomposition(&changed_graph));
            recompute_total += t_recompute;

            // Sanity: the maintained κ must equal the fresh run.
            for e in changed_graph.edge_ids() {
                assert_eq!(
                    maintainer.kappa(e),
                    fresh.kappa(e),
                    "incremental/recompute mismatch on {}",
                    info.name
                );
            }
        }
        let re = recompute_total / runs;
        let up = update_total / runs;
        table.row(vec![
            info.name.to_string(),
            g.num_edges().to_string(),
            changed.to_string(),
            fmt_secs(re),
            fmt_secs(up),
            format!("{:.1}x", re.as_secs_f64() / up.as_secs_f64().max(1e-9)),
        ]);
    }
    print!("{}", table.render());
    write_artifact("table3.tsv", &table.to_tsv());
    println!("\nEvery run cross-checks the maintained κ against a fresh Algorithm 1 pass.");
}
