#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 1 — K-Core vs Triangle K-Core on five vertices: the minimal
//! 2-core (a 5-cycle, no triangles at all) against a minimal Triangle
//! 2-Core, showing why the triangle variant approximates cliques.

use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::kcore::core_numbers;
use tkc_graph::{Graph, VertexId};

fn main() {
    println!("Figure 1(a): minimal 5-vertex K-Core with core number 2 (the 5-cycle)");
    let a = tkc_graph::generators::cycle(5);
    let cores = core_numbers(&a);
    println!(
        "  edges: {:?}",
        a.edges().map(|(_, u, v)| (u.0, v.0)).collect::<Vec<_>>()
    );
    println!("  core number per vertex: {cores:?}");
    let d = triangle_kcore_decomposition(&a);
    println!(
        "  but its Triangle K-Core numbers are all {} — no clique-like structure\n",
        d.max_kappa()
    );

    println!("Figure 1(b): minimal 5-vertex Triangle K-Core with number 2 (8 edges)");
    let b = Graph::from_edges(
        5,
        [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 4),
            (3, 4),
            (0, 3),
            (0, 4),
        ],
    );
    let d = triangle_kcore_decomposition(&b);
    println!("  edges and κ:");
    for (e, u, v) in b.edges() {
        println!("    ({}, {})  κ = {}", u.0, v.0, d.kappa(e));
    }
    println!(
        "  {} edges vs C(5,2) = 10 for the clique; a 5-clique would be a Triangle 3-Core.",
        b.num_edges()
    );
    let clique = tkc_graph::generators::complete(5);
    let dc = triangle_kcore_decomposition(&clique);
    assert_eq!(dc.max_kappa(), 3);
    println!("  (verified: K5 has κ = 3 = n - 2 on every edge)");
    let _ = VertexId(0);
}
