#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 4 — the three template patterns on their illustration graphs:
//! New Form (a/d), Bridge (b/e), New Join (c/f), each detected by
//! Algorithm 4 with the characteristic/possible triangles of the paper.

use tkc_graph::{generators, Graph, VertexId};
use tkc_patterns::{
    detect_template, AttributedGraph, BridgeClique, NewFormClique, NewJoinClique, Template,
};

fn report(name: &str, ag: &AttributedGraph, template: &dyn Template, expect_vertices: usize) {
    let res = detect_template(ag, template);
    let top = res.top_structures(1);
    println!("{name}:");
    println!("  special edges: {}", res.special_edge_count());
    match top.first() {
        Some(core) => {
            println!(
                "  densest structure: {} vertices {:?}, level {} ({})",
                core.vertices.len(),
                core.vertices.iter().map(|v| v.0).collect::<Vec<_>>(),
                core.level,
                if core.is_clique() {
                    "exact clique"
                } else {
                    "clique-like"
                }
            );
            assert_eq!(core.vertices.len(), expect_vertices);
        }
        None => println!("  no structure found"),
    }
    println!();
}

fn main() {
    println!("Figure 4: template pattern cliques on the illustration graphs\n");

    // (a) New Form: ABCDE = 0..5 all present in OG (attached to a hub),
    // their 10 mutual edges are all new.
    let og = Graph::from_edges(6, [(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    let mut ng = og.clone();
    for i in 0..5u32 {
        for j in (i + 1)..5 {
            ng.try_add_edge(VertexId(i), VertexId(j));
        }
    }
    report(
        "(a)/(d) New Form Clique ABCDE",
        &AttributedGraph::from_snapshots(&og, &ng),
        &NewFormClique,
        5,
    );

    // (b) Bridge: cliques {A,B}={0,1} with C,D (triangle 0-2-3... use the
    // paper's: ABCDE bridge from two disconnected cliques: {0,1,2} and {3,4}.
    let og = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)]);
    let mut ng = og.clone();
    for (a, b) in [(0u32, 3u32), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4)] {
        ng.try_add_edge(VertexId(a), VertexId(b));
    }
    report(
        "(b)/(e) Bridge Clique ABCDE",
        &AttributedGraph::from_snapshots(&og, &ng),
        &BridgeClique,
        5,
    );

    // (c) New Join: original triangle DEF = {3,4,5}, new vertices ABC =
    // {0,1,2}, all six forming a clique in NG.
    let og = Graph::from_edges(6, [(3, 4), (3, 5), (4, 5)]);
    let ng = generators::complete(6);
    report(
        "(c)/(f) New Join Clique ABCDEF",
        &AttributedGraph::from_snapshots(&og, &ng),
        &NewJoinClique,
        6,
    );
}
