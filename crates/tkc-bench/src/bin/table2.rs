#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Table II — execution time of CSV, TriDN, BiTriDN and Triangle K-Core
//! (Algorithm 1) across the datasets, plus the Claim 3 convergence check
//! (the DN variants must land on exactly κ).
//!
//! Like the paper (which skipped CSV/TriDN on the three largest graphs for
//! memory/time reasons), the expensive baselines are guarded: CSV runs on
//! graphs up to `TKC_CSV_MAX` edges (default 20 000), TriDN up to
//! `TKC_TRIDN_MAX` (default 1 200 000). BiTriDN and Triangle K-Core run
//! everywhere.

use tkc_baselines::csv::{csv_co_clique_sizes, CsvOptions};
use tkc_baselines::dngraph::{bitridn, tridn};
use tkc_bench::{fmt_secs, scale_from_env, seed_from_env, time, write_artifact, Table};
use tkc_core::decompose::triangle_kcore_decomposition;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let csv_max = env_usize("TKC_CSV_MAX", 20_000);
    let tridn_max = env_usize("TKC_TRIDN_MAX", 1_200_000);
    println!("Table II: execution time in seconds (scale multiplier {scale})\n");

    let mut table = Table::new(vec![
        "Graph",
        "|E|",
        "CSV",
        "TriDN (sweeps)",
        "BiTriDN (sweeps)",
        "TriangleKCore",
        "DN==κ",
    ]);
    for id in tkc_datasets::DatasetId::all() {
        let info = id.info();
        let g = tkc_datasets::build(id, info.default_scale * scale, seed);
        let m = g.num_edges();

        let (decomp, t_tkc) = time(|| triangle_kcore_decomposition(&g));

        let csv_cell = if m <= csv_max {
            let (_, t) = time(|| csv_co_clique_sizes(&g, &CsvOptions::default()));
            fmt_secs(t)
        } else {
            "-".to_string()
        };

        let (tridn_cell, tridn_ok) = if m <= tridn_max {
            let (est, t) = time(|| tridn(&g));
            let ok = g.edge_ids().all(|e| est.lambda(e) == decomp.kappa(e));
            (format!("{} ({})", fmt_secs(t), est.sweeps), Some(ok))
        } else {
            ("-".to_string(), None)
        };

        let (est, t_bi) = time(|| bitridn(&g));
        let bi_ok = g.edge_ids().all(|e| est.lambda(e) == decomp.kappa(e));
        let bitridn_cell = format!("{} ({})", fmt_secs(t_bi), est.sweeps);

        let converged = match tridn_ok {
            Some(t_ok) => t_ok && bi_ok,
            None => bi_ok,
        };
        table.row(vec![
            info.name.to_string(),
            m.to_string(),
            csv_cell,
            tridn_cell,
            bitridn_cell,
            fmt_secs(t_tkc),
            if converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print!("{}", table.render());
    write_artifact("table2.tsv", &table.to_tsv());
    println!("\n'-' = baseline skipped above its size guard (cf. the paper's footnote on CSV/TriDN for the largest graphs).");
}
