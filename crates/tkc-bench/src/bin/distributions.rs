#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Bonus exhibit: κ-distribution statistics and histograms across the
//! dataset registry — the aggregate view behind every density plot, and a
//! quick sanity check that the stand-ins reproduce the heavy-tailed
//! structure the paper's real graphs have.

use tkc_bench::{scale_from_env, seed_from_env, write_artifact, Table};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::extract::kappa_stats;
use tkc_viz::distribution::{distribution_tsv, kappa_ccdf, render_kappa_histogram};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("κ distributions across the registry (scale multiplier {scale})\n");

    let mut table = Table::new(vec![
        "Graph",
        "edges",
        "max κ",
        "mean κ",
        "κ=0 %",
        "κ≥3 %",
        "top cores",
    ]);
    for id in tkc_datasets::DatasetId::all() {
        let info = id.info();
        let g = tkc_datasets::build(id, info.default_scale * scale, seed);
        let d = triangle_kcore_decomposition(&g);
        let s = kappa_stats(&g, &d);
        let hist = d.histogram();
        let ccdf = kappa_ccdf(&hist);
        table.row(vec![
            info.name.to_string(),
            s.edges.to_string(),
            s.max_kappa.to_string(),
            format!("{:.2}", s.mean_kappa),
            format!("{:.1}", 100.0 * s.triangle_free_fraction),
            format!("{:.1}", 100.0 * ccdf.get(3).copied().unwrap_or(0.0)),
            s.top_level_cores.to_string(),
        ]);
        write_artifact(
            &format!("dist_{}.svg", info.name.to_lowercase()),
            &render_kappa_histogram(
                &hist,
                &format!("{} — κ distribution (log counts)", info.name),
                600,
                240,
            ),
        );
        write_artifact(
            &format!("dist_{}.tsv", info.name.to_lowercase()),
            &distribution_tsv(&hist),
        );
    }
    print!("{}", table.render());
    write_artifact("distributions.tsv", &table.to_tsv());
}
