#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 9 — New Form Cliques in the DBLP-style snapshot pair: six
//! veterans who never collaborated before form a brand-new 6-clique; the
//! pattern plot's densest peak is exactly that clique.

use tkc_bench::{seed_from_env, write_artifact};
use tkc_datasets::collaboration::new_form_scenario;
use tkc_patterns::{detect_template, AttributedGraph, NewFormClique};
use tkc_viz::ordering::density_order;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn main() {
    let seed = seed_from_env();
    let (g2003, g2004, planted) = new_form_scenario(2000, 1200, 6, seed);
    println!(
        "Figure 9: New Form Clique plot (DBLP 2003 → 2004 stand-in, {} authors)\n",
        g2004.num_vertices()
    );

    let ag = AttributedGraph::from_snapshots(&g2003, &g2004);
    let res = detect_template(&ag, &NewFormClique);
    let plot = density_order(ag.graph(), &res.co_clique);
    println!("pattern plot: {}\n", ascii_sparkline(&plot, 72));
    println!("special edges: {}", res.special_edge_count());

    let top = res.top_structures(10);
    for core in top.iter().take(3) {
        println!(
            "  new-form structure: {} authors at level {} ({})",
            core.vertices.len(),
            core.level,
            if core.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
    // The planted 6-author first-time collaboration must sit at the plot's
    // top level: every one of its 15 edges is special with co-clique >= 6.
    // (Background churn legitimately produces other new teams at the same
    // level — the real DBLP plot has many peaks too.)
    for (i, &u) in planted.iter().enumerate() {
        for &v in &planted[i + 1..] {
            let e = ag.graph().edge_between(u, v).expect("planted edge");
            assert!(
                res.co_clique[e.index()] >= 6,
                "planted edge below the 6-clique peak"
            );
        }
    }
    println!(
        "\nthe planted 6-author first-time collaboration sits at the plot's top level (co-clique {}).",
        plot.max_value()
    );

    let svg = render_density_plot(
        &plot,
        &PlotStyle {
            title: "DBLP 2004 — New Form Clique distribution".into(),
            ..PlotStyle::default()
        },
    );
    write_artifact("fig9_new_form.svg", &svg);
    write_artifact("fig9_new_form.tsv", &density_plot_tsv(&plot));
}
