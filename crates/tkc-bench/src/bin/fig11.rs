#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 11 — New Join Cliques in the DBLP-style pair: a three-author
//! team from year 2000 is joined by six authors who never appeared before,
//! forming a 9-author clique in 2001 (the paper's top-down query
//! optimization paper).

use tkc_bench::{seed_from_env, write_artifact};
use tkc_datasets::collaboration::new_join_scenario;
use tkc_patterns::{detect_template, AttributedGraph, NewJoinClique};
use tkc_viz::ordering::density_order;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

fn main() {
    let seed = seed_from_env();
    let (g2000, g2001, planted) = new_join_scenario(2000, 1200, 3, 6, seed);
    println!(
        "Figure 11: New Join Clique plot (DBLP 2000 → 2001 stand-in, {} authors)\n",
        g2001.num_vertices()
    );

    let ag = AttributedGraph::from_snapshots(&g2000, &g2001);
    let res = detect_template(&ag, &NewJoinClique);
    let plot = density_order(ag.graph(), &res.co_clique);
    println!("pattern plot: {}\n", ascii_sparkline(&plot, 72));

    let top = res.top_structures(3);
    for core in &top {
        println!(
            "  new-join structure: {} authors at level {} ({})",
            core.vertices.len(),
            core.level,
            if core.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            }
        );
    }
    let densest = &top[0];
    assert_eq!(densest.vertices.len(), 9, "planted 9-author clique");
    assert!(planted.iter().all(|v| densest.vertices.contains(v)));
    println!("\nthe densest New Join clique is the planted 3-veteran + 6-newcomer paper.");

    let svg = render_density_plot(
        &plot,
        &PlotStyle {
            title: "DBLP 2001 — New Join Clique distribution".into(),
            ..PlotStyle::default()
        },
    );
    write_artifact("fig11_new_join.svg", &svg);
    write_artifact("fig11_new_join.tsv", &density_plot_tsv(&plot));
}
