#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Figure 6 — qualitative comparison of CSV and Triangle K-Core density
//! plots on the six smaller datasets. Emits a two-band SVG per dataset
//! (CSV co-clique sizes above, κ+2 proxy below), TSV series, and prints
//! the Pearson similarity of the two value assignments — the quantitative
//! version of the paper's similar (S) / phase-shift (PS) annotations.

use tkc_baselines::csv::{csv_co_clique_sizes, CsvOptions};
use tkc_bench::{fmt_secs, scale_from_env, seed_from_env, time, write_artifact, Table};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_datasets::DatasetId;
use tkc_viz::ordering::{density_order, plot_similarity};
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, draw_series_pair};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let csv_max = env_usize("TKC_CSV_MAX", 25_000);
    println!("Figure 6: CSV vs Triangle K-Core density plots\n");

    let datasets = [
        DatasetId::Synthetic,
        DatasetId::Stocks,
        DatasetId::Ppi,
        DatasetId::Dblp,
        DatasetId::AstroAuthor,
        DatasetId::Epinions,
    ];
    let mut table = Table::new(vec![
        "Graph",
        "CSV est. s",
        "TKC s",
        "similarity",
        "verdict",
    ]);
    for id in datasets {
        let info = id.info();
        let g = tkc_datasets::build(id, info.default_scale * scale, seed);

        let (d, t_tkc) = time(|| triangle_kcore_decomposition(&g));
        let mut kappa_vals = vec![0u32; g.edge_bound()];
        for e in g.edge_ids() {
            kappa_vals[e.index()] = d.kappa(e) + 2;
        }
        let tkc_plot = density_order(&g, &kappa_vals);

        // CSV values: exact-but-budgeted on small graphs; above the guard
        // the paper's §VI observation applies (DN-Graph == κ), so we plot
        // the proxy on both bands and mark the row.
        let (csv_vals, t_csv, guarded) = if g.num_edges() <= csv_max {
            let (res, t) = time(|| csv_co_clique_sizes(&g, &CsvOptions::default()));
            (res.co_clique, Some(t), false)
        } else {
            (kappa_vals.clone(), None, true)
        };
        let csv_plot = density_order(&g, &csv_vals);

        let sim = plot_similarity(&csv_plot, &tkc_plot, g.num_vertices());
        let verdict = if guarded {
            "guarded (proxy==proxy)"
        } else if sim > 0.98 {
            "near identical (S)"
        } else if sim > 0.9 {
            "similar (S)"
        } else {
            "phase shift (PS)"
        };
        table.row(vec![
            info.name.to_string(),
            t_csv.map(fmt_secs).unwrap_or_else(|| "-".into()),
            fmt_secs(t_tkc),
            format!("{sim:.4}"),
            verdict.to_string(),
        ]);

        let svg = draw_series_pair(
            &csv_plot,
            &tkc_plot,
            &format!("{} — CSV co-clique sizes", info.name),
            &format!("{} — Triangle K-Core proxy (κ+2)", info.name),
            900,
            220,
        );
        write_artifact(&format!("fig6_{}.svg", info.name.to_lowercase()), &svg);
        write_artifact(
            &format!("fig6_{}_tkc.tsv", info.name.to_lowercase()),
            &density_plot_tsv(&tkc_plot),
        );
        println!("  {:<14} {}", info.name, ascii_sparkline(&tkc_plot, 64));
    }
    println!();
    print!("{}", table.render());
    write_artifact("fig6_summary.tsv", &table.to_tsv());
}
