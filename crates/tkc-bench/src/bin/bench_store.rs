//! `bench_store` — the out-of-core store trajectory.
//!
//! Measures the `TKCSTOR` pipeline end to end on the streamed synthetic
//! graph (>=10x the 120k-edge bench families in full mode): pack time
//! and compression against the raw-CSR yardstick, the out-of-core
//! stratum peel under a hard resident budget **smaller than the raw CSR
//! size**, and the engine's cold-start ladder — reopen from the packed
//! store vs parsing the text snapshot vs rebuilding the decomposition
//! from scratch. Writes the machine-readable record `BENCH_store.json`
//! so future store PRs append to a trajectory instead of claiming
//! speedups in prose.
//!
//! ```text
//! cargo run --release -p tkc-bench --bin bench_store            # full
//! cargo run --release -p tkc-bench --bin bench_store -- --quick # CI smoke
//! ```
//!
//! Flags / env: `--quick` shrinks the graph for the CI smoke step; `--out
//! <path>` overrides the JSON destination (default `BENCH_store.json` in
//! the working directory); `TKC_SEED` seeds the generator.
//!
//! Three gates abort the bench rather than record a lie:
//!
//! * the out-of-core κ must be bit-identical to the in-memory peel;
//! * the peel's peak resident footprint must stay within its budget,
//!   which itself must be smaller than the raw CSR size;
//! * engine reopen from the packed store must beat the no-snapshot
//!   rebuild — Engine::open replaying the full WAL through the dynamic
//!   maintainer — by >=10x.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use std::path::Path;
use std::time::Duration;

use tkc_bench::{fmt_secs, seed_from_env, time};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::ooc::{decompose_ooc, OocConfig};
use tkc_core::persist::{read_state, write_state, write_state_with_store};
use tkc_datasets::{build_streamed, StreamedConfig};
use tkc_engine::{Engine, EngineConfig, WalOp, STATE_FILE, STORE_FILE};
use tkc_graph::csr::edge_supports_csr;
use tkc_store::pack_graph;

/// Min-of-`reps` timing of `f`; the value of the best run is returned.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps.max(1) {
        let (value, elapsed) = time(&mut f);
        if elapsed < best {
            best = elapsed;
            out = value;
        }
    }
    (out, best)
}

/// Min-of-`reps` timing where each run's value must be dropped before
/// the next starts (two engines must not hold the same dir at once).
fn best_of_serial<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let (value, elapsed) = time(&mut f);
        drop(value);
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

fn raw_config(dir: &Path) -> EngineConfig {
    EngineConfig {
        fsync: false,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_store.json".to_string());
    let seed = seed_from_env();
    let reps = 3;

    // The acceptance workload: the streamed generator at ~1.3M edges
    // (>=10x the 120k-edge bench families). Quick mode keeps the exact
    // structure (ring + chords + planted cliques) at ~70k edges.
    let cfg = if quick {
        StreamedConfig {
            vertices: 16_384,
            ..StreamedConfig::bench(seed)
        }
    } else {
        StreamedConfig::bench(seed)
    };
    tkc_obs::info!(
        "bench_store ({} mode, seed {seed}): streaming {} vertices",
        if quick { "quick" } else { "full" },
        cfg.vertices,
    );
    let g = build_streamed(&cfg);
    let (vertices, edges) = (g.num_vertices(), g.num_edges());

    // In-memory reference peel: the κ every other path must reproduce
    // bit-for-bit, and the "decompose" leg of the rebuild baseline.
    let (reference, decompose_time) = best_of(reps, || triangle_kcore_decomposition(&g));
    let max_kappa = reference.max_kappa();
    tkc_obs::info!(
        "  graph: {vertices} vertices / {edges} edges, max κ {max_kappa}, \
         in-memory peel {} s",
        fmt_secs(decompose_time),
    );

    // Pack: supports + κ into TKCSTOR, written into a scratch engine dir
    // laid out exactly as compaction leaves it (stamped snapshot next to
    // the store), so the cold-start ladder below opens a real dir.
    let dir = std::env::temp_dir().join(format!("tkc_bench_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let store_path = dir.join(STORE_FILE);
    let supports = edge_supports_csr(&g);
    let (file_bytes, pack_time) = best_of(reps, || {
        let parts = pack_graph(&g, &supports, Some(reference.kappa_slice())).expect("pack");
        let bytes = parts.write_path(&store_path).expect("write store");
        (bytes, parts.stamp(), parts.info())
    });
    let (store_bytes, stamp, info) = file_bytes;
    let raw_csr_bytes = info.raw_csr_bytes();
    let bytes_per_edge = store_bytes as f64 / edges.max(1) as f64;
    let ratio_vs_raw_csr = store_bytes as f64 / raw_csr_bytes.max(1) as f64;
    tkc_obs::info!(
        "  pack: {} s, {store_bytes} B on disk vs {raw_csr_bytes} B raw CSR \
         ({bytes_per_edge:.1} B/edge, {ratio_vs_raw_csr:.2}x raw)",
        fmt_secs(pack_time),
    );

    // Out-of-core peel under a hard budget smaller than the raw CSR —
    // the RAM-wall acceptance: κ identical, peak resident under budget,
    // budget under what the in-memory CSR alone would occupy. The floor
    // is the biggest single-support stratum (support-0 chords, which no
    // stratum boundary can split) plus the caches' fixed shares: 5/8 of
    // the raw CSR clears it at full scale, 3/4 on the small quick graph
    // where the fixed floors weigh proportionally more.
    let budget = if quick {
        raw_csr_bytes * 3 / 4
    } else {
        raw_csr_bytes * 5 / 8
    };
    assert!(budget < raw_csr_bytes, "budget must undercut the raw CSR");
    let (ooc, ooc_time) =
        time(|| decompose_ooc(&store_path, &OocConfig::with_budget(budget)).expect("ooc peel"));
    assert_eq!(
        ooc.kappa.as_slice(),
        reference.kappa_slice(),
        "out-of-core κ diverged from the in-memory peel"
    );
    assert_eq!(ooc.max_kappa, max_kappa);
    let peak = ooc.stats.peak_resident_bytes();
    assert!(
        peak <= budget,
        "peel peak {peak} B exceeded its {budget} B budget"
    );
    tkc_obs::info!(
        "  ooc peel: {} s under {budget} B budget ({} strata, peak {peak} B, \
         {} B spilled, {} edges pulled) — κ bit-identical",
        fmt_secs(ooc_time),
        ooc.stats.strata,
        ooc.stats.spilled_bytes,
        ooc.stats.pulled_edges,
    );

    // Cold-start ladder: the same Engine::open against progressively
    // poorer starting points. The dir now holds the store; add the
    // stamped snapshot so open takes the fast path, then measure a
    // stampless (text-only) dir, then a batch re-decomposition (text
    // parse + full peel), and finally the true rebuild — Engine::open
    // of a WAL-only dir, replaying every op through the dynamic
    // maintainer, which is what cold start costs with no snapshot at
    // all and what the packed store exists to avoid.
    let state_path = dir.join(STATE_FILE);
    let file = std::fs::File::create(&state_path).expect("create state");
    write_state_with_store(&g, reference.kappa_slice(), Some(&stamp), file).expect("write state");
    let store_open = best_of_serial(reps, || {
        let engine = Engine::open(raw_config(&dir)).expect("store reopen");
        assert_eq!(engine.metrics().store_reopens.get(), 1, "must fast-path");
        engine
    });

    let text_dir = dir.join("text_only");
    std::fs::create_dir_all(&text_dir).expect("create text dir");
    let file = std::fs::File::create(text_dir.join(STATE_FILE)).expect("create state");
    write_state(&g, reference.kappa_slice(), file).expect("write text state");
    let text_open = best_of_serial(reps, || {
        let engine = Engine::open(raw_config(&text_dir)).expect("text reopen");
        assert_eq!(
            engine.metrics().store_reopens.get(),
            0,
            "must not fast-path"
        );
        engine
    });

    let redecompose = best_of_serial(reps, || {
        let file = std::fs::File::open(text_dir.join(STATE_FILE)).expect("open state");
        let (g2, _stored_kappa) = read_state(file).expect("parse state");
        let d = triangle_kcore_decomposition(&g2);
        assert_eq!(d.max_kappa(), max_kappa, "re-decomposition diverged");
        (g2, d)
    });

    // WAL-only dir: the full edge stream as Insert ops, never compacted.
    // Seeding it costs one replay up front; the timed run is a second
    // Engine::open over the same log.
    let wal_dir = dir.join("wal_only");
    std::fs::create_dir_all(&wal_dir).expect("create wal dir");
    {
        let engine = Engine::open(raw_config(&wal_dir)).expect("open wal dir");
        let mut batch: Vec<WalOp> = Vec::with_capacity(65_536);
        batch.push(WalOp::AddVertices(vertices as u32));
        tkc_datasets::streamed::stream_edges(&cfg, |u, v| -> Result<(), ()> {
            batch.push(WalOp::Insert(u, v));
            if batch.len() == batch.capacity() {
                engine.apply(&batch).expect("apply wal batch");
                batch.clear();
            }
            Ok(())
        })
        .expect("stream wal ops");
        if !batch.is_empty() {
            engine.apply(&batch).expect("apply wal batch");
        }
    }
    let rebuild = best_of_serial(1, || {
        let engine = Engine::open(raw_config(&wal_dir)).expect("wal replay");
        assert_eq!(
            engine.metrics().store_reopens.get(),
            0,
            "must not fast-path"
        );
        engine
    });

    let speedup_vs_text = millis(text_open) / millis(store_open).max(1e-9);
    let speedup_vs_redecompose = millis(redecompose) / millis(store_open).max(1e-9);
    let speedup_vs_rebuild = millis(rebuild) / millis(store_open).max(1e-9);
    tkc_obs::info!(
        "  cold start: store {} s, text {} s ({speedup_vs_text:.1}x), \
         re-decompose {} s ({speedup_vs_redecompose:.1}x), \
         wal replay {} s ({speedup_vs_rebuild:.1}x)",
        fmt_secs(store_open),
        fmt_secs(text_open),
        fmt_secs(redecompose),
        fmt_secs(rebuild),
    );
    let gate = 10.0;
    assert!(
        speedup_vs_rebuild >= gate,
        "cold-start gate: store reopen is only {speedup_vs_rebuild:.2}x the \
         WAL-replay rebuild (need >={gate}x)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store\",\n",
            "  \"version\": 1,\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seed\": {seed},\n",
            "  \"graph\": {{\"source\":\"streamed\",\"vertices\":{vertices},",
            "\"edges\":{edges},\"max_kappa\":{max_kappa}}},\n",
            "  \"pack\": {{\"millis\":{pack:.3},\"file_bytes\":{store_bytes},",
            "\"raw_csr_bytes\":{raw_csr_bytes},\"bytes_per_edge\":{bpe:.2},",
            "\"ratio_vs_raw_csr\":{ratio:.3}}},\n",
            "  \"ooc\": {{\"budget_bytes\":{budget},\"millis\":{ooc:.3},",
            "\"strata\":{strata},\"pulled_edges\":{pulled},",
            "\"peak_resident_bytes\":{peak},\"spilled_bytes\":{spilled},",
            "\"kappa_identical\":true}},\n",
            "  \"cold_start\": {{\"reopen_store_millis\":{so:.3},",
            "\"reopen_text_millis\":{to:.3},",
            "\"redecompose_millis\":{rd:.3},\"rebuild_wal_millis\":{rb:.3},",
            "\"speedup_store_vs_text\":{svt:.2},",
            "\"speedup_store_vs_redecompose\":{svd:.2},",
            "\"speedup_store_vs_rebuild\":{svr:.2}}}\n",
            "}}\n",
        ),
        mode = if quick { "quick" } else { "full" },
        seed = seed,
        vertices = vertices,
        edges = edges,
        max_kappa = max_kappa,
        pack = millis(pack_time),
        store_bytes = store_bytes,
        raw_csr_bytes = raw_csr_bytes,
        bpe = bytes_per_edge,
        ratio = ratio_vs_raw_csr,
        budget = budget,
        ooc = millis(ooc_time),
        strata = ooc.stats.strata,
        pulled = ooc.stats.pulled_edges,
        peak = peak,
        spilled = ooc.stats.spilled_bytes,
        so = millis(store_open),
        to = millis(text_open),
        rd = millis(redecompose),
        rb = millis(rebuild),
        svt = speedup_vs_text,
        svd = speedup_vs_redecompose,
        svr = speedup_vs_rebuild,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_store.json");
    std::fs::remove_dir_all(&dir).ok();
    println!("wrote {out_path}");
    println!(
        "headline: reopen from packed store {speedup_vs_rebuild:.1}x over rebuild, \
         ooc peel under {budget} B budget ({:.0}% of raw CSR), κ bit-identical",
        100.0 * budget as f64 / raw_csr_bytes.max(1) as f64,
    );
}
