#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Bench: the triangle substrate — support computation, counting, and the
//! stored vs streaming decomposition tradeoff of §IV-A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkc_core::decompose::{triangle_kcore_decomposition, triangle_kcore_decomposition_stored};
use tkc_datasets::DatasetId;
use tkc_graph::triangles::{edge_supports, triangle_count};

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangles");
    for (id, scale) in [(DatasetId::Ppi, 0.5), (DatasetId::AstroAuthor, 0.1)] {
        let g = tkc_datasets::build(id, scale, 42);
        let name = format!("{}_{}e", id.info().name, g.num_edges());
        group.bench_with_input(BenchmarkId::new("edge_supports", &name), &g, |b, g| {
            b.iter(|| edge_supports(g))
        });
        group.bench_with_input(
            BenchmarkId::new("edge_supports_parallel", &name),
            &g,
            |b, g| b.iter(|| tkc_graph::parallel::edge_supports_parallel(g, 0)),
        );
        group.bench_with_input(BenchmarkId::new("triangle_count", &name), &g, |b, g| {
            b.iter(|| triangle_count(g))
        });
        group.bench_with_input(
            BenchmarkId::new("decompose_streaming", &name),
            &g,
            |b, g| b.iter(|| triangle_kcore_decomposition(g)),
        );
        group.bench_with_input(BenchmarkId::new("decompose_stored", &name), &g, |b, g| {
            b.iter(|| triangle_kcore_decomposition_stored(g))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_triangles
}
criterion_main!(benches);
