#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Bench: incremental maintenance vs full recomputation across change-batch
//! sizes (the microbenchmark behind Table III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore};
use tkc_datasets::scenarios::churn_script;
use tkc_datasets::DatasetId;

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    let g = tkc_datasets::build(DatasetId::AstroAuthor, 0.2, 42);
    let kappa = triangle_kcore_decomposition(&g).into_kappa();

    for fraction in [0.001, 0.005, 0.01, 0.05] {
        let (dels, ins) = churn_script(&g, fraction, 7);
        let ops: Vec<BatchOp> = dels
            .iter()
            .map(|&(u, v)| BatchOp::Remove(u, v))
            .chain(ins.iter().map(|&(u, v)| BatchOp::Insert(u, v)))
            .collect();
        let label = format!("{}ops", ops.len());
        group.bench_with_input(BenchmarkId::new("incremental", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut m = DynamicTriangleKCore::from_parts(g.clone(), kappa.clone());
                m.apply_batch(ops.iter().copied());
                m
            })
        });
        group.bench_with_input(BenchmarkId::new("recompute", &label), &ops, |b, ops| {
            b.iter(|| {
                // Apply the edits structurally, then run Algorithm 1 fresh.
                let mut h = g.clone();
                for op in ops {
                    match *op {
                        BatchOp::Insert(u, v) => {
                            let _ = h.try_add_edge(u, v);
                        }
                        BatchOp::Remove(u, v) => {
                            let _ = h.remove_edge_between(u, v);
                        }
                    }
                }
                triangle_kcore_decomposition(&h)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dynamic
}
criterion_main!(benches);
