#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Ablations for the design choices DESIGN.md calls out:
//!
//! * bucket queue vs a binary-heap peel (the paper's step-7 bucket-sort
//!   optimization);
//! * per-triangle incremental updates vs recompute at single-edge
//!   granularity (insertion and deletion separately);
//! * galloping vs full-merge triangle enumeration is implicit in the
//!   substrate, measured through hub-edge support counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_datasets::DatasetId;
use tkc_graph::triangles::edge_supports;
use tkc_graph::{EdgeId, Graph};

/// Algorithm 1 with a binary heap instead of the bucket queue — the
/// baseline the paper's bucket-sort optimization is measured against.
/// Lazy deletion: stale heap entries are skipped on pop.
fn heap_peel(g: &Graph) -> Vec<u32> {
    let bound = g.edge_bound();
    let mut sup = edge_supports(g);
    let mut kappa = vec![0u32; bound];
    let mut processed = vec![false; bound];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = g
        .edge_ids()
        .map(|e| Reverse((sup[e.index()], e.0)))
        .collect();
    let mut level = 0u32;
    while let Some(Reverse((s, raw))) = heap.pop() {
        let e = EdgeId(raw);
        if processed[e.index()] || s != sup[e.index()] {
            continue;
        }
        level = level.max(s);
        kappa[e.index()] = level;
        processed[e.index()] = true;
        g.for_each_triangle_on_edge(e, |_, e1, e2| {
            if processed[e1.index()] || processed[e2.index()] {
                return;
            }
            for x in [e1, e2] {
                if sup[x.index()] > level {
                    sup[x.index()] -= 1;
                    heap.push(Reverse((sup[x.index()], x.0)));
                }
            }
        });
    }
    kappa
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    let g = tkc_datasets::build(DatasetId::AstroAuthor, 0.15, 42);

    // Sanity before measuring: the heap variant must agree.
    let reference = triangle_kcore_decomposition(&g);
    let heap_result = heap_peel(&g);
    for e in g.edge_ids() {
        assert_eq!(heap_result[e.index()], reference.kappa(e));
    }

    let name = format!("astro_{}e", g.num_edges());
    group.bench_with_input(BenchmarkId::new("peel_bucket", &name), &g, |b, g| {
        b.iter(|| triangle_kcore_decomposition(g))
    });
    group.bench_with_input(BenchmarkId::new("peel_binary_heap", &name), &g, |b, g| {
        b.iter(|| heap_peel(g))
    });

    // Single-op granularity: one insertion / one deletion vs recompute.
    let kappa = triangle_kcore_decomposition(&g).into_kappa();
    let (e0, u0, v0) = g.edges().next().unwrap();
    let _ = e0;
    group.bench_function("single_delete_incremental", |b| {
        b.iter(|| {
            let mut m = DynamicTriangleKCore::from_parts(g.clone(), kappa.clone());
            m.remove_edge_between(u0, v0).unwrap();
            m
        })
    });
    group.bench_function("single_delete_recompute", |b| {
        b.iter(|| {
            let mut h = g.clone();
            h.remove_edge_between(u0, v0).unwrap();
            triangle_kcore_decomposition(&h)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
