#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Bench: the density-plot ordering (§V) and dual-view construction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_datasets::scenarios::wiki_dual_view_scenario;
use tkc_datasets::DatasetId;
use tkc_viz::dual_view::dual_view;
use tkc_viz::ordering::kappa_density_plot;

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    for (id, scale) in [(DatasetId::Ppi, 1.0), (DatasetId::AstroAuthor, 0.1)] {
        let g = tkc_datasets::build(id, scale, 42);
        let d = triangle_kcore_decomposition(&g);
        let name = format!("{}_{}v", id.info().name, g.num_vertices());
        group.bench_with_input(
            BenchmarkId::new("kappa_density_plot", &name),
            &(&g, &d),
            |b, (g, d)| b.iter(|| kappa_density_plot(g, d)),
        );
    }
    let (g, adds, _) = wiki_dual_view_scenario(0.25, 42);
    group.bench_function("dual_view_wiki_quarter", |b| {
        b.iter(|| dual_view(&g, &adds, 3))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ordering
}
criterion_main!(benches);
