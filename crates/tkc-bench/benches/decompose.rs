#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Bench: Algorithm 1 against every baseline (the microbenchmark behind
//! Table II). CSV only runs at the small size; the iterative DN variants
//! run everywhere to show the sweep-count gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkc_baselines::csv::{csv_co_clique_sizes, CsvOptions};
use tkc_baselines::dngraph::{bitridn, tridn};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::reference::naive_kappa;
use tkc_datasets::DatasetId;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for (id, scale) in [
        (DatasetId::Synthetic, 1.0),
        (DatasetId::Stocks, 1.0),
        (DatasetId::Ppi, 0.25),
        (DatasetId::AstroAuthor, 0.05),
    ] {
        let g = tkc_datasets::build(id, scale, 42);
        let name = format!("{}_{}e", id.info().name, g.num_edges());
        group.bench_with_input(BenchmarkId::new("triangle_kcore", &name), &g, |b, g| {
            b.iter(|| triangle_kcore_decomposition(g))
        });
        group.bench_with_input(BenchmarkId::new("tridn", &name), &g, |b, g| {
            b.iter(|| tridn(g))
        });
        group.bench_with_input(BenchmarkId::new("bitridn", &name), &g, |b, g| {
            b.iter(|| bitridn(g))
        });
        if g.num_edges() <= 2_000 {
            group.bench_with_input(BenchmarkId::new("csv", &name), &g, |b, g| {
                b.iter(|| csv_co_clique_sizes(g, &CsvOptions::default()))
            });
            group.bench_with_input(BenchmarkId::new("naive_pruning", &name), &g, |b, g| {
                b.iter(|| naive_kappa(g))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decompose
}
criterion_main!(benches);
