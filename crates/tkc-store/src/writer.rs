//! Packing a graph snapshot into `TKCSTOR` bytes.
//!
//! [`pack_graph`] serializes a [`Graph`] (plus its per-edge supports and,
//! optionally, κ) into the section payloads described in [`crate::format`].
//! The result is a [`StoreParts`] value holding the encoded sections;
//! writing it out goes through the [`WalStorage`] trait with **one
//! positioned write per part** (header, table, then each section in
//! order), so the tkc-faults harness can target any single section with a
//! deterministic bitflip/short-write failpoint — the same discipline the
//! engine's WAL follows.
//!
//! Packing is the in-memory side of the out-of-core story: it runs where
//! the graph already lives in RAM (engine compaction, `tkc store pack`)
//! and exists so every *later* consumer — decompose, reopen, serving —
//! does not have to.

use std::io;
use std::path::Path;

use tkc_faults::{DiskFile, WalStorage};
use tkc_graph::Graph;

use crate::crc::crc32;
use crate::format::{
    SectionDesc, SectionTag, StoreError, StoreHeader, StoreInfo, DEAD_SLOT, FLAG_HAS_KAPPA,
    HEADER_LEN, SECTION_ENTRY_LEN,
};
use crate::varint::{encode_delta_list, encode_u64};

/// A fully encoded store: header + section table + payloads, ready to be
/// written through any [`WalStorage`].
#[derive(Debug)]
pub struct StoreParts {
    header: StoreHeader,
    sections: Vec<(SectionDesc, Vec<u8>)>,
}

/// Encodes `g` (with `supports`, and κ when given) into store parts.
///
/// `supports` — and `kappa`, when present — must be indexed by raw edge
/// id, `g.edge_bound()` long, exactly as produced by
/// `CsrGraph::edge_supports` / the decomposition. Dead slots may hold any
/// value; the reader masks them via the EDGE section's sentinel pairs.
pub fn pack_graph(
    g: &Graph,
    supports: &[u32],
    kappa: Option<&[u32]>,
) -> Result<StoreParts, StoreError> {
    let n = g.num_vertices();
    let edge_bound = g.edge_bound();
    if supports.len() != edge_bound {
        return Err(StoreError::Corrupt(format!(
            "supports length {} != edge bound {edge_bound}",
            supports.len()
        )));
    }
    if let Some(k) = kappa {
        if k.len() != edge_bound {
            return Err(StoreError::Corrupt(format!(
                "kappa length {} != edge bound {edge_bound}",
                k.len()
            )));
        }
    }

    // Adjacency: delta-varint neighbor ids + varint edge ids, with a
    // (nbr, eid) byte-offset pair per vertex (plus the end sentinel).
    let mut offs = Vec::with_capacity(16 * (n + 1));
    let mut nbrs = Vec::new();
    let mut eids = Vec::new();
    let mut nbr_scratch: Vec<u32> = Vec::new();
    for v in 0..n {
        offs.extend_from_slice(&(nbrs.len() as u64).to_le_bytes());
        offs.extend_from_slice(&(eids.len() as u64).to_le_bytes());
        nbr_scratch.clear();
        let list = g.adjacency(tkc_graph::VertexId::from(v));
        nbr_scratch.extend(list.iter().map(|&(w, _)| w.0));
        encode_delta_list(&mut nbrs, &nbr_scratch);
        for &(_, e) in list {
            encode_u64(&mut eids, u64::from(e.0));
        }
    }
    offs.extend_from_slice(&(nbrs.len() as u64).to_le_bytes());
    offs.extend_from_slice(&(eids.len() as u64).to_le_bytes());

    // Edge-slot endpoints; dead slots get sentinel pairs.
    let mut edge = Vec::with_capacity(8 * edge_bound);
    for i in 0..edge_bound {
        let (u, v) = match g.endpoints_checked(tkc_graph::EdgeId::from(i)) {
            Some((u, v)) => (u.0, v.0),
            None => (DEAD_SLOT, DEAD_SLOT),
        };
        edge.extend_from_slice(&u.to_le_bytes());
        edge.extend_from_slice(&v.to_le_bytes());
    }

    let mut supp = Vec::with_capacity(4 * edge_bound);
    for &s in supports {
        supp.extend_from_slice(&s.to_le_bytes());
    }

    let mut payloads = vec![
        (SectionTag::Offsets, offs),
        (SectionTag::Neighbors, nbrs),
        (SectionTag::EdgeIds, eids),
        (SectionTag::Edges, edge),
        (SectionTag::Supports, supp),
    ];
    let mut flags = 0u32;
    if let Some(k) = kappa {
        let mut kap = Vec::with_capacity(4 * edge_bound);
        for &x in k {
            kap.extend_from_slice(&x.to_le_bytes());
        }
        payloads.push((SectionTag::Kappa, kap));
        flags |= FLAG_HAS_KAPPA;
    }

    let header = StoreHeader {
        num_vertices: n as u64,
        edge_bound: edge_bound as u64,
        num_edges: g.num_edges() as u64,
        flags,
        section_count: payloads.len() as u32,
    };
    // Lay out payloads back to back after the table and checksum them.
    let table_len = payloads.len() * SECTION_ENTRY_LEN + 4;
    let mut at = (HEADER_LEN + table_len) as u64;
    let sections = payloads
        .into_iter()
        .map(|(tag, bytes)| {
            let desc = SectionDesc {
                tag,
                offset: at,
                len: bytes.len() as u64,
                crc: crc32(&bytes),
            };
            at += desc.len;
            (desc, bytes)
        })
        .collect();
    Ok(StoreParts { header, sections })
}

impl StoreParts {
    /// Total encoded size in bytes.
    pub fn total_bytes(&self) -> u64 {
        let payloads: u64 = self.sections.iter().map(|(d, _)| d.len).sum();
        (HEADER_LEN + self.sections.len() * SECTION_ENTRY_LEN + 4) as u64 + payloads
    }

    /// Summary for `tkc store info` / the bench harness.
    pub fn info(&self) -> StoreInfo {
        StoreInfo {
            num_vertices: self.header.num_vertices as usize,
            num_edges: self.header.num_edges as usize,
            edge_bound: self.header.edge_bound as usize,
            has_kappa: self.header.has_kappa(),
            file_bytes: self.total_bytes(),
            sections: self.sections.iter().map(|(d, _)| (d.tag, d.len)).collect(),
        }
    }

    /// The encoded section table (entries + trailing table crc).
    fn encode_table(&self) -> Vec<u8> {
        let mut table = Vec::with_capacity(self.sections.len() * SECTION_ENTRY_LEN + 4);
        for (desc, _) in &self.sections {
            desc.encode(&mut table);
        }
        let crc = crc32(&table);
        table.extend_from_slice(&crc.to_le_bytes());
        table
    }

    /// The store's identity stamp: a crc over the header fields and
    /// section-table entries, **excluding** the embedded header/table
    /// checksums. The exclusion is load-bearing: CRC32 is linear, so a
    /// stream ending in its own crc leaves the accumulator at a constant
    /// residue no matter the content — stamping `header‖crc‖table‖crc`
    /// whole would make every store stamp identical. What remains still
    /// pins the identity: the header carries the counts/flags and each
    /// table entry carries its section's length and *payload* crc, so
    /// any payload change at pack time changes the stamp.
    ///
    /// This is an **identity** for pairing a snapshot with the store
    /// packed alongside it (see `tkc-core::persist::verify_store_stamp`),
    /// not an integrity check of the payload bytes on disk — those are
    /// covered by the per-section crcs the reader verifies on access.
    /// Compare with [`crate::reader::file_stamp`] on reopen.
    pub fn stamp(&self) -> String {
        let head = self.header.encode();
        let table = self.encode_table();
        let mut crc = crate::crc::Crc32::new();
        // Stamp the header minus its trailing crc (same exclusion as the table).
        crc.update(head.get(..HEADER_LEN - 4).unwrap_or(&head));
        // encode_table() always appends a 4-byte crc; drop it from the stamp.
        let body = table.len().saturating_sub(4);
        crc.update(table.get(..body).unwrap_or(&table));
        format!("{:08x}", crc.finish())
    }

    /// Writes the store through `storage`: header, table, then one
    /// `write_at` per section, then a sync. Returns total bytes written.
    pub fn write_to_storage(&self, storage: &mut dyn WalStorage) -> io::Result<u64> {
        let total = self.total_bytes();
        storage.set_len(0)?;
        storage.write_at(0, &self.header.encode())?;
        storage.write_at(HEADER_LEN as u64, &self.encode_table())?;
        for (desc, bytes) in &self.sections {
            storage.write_at(desc.offset, bytes)?;
        }
        storage.set_len(total)?;
        storage.sync()?;
        Ok(total)
    }

    /// Writes the store to `path` (truncating any previous contents) via
    /// [`DiskFile`]. Callers needing atomic replacement write to a
    /// temporary path and rename, as the engine's compaction does.
    pub fn write_path(&self, path: &Path) -> io::Result<u64> {
        let mut file = DiskFile::open(path)?;
        self.write_to_storage(&mut file)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]

    use super::*;
    use tkc_graph::{generators, VertexId};

    #[test]
    fn pack_rejects_mismatched_state_vectors() {
        let g = generators::complete(4);
        assert!(pack_graph(&g, &[0; 3], None).is_err());
        let sup = vec![2u32; g.edge_bound()];
        assert!(pack_graph(&g, &sup, Some(&[0u32; 1])).is_err());
        assert!(pack_graph(&g, &sup, None).is_ok());
    }

    #[test]
    fn parts_layout_is_contiguous_and_sized() {
        let mut g = generators::complete(6);
        g.remove_edge_between(VertexId(0), VertexId(1)).unwrap();
        let sup = vec![0u32; g.edge_bound()];
        let kap = vec![1u32; g.edge_bound()];
        let parts = pack_graph(&g, &sup, Some(&kap)).unwrap();
        let info = parts.info();
        assert_eq!(info.num_vertices, 6);
        assert_eq!(info.num_edges, 14);
        assert_eq!(info.edge_bound, 15);
        assert!(info.has_kappa);
        assert_eq!(info.sections.len(), 6);
        // Sections tile the file after header + table.
        let mut at = (HEADER_LEN + 6 * SECTION_ENTRY_LEN + 4) as u64;
        for (desc, bytes) in &parts.sections {
            assert_eq!(desc.offset, at);
            assert_eq!(desc.len, bytes.len() as u64);
            at += desc.len;
        }
        assert_eq!(at, parts.total_bytes());
        assert_eq!(info.file_bytes, parts.total_bytes());
    }

    #[test]
    fn writing_twice_is_deterministic() {
        let g = generators::holme_kim(80, 3, 0.5, 17);
        let sup = vec![3u32; g.edge_bound()];
        let parts = pack_graph(&g, &sup, None).unwrap();
        let dir = std::env::temp_dir().join("tkc_store_writer_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("a.tkcstor"), dir.join("b.tkcstor"));
        parts.write_path(&a).unwrap();
        parts.write_path(&b).unwrap();
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_eq!(ba, bb);
        assert_eq!(ba.len() as u64, parts.total_bytes());
        // Rewriting over a longer stale file truncates it.
        std::fs::write(&a, vec![0xFFu8; ba.len() + 500]).unwrap();
        parts.write_path(&a).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), bb);
    }
}
