//! CRC32 (IEEE 802.3, the zlib polynomial) over byte slices.
//!
//! Same checksum the WAL uses for its records; re-implemented here because
//! the store sits below the engine and must not depend on it. The check
//! value for `"123456789"` is the classic `0xCBF4_3926`.

use std::sync::OnceLock;

/// CRC32 of `data` (reflected, init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Incremental CRC32, for streaming whole sections through a small buffer
/// without holding them in memory.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &b in data {
            #[allow(clippy::indexing_slicing)]
            {
                // analyze: allow(panic-surface): u8-derived index into a 256-entry table is always in bounds
                self.state = table[usize::from((self.state as u8) ^ b)] ^ (self.state >> 8);
            }
        }
    }

    /// Finishes and returns the checksum (the accumulator stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u32..4096).map(|i| (i * 31 % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(37) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0xA5u8; 257];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                if let Some(b) = data.get_mut(byte) {
                    *b ^= 1 << bit;
                }
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                if let Some(b) = data.get_mut(byte) {
                    *b ^= 1 << bit;
                }
            }
        }
    }
}
