//! The `TKCSTOR` on-disk layout: header, section table, error type.
//!
//! Everything is little-endian and fixed-width so a reader can locate any
//! section with two small reads (no scan). The file is:
//!
//! ```text
//! ┌────────────────────────────┐ offset 0
//! │ header (48 bytes)          │  magic "TKCSTOR" + version u8,
//! │                            │  n/edge_bound/m u64, flags u32,
//! │                            │  section_count u32, reserved u32,
//! │                            │  crc32(header[0..44]) u32
//! ├────────────────────────────┤ offset 48
//! │ section table              │  section_count × 24-byte entries:
//! │                            │  tag [u8;4], offset u64, len u64,
//! │                            │  crc32(payload) u32
//! │ table crc  u32             │  crc32(all entry bytes)
//! ├────────────────────────────┤
//! │ OFFS payload               │  (n+1) × (nbr_off u64, eid_off u64)
//! │ NBRS payload               │  per-vertex delta-varint neighbors
//! │ EIDS payload               │  per-vertex varint edge ids
//! │ EDGE payload               │  edge_bound × (u u32, v u32);
//! │                            │  dead slot = (MAX, MAX)
//! │ SUPP payload               │  edge_bound × support u32
//! │ KAPP payload (optional)    │  edge_bound × κ u32
//! └────────────────────────────┘
//! ```
//!
//! `OFFS[i]` holds byte offsets *relative to the NBRS / EIDS payload
//! starts*; vertex `i`'s lists occupy `nbr[OFFS[i].0 .. OFFS[i+1].0]` and
//! `eid[OFFS[i].1 .. OFFS[i+1].1]`. Every payload (and the header and
//! table themselves) is crc-checksummed; a reader validates the header
//! and table at open and each full-section load against its crc, and
//! [`crate::reader::StoreReader::verify_checksums`] streams all sections
//! for an end-to-end integrity pass.

use std::fmt;
use std::io;

use crate::crc::crc32;

/// The 7-byte file magic, followed by the format version byte.
pub const STORE_MAGIC: &[u8; 7] = b"TKCSTOR";

/// Current format version.
pub const STORE_VERSION: u8 = 1;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 48;

/// Byte length of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 24;

/// Header flag bit: the store carries a κ section.
pub const FLAG_HAS_KAPPA: u32 = 1;

/// Dead-slot sentinel in the EDGE section.
pub const DEAD_SLOT: u32 = u32::MAX;

/// The known section tags, in their canonical file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionTag {
    /// Per-vertex byte offsets into NBRS / EIDS.
    Offsets,
    /// Delta-varint neighbor lists.
    Neighbors,
    /// Varint edge-id lists, parallel to NBRS.
    EdgeIds,
    /// Edge-slot endpoint table (dead slots = sentinel pairs).
    Edges,
    /// Per-edge-slot triangle supports.
    Supports,
    /// Per-edge-slot κ values (optional).
    Kappa,
}

impl SectionTag {
    /// All tags in canonical file order.
    pub const ALL: [SectionTag; 6] = [
        SectionTag::Offsets,
        SectionTag::Neighbors,
        SectionTag::EdgeIds,
        SectionTag::Edges,
        SectionTag::Supports,
        SectionTag::Kappa,
    ];

    /// The 4-byte on-disk tag.
    pub fn bytes(self) -> [u8; 4] {
        match self {
            SectionTag::Offsets => *b"OFFS",
            SectionTag::Neighbors => *b"NBRS",
            SectionTag::EdgeIds => *b"EIDS",
            SectionTag::Edges => *b"EDGE",
            SectionTag::Supports => *b"SUPP",
            SectionTag::Kappa => *b"KAPP",
        }
    }

    /// Parses a 4-byte on-disk tag.
    pub fn parse(b: [u8; 4]) -> Option<SectionTag> {
        SectionTag::ALL.into_iter().find(|t| t.bytes() == b)
    }

    /// Human-readable tag name.
    pub fn name(self) -> &'static str {
        match self {
            SectionTag::Offsets => "OFFS",
            SectionTag::Neighbors => "NBRS",
            SectionTag::EdgeIds => "EIDS",
            SectionTag::Edges => "EDGE",
            SectionTag::Supports => "SUPP",
            SectionTag::Kappa => "KAPP",
        }
    }
}

impl fmt::Display for SectionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured failure of any store operation. Corrupt bytes become one of
/// these — never a panic — so callers (engine startup, the CLI, CI
/// corruption tests) can distinguish "file missing" from "file lying".
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `TKCSTOR` magic.
    BadMagic,
    /// Known magic, unknown version byte.
    UnsupportedVersion(u8),
    /// A crc mismatch in the named part (`header`, `table`, or a section
    /// tag).
    Checksum {
        /// Which checksummed part failed.
        part: &'static str,
    },
    /// Structurally invalid contents (truncated section, bad varint,
    /// inconsistent offsets…) with a description of what broke.
    Corrupt(String),
    /// The caller asked for a section this store does not carry.
    MissingSection(SectionTag),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a TKCSTOR file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported TKCSTOR version {v} (expected {STORE_VERSION})"
                )
            }
            StoreError::Checksum { part } => write!(f, "checksum mismatch in store {part}"),
            StoreError::Corrupt(why) => write!(f, "corrupt store: {why}"),
            StoreError::MissingSection(tag) => write!(f, "store has no {tag} section"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Parsed fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHeader {
    /// Vertex count.
    pub num_vertices: u64,
    /// Exclusive upper bound on raw edge ids (dead slots included).
    pub edge_bound: u64,
    /// Live edge count.
    pub num_edges: u64,
    /// Flag bits ([`FLAG_HAS_KAPPA`]).
    pub flags: u32,
    /// Number of section-table entries that follow.
    pub section_count: u32,
}

impl StoreHeader {
    /// True if the store carries a κ section.
    pub fn has_kappa(&self) -> bool {
        self.flags & FLAG_HAS_KAPPA != 0
    }

    /// Encodes the 48-byte header (crc included).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(STORE_MAGIC);
        buf.push(STORE_VERSION);
        buf.extend_from_slice(&self.num_vertices.to_le_bytes());
        buf.extend_from_slice(&self.edge_bound.to_le_bytes());
        buf.extend_from_slice(&self.num_edges.to_le_bytes());
        buf.extend_from_slice(&self.flags.to_le_bytes());
        buf.extend_from_slice(&self.section_count.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        out.copy_from_slice(&buf);
        out
    }

    /// Decodes and validates a 48-byte header.
    pub fn decode(bytes: &[u8]) -> Result<StoreHeader, StoreError> {
        let bytes: &[u8; HEADER_LEN] = bytes
            .get(..HEADER_LEN)
            .and_then(|b| b.try_into().ok())
            .ok_or(StoreError::Corrupt("header shorter than 48 bytes".into()))?;
        let (body, crc_bytes) = bytes.split_at(HEADER_LEN - 4);
        let stored = u32::from_le_bytes(
            crc_bytes
                .try_into()
                .map_err(|_| StoreError::Corrupt("header crc missing".into()))?,
        );
        if crc32(body) != stored {
            return Err(StoreError::Checksum { part: "header" });
        }
        if body.get(..7) != Some(STORE_MAGIC.as_slice()) {
            return Err(StoreError::BadMagic);
        }
        let version = *body.get(7).ok_or(StoreError::BadMagic)?;
        if version != STORE_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let u64_at = |at: usize| -> Result<u64, StoreError> {
            body.get(at..at + 8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| StoreError::Corrupt("header field truncated".into()))
        };
        let u32_at = |at: usize| -> Result<u32, StoreError> {
            body.get(at..at + 4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| StoreError::Corrupt("header field truncated".into()))
        };
        Ok(StoreHeader {
            num_vertices: u64_at(8)?,
            edge_bound: u64_at(16)?,
            num_edges: u64_at(24)?,
            flags: u32_at(32)?,
            section_count: u32_at(36)?,
        })
    }
}

/// One section-table entry: where a payload lives and what it must hash
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionDesc {
    /// Which section.
    pub tag: SectionTag,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload byte length.
    pub len: u64,
    /// crc32 of the payload.
    pub crc: u32,
}

impl SectionDesc {
    /// Encodes the 24-byte table entry.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.tag.bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
    }

    /// Decodes one 24-byte table entry.
    pub fn decode(bytes: &[u8]) -> Result<SectionDesc, StoreError> {
        let entry = bytes
            .get(..SECTION_ENTRY_LEN)
            .ok_or_else(|| StoreError::Corrupt("section table truncated".into()))?;
        let (tag_bytes, rest) = entry.split_at(4);
        let tag_arr: [u8; 4] = tag_bytes
            .try_into()
            .map_err(|_| StoreError::Corrupt("section tag truncated".into()))?;
        let tag = SectionTag::parse(tag_arr)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown section tag {:?}", tag_arr)))?;
        let (off_bytes, rest) = rest.split_at(8);
        let (len_bytes, crc_bytes) = rest.split_at(8);
        let field = |b: &[u8]| -> Result<u64, StoreError> {
            b.try_into()
                .map(u64::from_le_bytes)
                .map_err(|_| StoreError::Corrupt("section entry truncated".into()))
        };
        Ok(SectionDesc {
            tag,
            offset: field(off_bytes)?,
            len: field(len_bytes)?,
            crc: crc_bytes
                .try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| StoreError::Corrupt("section crc truncated".into()))?,
        })
    }
}

/// Summary of a packed store, as reported by `tkc store info` and the
/// bench harness.
#[derive(Debug, Clone)]
pub struct StoreInfo {
    /// Vertex count.
    pub num_vertices: usize,
    /// Live edge count.
    pub num_edges: usize,
    /// Raw edge-id bound (dead slots included).
    pub edge_bound: usize,
    /// Whether a κ section is present.
    pub has_kappa: bool,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// `(tag, payload bytes)` per section, in file order.
    pub sections: Vec<(SectionTag, u64)>,
}

impl StoreInfo {
    /// Size of the uncompressed in-memory CSR the store replaces
    /// (offsets + oriented nbr/eid arrays + rank table + work prefix
    /// sums, as laid out by `tkc_graph::CsrGraph`). The denominator for
    /// the compression ratio and the yardstick out-of-core budgets must
    /// beat.
    pub fn raw_csr_bytes(&self) -> u64 {
        let n = self.num_vertices as u64;
        let m = self.num_edges as u64;
        4 * (n + 1) + 4 * m + 4 * m + 4 * n + 8 * (n + 1)
    }

    /// Compressed-adjacency bytes (NBRS + EIDS + OFFS sections).
    pub fn adjacency_bytes(&self) -> u64 {
        self.sections
            .iter()
            .filter(|(t, _)| {
                matches!(
                    t,
                    SectionTag::Offsets | SectionTag::Neighbors | SectionTag::EdgeIds
                )
            })
            .map(|&(_, len)| len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]

    use super::*;

    fn header() -> StoreHeader {
        StoreHeader {
            num_vertices: 10,
            edge_bound: 25,
            num_edges: 20,
            flags: FLAG_HAS_KAPPA,
            section_count: 6,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(StoreHeader::decode(&bytes).unwrap(), h);
        assert!(StoreHeader::decode(&bytes).unwrap().has_kappa());
    }

    #[test]
    fn header_rejects_corruption() {
        let h = header();
        let clean = h.encode();
        // Any single-byte corruption is caught: magic, version, fields,
        // or the crc itself.
        for i in 0..clean.len() {
            let mut bad = clean;
            if let Some(b) = bad.get_mut(i) {
                *b ^= 0x10;
            }
            assert!(StoreHeader::decode(&bad).is_err(), "byte {i} undetected");
        }
        assert!(matches!(
            StoreHeader::decode(&clean[..20]),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn version_and_magic_take_precedence_after_crc() {
        let mut h = header().encode();
        // Recompute crc over a wrong version so decode reaches the
        // version check.
        h[7] = 9;
        let crc = crc32(&h[..HEADER_LEN - 4]);
        h[HEADER_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            StoreHeader::decode(&h),
            Err(StoreError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn section_entry_roundtrip() {
        let desc = SectionDesc {
            tag: SectionTag::Neighbors,
            offset: 0x1234_5678_9ABC,
            len: 99,
            crc: 0xDEAD_BEEF,
        };
        let mut buf = Vec::new();
        desc.encode(&mut buf);
        assert_eq!(buf.len(), SECTION_ENTRY_LEN);
        assert_eq!(SectionDesc::decode(&buf).unwrap(), desc);
        buf[0] = b'X';
        assert!(SectionDesc::decode(&buf).is_err());
    }

    #[test]
    fn tags_roundtrip() {
        for tag in SectionTag::ALL {
            assert_eq!(SectionTag::parse(tag.bytes()), Some(tag));
            assert_eq!(tag.name().len(), 4);
        }
        assert_eq!(SectionTag::parse(*b"ZZZZ"), None);
    }
}
