//! An explicit LRU page cache over positioned file reads.
//!
//! The workspace forbids `unsafe`, so the store cannot mmap its file and
//! lean on the kernel's page cache through a borrowed `&[u8]`. This is
//! the safe equivalent, made explicit: fixed-size pages faulted in with
//! `seek` + `read_exact`, an LRU among at most `capacity` resident pages,
//! and hit/miss/eviction counters that land both in a local
//! [`CacheStats`] (so the out-of-core peel can charge cache residency
//! against its memory budget) and in the global tkc-obs registry
//! (`tkc_store_page_hits_total` / `tkc_store_page_misses_total` /
//! `tkc_store_page_evictions_total`).
//!
//! Eviction scans for the least-recently-used slot linearly; capacities
//! are tens-to-hundreds of pages, where a scan is cheaper than
//! maintaining an intrusive list.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

use tkc_obs::{Counter, MetricsRegistry};

/// Page size and resident-page capacity for a [`crate::StoreReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCacheConfig {
    /// Bytes per page. Need not divide the file size; the tail page is
    /// short.
    pub page_size: usize,
    /// Maximum resident pages.
    pub capacity: usize,
}

impl Default for PageCacheConfig {
    /// 64 KiB pages × 64 pages = 4 MiB resident — small enough to charge
    /// against tight out-of-core budgets, big enough that sequential
    /// scans hit.
    fn default() -> Self {
        PageCacheConfig {
            page_size: 64 * 1024,
            capacity: 64,
        }
    }
}

impl PageCacheConfig {
    /// A config sized to hold at most `bytes` of resident pages (at least
    /// one page).
    pub fn with_budget(page_size: usize, bytes: u64) -> PageCacheConfig {
        let page_size = page_size.max(512);
        // analyze: allow(panic-surface): divisor clamped to >=512 on the line above
        let capacity = usize::try_from(bytes / page_size as u64)
            .unwrap_or(usize::MAX)
            .max(1);
        PageCacheConfig {
            page_size,
            capacity,
        }
    }

    /// Upper bound on resident cache bytes under this config.
    pub fn budget_bytes(&self) -> u64 {
        self.page_size as u64 * self.capacity as u64
    }
}

/// Cache traffic counters (monotonic over the reader's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Range reads served from a resident page.
    pub hits: u64,
    /// Page faults (disk reads).
    pub misses: u64,
    /// Pages evicted to stay within capacity.
    pub evictions: u64,
}

#[derive(Debug)]
struct Slot {
    page_no: u64,
    data: Vec<u8>,
    last_used: u64,
}

/// The cache proper. Owned by a reader; not thread-safe by design (wrap
/// the reader, not the cache).
#[derive(Debug)]
pub(crate) struct PageCache {
    config: PageCacheConfig,
    file_len: u64,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    tick: u64,
    stats: CacheStats,
    hits_total: Counter,
    misses_total: Counter,
    evictions_total: Counter,
}

impl PageCache {
    pub(crate) fn new(config: PageCacheConfig, file_len: u64) -> PageCache {
        let reg = MetricsRegistry::global();
        PageCache {
            config,
            file_len,
            map: HashMap::new(),
            slots: Vec::new(),
            tick: 0,
            stats: CacheStats::default(),
            hits_total: reg.counter(
                "tkc_store_page_hits_total",
                "Store page-cache reads served from a resident page",
            ),
            misses_total: reg.counter(
                "tkc_store_page_misses_total",
                "Store page-cache faults (pages read from disk)",
            ),
            evictions_total: reg.counter(
                "tkc_store_page_evictions_total",
                "Store page-cache evictions under capacity pressure",
            ),
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently held by resident pages.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.data.len() as u64).sum()
    }

    /// Appends `file[offset .. offset + len]` to `out`, faulting pages in
    /// as needed.
    pub(crate) fn read_range(
        &mut self,
        file: &mut File,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> io::Result<()> {
        let end = offset
            .checked_add(len as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("store read past end: {offset}+{len} > {}", self.file_len),
                )
            })?;
        out.reserve(len);
        let page_size = (self.config.page_size as u64).max(1);
        let mut at = offset;
        while at < end {
            // analyze: allow(panic-surface): divisor clamped to >=1 above the loop
            let page_no = at / page_size;
            let in_page = (at - page_no * page_size) as usize;
            let take = ((end - at) as usize).min(self.config.page_size - in_page);
            let slot = self.fault_in(file, page_no)?;
            let page = self
                .slots
                .get(slot)
                .ok_or_else(|| io::Error::other("page slot vanished"))?;
            let chunk = page.data.get(in_page..in_page + take).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "store page shorter than expected",
                )
            })?;
            out.extend_from_slice(chunk);
            at += take as u64;
        }
        Ok(())
    }

    /// Ensures `page_no` is resident and returns its slot index.
    fn fault_in(&mut self, file: &mut File, page_no: u64) -> io::Result<usize> {
        self.tick += 1;
        if let Some(&slot) = self.map.get(&page_no) {
            self.stats.hits += 1;
            self.hits_total.inc();
            if let Some(s) = self.slots.get_mut(slot) {
                s.last_used = self.tick;
            }
            return Ok(slot);
        }
        self.stats.misses += 1;
        self.misses_total.inc();
        let page_size = self.config.page_size as u64;
        let start = page_no * page_size;
        let len = (self.file_len.saturating_sub(start)).min(page_size) as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "store page past end of file",
            ));
        }
        let mut data = vec![0u8; len];
        file.seek(SeekFrom::Start(start))?;
        file.read_exact(&mut data)?;
        let slot = if self.slots.len() < self.config.capacity {
            self.slots.push(Slot {
                page_no,
                data,
                last_used: self.tick,
            });
            self.slots.len() - 1
        } else {
            // Evict the least-recently-used resident page.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| io::Error::other("page cache has zero capacity"))?;
            self.stats.evictions += 1;
            self.evictions_total.inc();
            if let Some(old) = self.slots.get(victim) {
                self.map.remove(&old.page_no);
            }
            if let Some(s) = self.slots.get_mut(victim) {
                *s = Slot {
                    page_no,
                    data,
                    last_used: self.tick,
                };
            }
            victim
        };
        self.map.insert(page_no, slot);
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]

    use super::*;

    fn temp_file(name: &str, bytes: &[u8]) -> (std::path::PathBuf, File) {
        let dir = std::env::temp_dir().join("tkc_store_cache_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        (path.clone(), File::open(&path).unwrap())
    }

    #[test]
    fn reads_cross_page_boundaries_and_count_traffic() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        let (_p, mut f) = temp_file("cross.bin", &data);
        let mut cache = PageCache::new(
            PageCacheConfig {
                page_size: 64,
                capacity: 4,
            },
            data.len() as u64,
        );
        let mut out = Vec::new();
        cache.read_range(&mut f, 60, 10, &mut out).unwrap();
        assert_eq!(out, &data[60..70]);
        // Two pages faulted, zero hits so far.
        assert_eq!(cache.stats().misses, 2);
        out.clear();
        cache.read_range(&mut f, 64, 4, &mut out).unwrap();
        assert_eq!(out, &data[64..68]);
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.resident_bytes() <= 4 * 64);
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let data = vec![7u8; 64 * 8];
        let (_p, mut f) = temp_file("lru.bin", &data);
        let mut cache = PageCache::new(
            PageCacheConfig {
                page_size: 64,
                capacity: 2,
            },
            data.len() as u64,
        );
        let mut out = Vec::new();
        for page in [0u64, 1, 0, 2] {
            out.clear();
            cache.read_range(&mut f, page * 64, 1, &mut out).unwrap();
        }
        // Page 1 (least recently used) was evicted, pages 0 and 2 stay.
        assert_eq!(cache.stats().evictions, 1);
        out.clear();
        cache.read_range(&mut f, 0, 1, &mut out).unwrap();
        assert_eq!(cache.stats().hits, 2);
        out.clear();
        cache.read_range(&mut f, 64, 1, &mut out).unwrap();
        assert_eq!(cache.stats().misses, 4, "page 1 must re-fault");
    }

    #[test]
    fn rejects_reads_past_eof() {
        let data = vec![1u8; 100];
        let (_p, mut f) = temp_file("eof.bin", &data);
        let mut cache = PageCache::new(PageCacheConfig::default(), 100);
        let mut out = Vec::new();
        assert!(cache.read_range(&mut f, 90, 20, &mut out).is_err());
        assert!(cache.read_range(&mut f, u64::MAX, 2, &mut out).is_err());
        cache.read_range(&mut f, 90, 10, &mut out).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn budget_config_sizes_capacity() {
        let c = PageCacheConfig::with_budget(4096, 64 * 1024);
        assert_eq!(c.capacity, 16);
        assert_eq!(c.budget_bytes(), 64 * 1024);
        // Always at least one page, even under an absurd budget.
        assert_eq!(PageCacheConfig::with_budget(4096, 0).capacity, 1);
    }
}
