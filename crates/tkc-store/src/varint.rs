//! LEB128 varints and the delta encoding for ascending neighbor lists.
//!
//! Adjacency dominates a packed store, and neighbor lists are sorted, so
//! the classic trick applies: store the first neighbor absolute and every
//! later one as the (strictly positive) gap to its predecessor. On the
//! block-structured graphs the bench uses, gaps are small and most
//! entries fit in one byte — that is the entire compression story, no
//! entropy coder needed. Decoding is a tight add-as-you-go loop.
//!
//! Values are `u64` on the wire (10 bytes max); the store only ever
//! writes `u32`-ranged values but the codec does not care.

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
#[inline]
pub fn encode_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one varint from `buf` starting at `pos`. Returns the value and
/// the position just past it, or `None` on truncation / >10-byte runs.
#[inline]
pub fn decode_u64(buf: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut at = pos;
    loop {
        let &byte = buf.get(at)?;
        at += 1;
        if shift >= 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some((v, at));
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Delta-encodes a strictly ascending `u32` list: the first element
/// absolute, each later one as the gap to its predecessor.
///
/// # Panics
/// Debug-asserts strict ascent; in release a non-ascending input encodes
/// a wrapped gap and will not round-trip (the store validates its inputs
/// before encoding).
pub fn encode_delta_list(out: &mut Vec<u8>, list: &[u32]) {
    let mut prev = 0u32;
    for (i, &x) in list.iter().enumerate() {
        if i == 0 {
            encode_u64(out, u64::from(x));
        } else {
            debug_assert!(x > prev, "delta list must be strictly ascending");
            encode_u64(out, u64::from(x.wrapping_sub(prev)));
        }
        prev = x;
    }
}

/// Decodes a delta-encoded list occupying exactly `buf[pos..end]`,
/// calling `f` per value. Returns `None` on truncation, overflow past
/// `u32`, a zero gap (lists are strictly ascending), or a decode that
/// does not land exactly on `end`.
pub fn decode_delta_list(buf: &[u8], pos: usize, end: usize, mut f: impl FnMut(u32)) -> Option<()> {
    let mut at = pos;
    let mut prev: Option<u32> = None;
    while at < end {
        let (raw, next) = decode_u64(buf, at)?;
        if next > end {
            return None;
        }
        at = next;
        let value = match prev {
            None => u32::try_from(raw).ok()?,
            Some(p) => {
                if raw == 0 {
                    return None;
                }
                let v = u64::from(p).checked_add(raw)?;
                u32::try_from(v).ok()?
            }
        };
        prev = Some(value);
        f(value);
    }
    (at == end).then_some(())
}

/// Decodes a plain (non-delta) varint list occupying exactly
/// `buf[pos..end]`, calling `f` per `u32` value.
pub fn decode_u32_list(buf: &[u8], pos: usize, end: usize, mut f: impl FnMut(u32)) -> Option<()> {
    let mut at = pos;
    while at < end {
        let (raw, next) = decode_u64(buf, at)?;
        if next > end {
            return None;
        }
        at = next;
        f(u32::try_from(raw).ok()?);
    }
    (at == end).then_some(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn roundtrip_one(v: u64) {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        let (back, used) = decode_u64(&buf, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn boundary_values_roundtrip() {
        for v in [
            0,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            roundtrip_one(v);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_fail() {
        assert!(decode_u64(&[], 0).is_none());
        assert!(decode_u64(&[0x80], 0).is_none());
        assert!(decode_u64(&[0x80; 11], 0).is_none());
        // 10-byte encoding whose last byte pushes past 64 bits.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02);
        assert!(decode_u64(&overflow, 0).is_none());
    }

    #[test]
    fn delta_list_roundtrip_and_rejects() {
        let list = [3u32, 4, 10, 1000, 1001, u32::MAX];
        let mut buf = Vec::new();
        encode_delta_list(&mut buf, &list);
        let mut back = Vec::new();
        decode_delta_list(&buf, 0, buf.len(), |v| back.push(v)).unwrap();
        assert_eq!(back, list);
        // A zero gap is rejected.
        let mut zero_gap = Vec::new();
        encode_u64(&mut zero_gap, 5);
        encode_u64(&mut zero_gap, 0);
        assert!(decode_delta_list(&zero_gap, 0, zero_gap.len(), |_| {}).is_none());
        // A gap overflowing u32 is rejected.
        let mut over = Vec::new();
        encode_u64(&mut over, u64::from(u32::MAX));
        encode_u64(&mut over, 1);
        assert!(decode_delta_list(&over, 0, over.len(), |_| {}).is_none());
    }

    #[test]
    fn list_decoders_demand_exact_extent() {
        let mut buf = Vec::new();
        encode_delta_list(&mut buf, &[7, 300]); // gap 293 = 2-byte varint
        assert_eq!(buf.len(), 3);
        // Cutting the extent mid-varint fails rather than returning a
        // prefix.
        assert!(decode_delta_list(&buf, 0, buf.len() - 1, |_| {}).is_none());
        let mut plain = Vec::new();
        encode_u64(&mut plain, 300);
        assert!(decode_u32_list(&plain, 0, plain.len() - 1, |_| {}).is_none());
        let mut got = Vec::new();
        decode_u32_list(&plain, 0, plain.len(), |v| got.push(v)).unwrap();
        assert_eq!(got, [300]);
    }
}
