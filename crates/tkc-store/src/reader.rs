//! [`StoreReader`] — paged random access plus checksummed bulk loads.
//!
//! Opening a store reads and validates **only** the fixed header and the
//! section table (two small reads, both crc-checked) — that is what makes
//! engine cold-start O(header) instead of O(rebuild). After that there
//! are two access styles:
//!
//! * **Paged random access** — [`StoreReader::neighbors`],
//!   [`StoreReader::endpoints`], [`StoreReader::support`]: every byte
//!   comes through the LRU [`crate::cache::PageCache`], so a working set
//!   far smaller than the file serves repeated queries. Paged reads are
//!   *not* re-checksummed per access (a page is a fraction of a section);
//!   run [`StoreReader::verify_checksums`] first when reading bytes you
//!   do not trust — the out-of-core decompose and the engine reopen path
//!   both do.
//! * **Checksummed bulk loads** — [`StoreReader::read_supports`],
//!   [`StoreReader::read_kappa`], [`StoreReader::load_graph`]: one
//!   sequential pass over a whole section, verified against its table
//!   crc before a single value is returned.
//!
//! The reader implements [`AdjacencySource`] over full per-vertex
//! neighbor lists (raw vertex ids), the on-disk counterpart of
//! [`tkc_graph::CsrGraph`]'s in-memory rank lists. Interior mutability
//! (`RefCell`) keeps the surface `&self` like the in-memory snapshot;
//! the reader is deliberately not `Sync` — share the file, not the
//! reader.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tkc_graph::{AdjacencySource, EdgeId, Graph, VertexId};

use crate::cache::{CacheStats, PageCache, PageCacheConfig};
use crate::crc::Crc32;
use crate::format::{
    SectionDesc, SectionTag, StoreError, StoreHeader, StoreInfo, DEAD_SLOT, HEADER_LEN,
    SECTION_ENTRY_LEN,
};
use crate::varint::{decode_delta_list, decode_u32_list};

/// Sanity cap on the section count a header may claim (the format
/// defines 6; a corrupt count must not drive a giant allocation).
const MAX_SECTIONS: u32 = 16;

/// A read-only handle on a packed `TKCSTOR` file.
#[derive(Debug)]
pub struct StoreReader {
    path: PathBuf,
    file: RefCell<File>,
    file_len: u64,
    header: StoreHeader,
    sections: Vec<SectionDesc>,
    cache: RefCell<PageCache>,
}

impl StoreReader {
    /// Opens `path`, validating the header and section table (their crcs,
    /// tag set, and payload extents) — section payloads are not read yet.
    pub fn open(path: &Path, config: PageCacheConfig) -> Result<StoreReader, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut head = vec![0u8; HEADER_LEN];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StoreError::Corrupt("file shorter than the fixed header".into())
            } else {
                StoreError::Io(e)
            }
        })?;
        let header = StoreHeader::decode(&head)?;
        if header.section_count == 0 || header.section_count > MAX_SECTIONS {
            return Err(StoreError::Corrupt(format!(
                "implausible section count {}",
                header.section_count
            )));
        }
        let table_len = header.section_count as usize * SECTION_ENTRY_LEN + 4;
        let mut table = vec![0u8; table_len];
        file.read_exact(&mut table).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StoreError::Corrupt("file shorter than its section table".into())
            } else {
                StoreError::Io(e)
            }
        })?;
        let (entries, crc_bytes) = table.split_at(table_len - 4);
        let stored = crc_bytes
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| StoreError::Corrupt("section table crc missing".into()))?;
        if crate::crc::crc32(entries) != stored {
            return Err(StoreError::Checksum { part: "table" });
        }
        let mut sections = Vec::with_capacity(header.section_count as usize);
        for i in 0..header.section_count as usize {
            let entry = entries
                .get(i * SECTION_ENTRY_LEN..(i + 1) * SECTION_ENTRY_LEN)
                .ok_or_else(|| StoreError::Corrupt("section table truncated".into()))?;
            let desc = SectionDesc::decode(entry)?;
            let end = desc
                .offset
                .checked_add(desc.len)
                .ok_or_else(|| StoreError::Corrupt("section extent overflows".into()))?;
            if end > file_len {
                return Err(StoreError::Corrupt(format!(
                    "section {} extends past end of file ({end} > {file_len})",
                    desc.tag
                )));
            }
            if sections.iter().any(|s: &SectionDesc| s.tag == desc.tag) {
                return Err(StoreError::Corrupt(format!(
                    "duplicate section {}",
                    desc.tag
                )));
            }
            sections.push(desc);
        }
        let reader = StoreReader {
            path: path.to_path_buf(),
            file: RefCell::new(file),
            file_len,
            header,
            sections,
            cache: RefCell::new(PageCache::new(config, file_len)),
        };
        // Required sections must exist (κ only when the header claims it).
        for tag in [
            SectionTag::Offsets,
            SectionTag::Neighbors,
            SectionTag::EdgeIds,
            SectionTag::Edges,
            SectionTag::Supports,
        ] {
            reader.section(tag)?;
        }
        if reader.header.has_kappa() {
            reader.section(SectionTag::Kappa)?;
        }
        Ok(reader)
    }

    /// The file this reader is backed by.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.header.num_vertices as usize
    }

    /// Live edge count.
    pub fn num_edges(&self) -> usize {
        self.header.num_edges as usize
    }

    /// Exclusive upper bound on raw edge ids (dead slots included).
    pub fn edge_bound(&self) -> usize {
        self.header.edge_bound as usize
    }

    /// True if the store carries a κ section.
    pub fn has_kappa(&self) -> bool {
        self.header.has_kappa()
    }

    /// Store summary (sections, sizes) without touching payloads.
    pub fn info(&self) -> StoreInfo {
        StoreInfo {
            num_vertices: self.num_vertices(),
            num_edges: self.num_edges(),
            edge_bound: self.edge_bound(),
            has_kappa: self.has_kappa(),
            file_bytes: self.file_len,
            sections: self.sections.iter().map(|d| (d.tag, d.len)).collect(),
        }
    }

    /// Page-cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Bytes currently resident in the page cache.
    pub fn cache_resident_bytes(&self) -> u64 {
        self.cache.borrow().resident_bytes()
    }

    fn section(&self, tag: SectionTag) -> Result<SectionDesc, StoreError> {
        self.sections
            .iter()
            .find(|d| d.tag == tag)
            .copied()
            .ok_or(StoreError::MissingSection(tag))
    }

    /// Paged read of `len` bytes at `offset` within section `tag` into
    /// `out` (cleared first).
    fn read_in_section(
        &self,
        tag: SectionTag,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let desc = self.section(tag)?;
        let end = offset.checked_add(len as u64).filter(|&e| e <= desc.len);
        let Some(_) = end else {
            return Err(StoreError::Corrupt(format!(
                "read of {len}B at {offset} exceeds {} section ({}B)",
                tag, desc.len
            )));
        };
        out.clear();
        self.cache.borrow_mut().read_range(
            &mut self.file.borrow_mut(),
            desc.offset + offset,
            len,
            out,
        )?;
        Ok(())
    }

    /// The `(nbr_start, eid_start, nbr_end, eid_end)` byte extents of
    /// vertex `v`'s lists, from the OFFS section.
    fn list_extents(&self, v: u32) -> Result<(u64, u64, u64, u64), StoreError> {
        if (v as u64) >= self.header.num_vertices {
            return Err(StoreError::Corrupt(format!(
                "vertex {v} out of range (n = {})",
                self.header.num_vertices
            )));
        }
        let mut buf = Vec::with_capacity(32);
        self.read_in_section(SectionTag::Offsets, u64::from(v) * 16, 32, &mut buf)?;
        let mut vals = [0u64; 4];
        for (i, slot) in vals.iter_mut().enumerate() {
            *slot = buf
                .get(i * 8..(i + 1) * 8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| StoreError::Corrupt("OFFS entry truncated".into()))?;
        }
        let [nbr_lo, eid_lo, nbr_hi, eid_hi] = vals;
        if nbr_hi < nbr_lo || eid_hi < eid_lo {
            return Err(StoreError::Corrupt(format!(
                "OFFS entries for vertex {v} not monotone"
            )));
        }
        Ok((nbr_lo, eid_lo, nbr_hi, eid_hi))
    }

    /// Reads vertex `v`'s full neighbor list into `out` (cleared first)
    /// as `(neighbor id, edge id)` pairs ascending by neighbor —
    /// the paged counterpart of [`Graph::adjacency`].
    pub fn neighbors(&self, v: u32, out: &mut Vec<(u32, EdgeId)>) -> Result<(), StoreError> {
        out.clear();
        let (nbr_lo, eid_lo, nbr_hi, eid_hi) = self.list_extents(v)?;
        let mut nbr_bytes = Vec::new();
        self.read_in_section(
            SectionTag::Neighbors,
            nbr_lo,
            usize::try_from(nbr_hi - nbr_lo)
                .map_err(|_| StoreError::Corrupt("neighbor extent overflows".into()))?,
            &mut nbr_bytes,
        )?;
        decode_delta_list(&nbr_bytes, 0, nbr_bytes.len(), |w| out.push((w, EdgeId(0))))
            .ok_or_else(|| StoreError::Corrupt(format!("bad neighbor varints for vertex {v}")))?;
        let mut eid_bytes = Vec::new();
        self.read_in_section(
            SectionTag::EdgeIds,
            eid_lo,
            usize::try_from(eid_hi - eid_lo)
                .map_err(|_| StoreError::Corrupt("edge-id extent overflows".into()))?,
            &mut eid_bytes,
        )?;
        let mut at = 0usize;
        decode_u32_list(&eid_bytes, 0, eid_bytes.len(), |e| {
            if let Some(slot) = out.get_mut(at) {
                slot.1 = EdgeId(e);
            }
            at += 1;
        })
        .ok_or_else(|| StoreError::Corrupt(format!("bad edge-id varints for vertex {v}")))?;
        if at != out.len() {
            return Err(StoreError::Corrupt(format!(
                "vertex {v}: {} neighbors but {at} edge ids",
                out.len()
            )));
        }
        Ok(())
    }

    /// Endpoints of edge slot `e` (`None` for a dead slot), paged from
    /// the EDGE section.
    pub fn endpoints(&self, e: u32) -> Result<Option<(u32, u32)>, StoreError> {
        if u64::from(e) >= self.header.edge_bound {
            return Err(StoreError::Corrupt(format!(
                "edge id {e} out of range (bound {})",
                self.header.edge_bound
            )));
        }
        let mut buf = Vec::with_capacity(8);
        self.read_in_section(SectionTag::Edges, u64::from(e) * 8, 8, &mut buf)?;
        let word = |at: usize| {
            buf.get(at..at + 4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| StoreError::Corrupt("EDGE entry truncated".into()))
        };
        let (u, v) = (word(0)?, word(4)?);
        if u == DEAD_SLOT && v == DEAD_SLOT {
            return Ok(None);
        }
        if u >= v || u64::from(v) >= self.header.num_vertices {
            return Err(StoreError::Corrupt(format!(
                "edge {e} endpoints ({u}, {v}) invalid"
            )));
        }
        Ok(Some((u, v)))
    }

    /// Paged single-value read from a `u32`-array section.
    fn u32_at(&self, tag: SectionTag, index: u32) -> Result<u32, StoreError> {
        let mut buf = Vec::with_capacity(4);
        self.read_in_section(tag, u64::from(index) * 4, 4, &mut buf)?;
        buf.as_slice()
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| StoreError::Corrupt("u32 section entry truncated".into()))
    }

    /// Support of edge slot `e`, paged from the SUPP section.
    pub fn support(&self, e: u32) -> Result<u32, StoreError> {
        self.u32_at(SectionTag::Supports, e)
    }

    /// κ of edge slot `e`, paged from the KAPP section.
    pub fn kappa_at(&self, e: u32) -> Result<u32, StoreError> {
        self.u32_at(SectionTag::Kappa, e)
    }

    /// One sequential, crc-verified read of a whole section's payload.
    fn read_section_bytes(&self, tag: SectionTag) -> Result<Vec<u8>, StoreError> {
        let desc = self.section(tag)?;
        let len = usize::try_from(desc.len)
            .map_err(|_| StoreError::Corrupt("section too large for memory".into()))?;
        let mut bytes = vec![0u8; len];
        {
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(desc.offset))?;
            file.read_exact(&mut bytes)?;
        }
        if crate::crc::crc32(&bytes) != desc.crc {
            return Err(StoreError::Checksum { part: tag.name() });
        }
        Ok(bytes)
    }

    fn read_u32_section(&self, tag: SectionTag) -> Result<Vec<u32>, StoreError> {
        let bytes = self.read_section_bytes(tag)?;
        if bytes.len() % 4 != 0 || bytes.len() as u64 != self.header.edge_bound * 4 {
            return Err(StoreError::Corrupt(format!(
                "{tag} section is {}B, expected {}B",
                bytes.len(),
                self.header.edge_bound * 4
            )));
        }
        let mut out = Vec::with_capacity(bytes.len() / 4);
        for chunk in bytes.chunks_exact(4) {
            let word = chunk
                .try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| StoreError::Corrupt("u32 chunk truncated".into()))?;
            out.push(word);
        }
        Ok(out)
    }

    /// The full per-edge support vector (crc-verified sequential read).
    pub fn read_supports(&self) -> Result<Vec<u32>, StoreError> {
        self.read_u32_section(SectionTag::Supports)
    }

    /// The full per-edge κ vector (crc-verified sequential read).
    pub fn read_kappa(&self) -> Result<Vec<u32>, StoreError> {
        self.read_u32_section(SectionTag::Kappa)
    }

    /// The edge-slot endpoint table (crc-verified sequential read), in
    /// the shape [`Graph::from_parts`] takes.
    pub fn load_slots(&self) -> Result<Vec<Option<(VertexId, VertexId)>>, StoreError> {
        let bytes = self.read_section_bytes(SectionTag::Edges)?;
        if bytes.len() as u64 != self.header.edge_bound * 8 {
            return Err(StoreError::Corrupt(format!(
                "EDGE section is {}B, expected {}B",
                bytes.len(),
                self.header.edge_bound * 8
            )));
        }
        let mut slots = Vec::with_capacity(self.edge_bound());
        for chunk in bytes.chunks_exact(8) {
            let (ub, vb) = chunk.split_at(4);
            let u = ub
                .try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| StoreError::Corrupt("EDGE chunk truncated".into()))?;
            let v = vb
                .try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| StoreError::Corrupt("EDGE chunk truncated".into()))?;
            if u == DEAD_SLOT && v == DEAD_SLOT {
                slots.push(None);
            } else {
                slots.push(Some((VertexId(u), VertexId(v))));
            }
        }
        Ok(slots)
    }

    /// Decodes the full adjacency (crc-verified sequential reads of OFFS,
    /// NBRS and EIDS), in the shape [`Graph::from_parts`] takes.
    pub fn load_adjacency(&self) -> Result<Vec<Vec<(VertexId, EdgeId)>>, StoreError> {
        let n = self.num_vertices();
        let offs = self.read_section_bytes(SectionTag::Offsets)?;
        if offs.len() != (n + 1) * 16 {
            return Err(StoreError::Corrupt(format!(
                "OFFS section is {}B, expected {}B",
                offs.len(),
                (n + 1) * 16
            )));
        }
        let nbrs = self.read_section_bytes(SectionTag::Neighbors)?;
        let eids = self.read_section_bytes(SectionTag::EdgeIds)?;
        let extent = |i: usize, half: usize| -> Result<usize, StoreError> {
            offs.get(i * 16 + half * 8..i * 16 + half * 8 + 8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| StoreError::Corrupt("OFFS entry unreadable".into()))
        };
        let mut adj = Vec::with_capacity(n);
        for v in 0..n {
            let (nbr_lo, nbr_hi) = (extent(v, 0)?, extent(v + 1, 0)?);
            let (eid_lo, eid_hi) = (extent(v, 1)?, extent(v + 1, 1)?);
            if nbr_hi < nbr_lo || nbr_hi > nbrs.len() || eid_hi < eid_lo || eid_hi > eids.len() {
                return Err(StoreError::Corrupt(format!(
                    "OFFS extents for vertex {v} out of bounds"
                )));
            }
            let mut list: Vec<(VertexId, EdgeId)> = Vec::new();
            decode_delta_list(&nbrs, nbr_lo, nbr_hi, |w| {
                list.push((VertexId(w), EdgeId(0)))
            })
            .ok_or_else(|| StoreError::Corrupt(format!("bad neighbor varints for vertex {v}")))?;
            let mut at = 0usize;
            decode_u32_list(&eids, eid_lo, eid_hi, |e| {
                if let Some(slot) = list.get_mut(at) {
                    slot.1 = EdgeId(e);
                }
                at += 1;
            })
            .ok_or_else(|| StoreError::Corrupt(format!("bad edge-id varints for vertex {v}")))?;
            if at != list.len() {
                return Err(StoreError::Corrupt(format!(
                    "vertex {v}: {} neighbors but {at} edge ids",
                    list.len()
                )));
            }
            adj.push(list);
        }
        Ok(adj)
    }

    /// Reconstructs the full dynamic [`Graph`] — the engine's fast reopen
    /// path. Every section involved is crc-verified and the result passes
    /// the graph's own structural invariants before it is returned.
    pub fn load_graph(&self) -> Result<Graph, StoreError> {
        let adj = self.load_adjacency()?;
        let slots = self.load_slots()?;
        let g = Graph::from_parts(adj, slots).map_err(StoreError::Corrupt)?;
        if g.num_edges() != self.num_edges() {
            return Err(StoreError::Corrupt(format!(
                "store header claims {} live edges, sections hold {}",
                self.num_edges(),
                g.num_edges()
            )));
        }
        Ok(g)
    }

    /// Streams a section's payload sequentially through `f` in bounded
    /// chunks, without whole-section allocation. **Not** crc-verified —
    /// run [`StoreReader::verify_checksums`] first (the out-of-core
    /// peel does exactly that before its initialization scan).
    pub fn stream_section(
        &self,
        tag: SectionTag,
        mut f: impl FnMut(&[u8]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let desc = self.section(tag)?;
        let mut buf = vec![0u8; 1 << 16];
        let mut remaining = desc.len;
        {
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(desc.offset))?;
        }
        while remaining > 0 {
            let take = (buf.len() as u64).min(remaining) as usize;
            let chunk = buf
                .get_mut(..take)
                .ok_or_else(|| StoreError::Corrupt("stream buffer sizing".into()))?;
            self.file.borrow_mut().read_exact(chunk)?;
            f(chunk)?;
            remaining -= take as u64;
        }
        Ok(())
    }

    /// Streams every section through its crc (bounded buffer, no
    /// whole-section allocation). `Ok(())` means every payload byte on
    /// disk matches the table the header vouches for.
    pub fn verify_checksums(&self) -> Result<(), StoreError> {
        let mut buf = vec![0u8; 1 << 16];
        for desc in &self.sections {
            let mut crc = Crc32::new();
            let mut remaining = desc.len;
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(desc.offset))?;
            while remaining > 0 {
                let take = (buf.len() as u64).min(remaining) as usize;
                let chunk = buf
                    .get_mut(..take)
                    .ok_or_else(|| StoreError::Corrupt("verify buffer sizing".into()))?;
                file.read_exact(chunk)?;
                crc.update(chunk);
                remaining -= take as u64;
            }
            if crc.finish() != desc.crc {
                return Err(StoreError::Checksum {
                    part: desc.tag.name(),
                });
            }
        }
        Ok(())
    }
}

/// The identity stamp of the store at `path`: a crc over its (validated)
/// header fields and section-table entries — excluding the embedded
/// header/table checksums, whose self-validating structure would reduce
/// the crc to a content-independent constant (see
/// [`crate::StoreParts::stamp`], which this matches byte-for-byte).
/// Cheap — two small reads, no payload access; payload *integrity* is
/// the per-section crcs' job, checked on access.
pub fn file_stamp(path: &Path) -> Result<String, StoreError> {
    let mut file = File::open(path)?;
    let mut head = vec![0u8; HEADER_LEN];
    file.read_exact(&mut head).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt("file shorter than the fixed header".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    let header = StoreHeader::decode(&head)?;
    if header.section_count == 0 || header.section_count > MAX_SECTIONS {
        return Err(StoreError::Corrupt(format!(
            "implausible section count {}",
            header.section_count
        )));
    }
    let mut table = vec![0u8; header.section_count as usize * SECTION_ENTRY_LEN + 4];
    file.read_exact(&mut table).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt("file shorter than its section table".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    let mut crc = Crc32::new();
    crc.update(
        head.get(..HEADER_LEN - 4)
            .ok_or_else(|| StoreError::Corrupt("header shorter than its crc".into()))?,
    );
    crc.update(
        table
            .get(..table.len() - 4)
            .ok_or_else(|| StoreError::Corrupt("section table shorter than its crc".into()))?,
    );
    Ok(format!("{:08x}", crc.finish()))
}

impl AdjacencySource for StoreReader {
    fn num_lists(&self) -> usize {
        self.num_vertices()
    }

    fn num_edges(&self) -> usize {
        StoreReader::num_edges(self)
    }

    fn edge_bound(&self) -> usize {
        StoreReader::edge_bound(self)
    }

    fn for_each_entry(&self, list: u32, f: &mut dyn FnMut(u32, EdgeId)) -> io::Result<()> {
        let mut out = Vec::new();
        self.neighbors(list, &mut out)?;
        for (w, e) in out {
            f(w, e);
        }
        Ok(())
    }

    fn read_list(&self, list: u32, out: &mut Vec<(u32, EdgeId)>) -> io::Result<()> {
        self.neighbors(list, out)?;
        Ok(())
    }
}
