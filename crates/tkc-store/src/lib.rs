//! # tkc-store — the out-of-core compressed graph store
//!
//! Everything above this crate rebuilds the full graph and its CSR in
//! memory before doing anything, so the largest graph the suite can
//! decompose or serve is bounded by RAM and engine startup is
//! O(rebuild). This crate breaks that wall with a frozen on-disk form of
//! a graph snapshot (*Truss Decomposition in Massive Networks*, Wang &
//! Cheng, is the playbook — keep the graph on disk, page in what the
//! current peel stratum needs):
//!
//! * [`format`] — the versioned `TKCSTOR` file layout: a fixed
//!   little-endian header, a crc-checksummed section table, and
//!   crc-checksummed payload sections for per-vertex adjacency offsets,
//!   delta-varint compressed neighbor lists, varint edge ids, the
//!   edge-slot endpoint table, per-edge supports, and (optionally) κ.
//! * [`varint`] — the LEB128 codec and the delta encoding applied to
//!   ascending neighbor lists (a neighbor id costs ~1–2 bytes instead
//!   of 4 on realistic graphs).
//! * [`writer`] — packs a [`tkc_graph::Graph`] (plus supports / κ) into
//!   store bytes. Every byte reaches disk through the
//!   [`tkc_faults::WalStorage`] trait, one positioned write per section,
//!   so the fault-injection harness can corrupt any individual section
//!   deterministically.
//! * [`cache`] — an explicit LRU page cache over positioned file reads.
//!   The workspace carries `forbid(unsafe_code)`, so there is no mmap
//!   anywhere: paging is plain `seek` + `read_exact` into owned buffers,
//!   with configurable page size / capacity and hit/miss/eviction
//!   counters exported through tkc-obs.
//! * [`reader`] — [`StoreReader`], the paged random-access surface: the
//!   same `(neighbor, edge id)` iteration shape as the in-memory
//!   [`tkc_graph::CsrGraph`] (via [`tkc_graph::AdjacencySource`]), plus
//!   per-edge endpoint/support/κ lookups and checksummed full-section
//!   loads for the engine's fast reopen path.
//!
//! The out-of-core decomposition itself lives in `tkc-core::ooc`; this
//! crate stops at the storage layer on purpose so the engine, the CLI,
//! and the bench harness can all share it without cycles.

// The reader path is on the analyze.toml panic-surface strict list: no
// unwrap/expect/indexing outside tests — corrupt bytes must become
// structured `StoreError`s, never panics.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod crc;
pub mod format;
pub mod reader;
pub mod scratch;
pub mod varint;
pub mod writer;

pub use cache::{CacheStats, PageCacheConfig};
pub use format::{SectionTag, StoreError, StoreInfo, STORE_MAGIC, STORE_VERSION};
pub use reader::{file_stamp, StoreReader};
pub use scratch::ScratchFile;
pub use writer::{pack_graph, StoreParts};
