//! [`ScratchFile`] — a budgeted, write-back-cached `u32` array on disk.
//!
//! The out-of-core peel keeps one dense per-edge word (effective support,
//! later κ) that it must both read and decrement at random indices while
//! holding far less than the array in memory. This is that array: a plain
//! little-endian `u32` file behind a small LRU of fixed-size pages with
//! dirty tracking. A decrement is a read-modify-write against a resident
//! page; evicting a dirty page writes it back — that write-back is the
//! "spill" of cross-stratum decrements to disk, counted by
//! `tkc_store_scratch_spill_bytes_total`. The effsup file itself stays
//! authoritative at every flush point, so the algorithm never has to
//! reconcile divergent overlay runs.
//!
//! Not thread-safe, not crash-safe, not checksummed — this is a scratch
//! area that lives and dies with one decomposition run, not a durability
//! surface like the `TKCSTOR` store.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tkc_obs::{Counter, MetricsRegistry};

use crate::cache::CacheStats;

/// A disk-backed `u32` array with a write-back LRU page cache.
#[derive(Debug)]
pub struct ScratchFile {
    file: File,
    path: PathBuf,
    len: u64,
    page_words: usize,
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    tick: u64,
    stats: CacheStats,
    spilled_bytes: u64,
    spill_total: Counter,
}

#[derive(Debug)]
struct Slot {
    page_no: u64,
    words: Vec<u32>,
    last_used: u64,
    dirty: bool,
}

impl ScratchFile {
    /// Creates (truncating) a scratch array of `len` words at `path`,
    /// initially all zero, cached with `capacity` pages of `page_words`
    /// words each.
    pub fn create(
        path: &Path,
        len: u64,
        page_words: usize,
        capacity: usize,
    ) -> io::Result<ScratchFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len * 4)?;
        Ok(ScratchFile {
            file,
            path: path.to_path_buf(),
            len,
            page_words: page_words.max(16),
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            tick: 0,
            stats: CacheStats::default(),
            spilled_bytes: 0,
            spill_total: MetricsRegistry::global().counter(
                "tkc_store_scratch_spill_bytes_total",
                "Dirty scratch pages written back to disk by the out-of-core peel",
            ),
        })
    }

    /// Opens an existing file as a scratch array of `len` words (the
    /// file must be exactly `4 * len` bytes — the out-of-core peel
    /// writes its initialization pass sequentially with plain buffered
    /// I/O, then reopens the result through the cache).
    pub fn open(
        path: &Path,
        len: u64,
        page_words: usize,
        capacity: usize,
    ) -> io::Result<ScratchFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let actual = file.metadata()?.len();
        if actual != len * 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("scratch file is {actual}B, expected {}B", len * 4),
            ));
        }
        Ok(ScratchFile {
            file,
            path: path.to_path_buf(),
            len,
            page_words: page_words.max(16),
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            tick: 0,
            stats: CacheStats::default(),
            spilled_bytes: 0,
            spill_total: MetricsRegistry::global().counter(
                "tkc_store_scratch_spill_bytes_total",
                "Dirty scratch pages written back to disk by the out-of-core peel",
            ),
        })
    }

    /// Word count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the array has zero words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cache traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total bytes of dirty pages written back so far (the spill
    /// volume).
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Bytes currently resident in cache pages.
    pub fn resident_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.words.len() as u64 * 4).sum()
    }

    /// Upper bound on resident cache bytes under this configuration.
    pub fn budget_bytes(&self) -> u64 {
        self.page_words as u64 * 4 * self.capacity as u64
    }

    /// Overwrites the whole array from `values` (must yield exactly
    /// [`Self::len`] words) with one buffered sequential pass, dropping
    /// any cached pages. This is the initialization path — cheaper than
    /// `len` cached writes.
    pub fn write_seq(&mut self, values: impl Iterator<Item = u32>) -> io::Result<()> {
        self.map.clear();
        self.slots.clear();
        self.file.seek(SeekFrom::Start(0))?;
        let mut w = BufWriter::with_capacity(1 << 16, &mut self.file);
        let mut count = 0u64;
        for v in values {
            w.write_all(&v.to_le_bytes())?;
            count += 1;
        }
        w.flush()?;
        drop(w);
        if count != self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("write_seq got {count} words, array holds {}", self.len),
            ));
        }
        Ok(())
    }

    /// Reads word `i` through the cache.
    pub fn read_u32(&mut self, i: u64) -> io::Result<u32> {
        let (page_no, in_page) = self.locate(i)?;
        let slot = self.fault_in(page_no)?;
        self.slots
            .get(slot)
            .and_then(|s| s.words.get(in_page))
            .copied()
            .ok_or_else(|| io::Error::other("scratch page lost a word"))
    }

    /// Writes word `i` through the cache (dirty page; spilled on
    /// eviction or [`Self::flush`]).
    pub fn write_u32(&mut self, i: u64, v: u32) -> io::Result<()> {
        let (page_no, in_page) = self.locate(i)?;
        let slot = self.fault_in(page_no)?;
        let s = self
            .slots
            .get_mut(slot)
            .ok_or_else(|| io::Error::other("scratch page vanished"))?;
        let word = s
            .words
            .get_mut(in_page)
            .ok_or_else(|| io::Error::other("scratch page lost a word"))?;
        if *word != v {
            *word = v;
            s.dirty = true;
        }
        Ok(())
    }

    /// Writes all dirty pages back.
    pub fn flush(&mut self) -> io::Result<()> {
        for i in 0..self.slots.len() {
            self.write_back(i)?;
        }
        Ok(())
    }

    /// Flushes, then streams the whole array sequentially through `f(i,
    /// value)` with a bounded buffer (the cache is left untouched).
    pub fn for_each(&mut self, mut f: impl FnMut(u64, u32)) -> io::Result<()> {
        self.flush()?;
        self.file.seek(SeekFrom::Start(0))?;
        let mut r = BufReader::with_capacity(1 << 16, &mut self.file);
        let mut word = [0u8; 4];
        for i in 0..self.len {
            r.read_exact(&mut word)?;
            f(i, u32::from_le_bytes(word));
        }
        Ok(())
    }

    /// Removes the backing file (consumes the scratch).
    pub fn remove(self) -> io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }

    fn locate(&self, i: u64) -> io::Result<(u64, usize)> {
        if i >= self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("scratch index {i} out of range ({} words)", self.len),
            ));
        }
        let pw = (self.page_words as u64).max(1);
        // analyze: allow(panic-surface): divisor clamped to >=1 on the line above
        Ok((i / pw, (i % pw) as usize))
    }

    fn write_back(&mut self, slot: usize) -> io::Result<()> {
        let Some(s) = self.slots.get_mut(slot) else {
            return Ok(());
        };
        if !s.dirty {
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(s.words.len() * 4);
        for &w in &s.words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let offset = s.page_no * self.page_words as u64 * 4;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&bytes)?;
        s.dirty = false;
        self.spilled_bytes += bytes.len() as u64;
        self.spill_total.add(bytes.len() as u64);
        Ok(())
    }

    fn fault_in(&mut self, page_no: u64) -> io::Result<usize> {
        self.tick += 1;
        if let Some(&slot) = self.map.get(&page_no) {
            self.stats.hits += 1;
            if let Some(s) = self.slots.get_mut(slot) {
                s.last_used = self.tick;
            }
            return Ok(slot);
        }
        self.stats.misses += 1;
        let pw = self.page_words as u64;
        let start_word = page_no * pw;
        let words_here = (self.len.saturating_sub(start_word)).min(pw) as usize;
        if words_here == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "scratch page past end",
            ));
        }
        let mut bytes = vec![0u8; words_here * 4];
        self.file.seek(SeekFrom::Start(start_word * 4))?;
        self.file.read_exact(&mut bytes)?;
        let mut words = Vec::with_capacity(words_here);
        for chunk in bytes.chunks_exact(4) {
            let w = chunk
                .try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| io::Error::other("scratch chunk sizing"))?;
            words.push(w);
        }
        let fresh = Slot {
            page_no,
            words,
            last_used: self.tick,
            dirty: false,
        };
        let slot = if self.slots.len() < self.capacity {
            self.slots.push(fresh);
            self.slots.len() - 1
        } else {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| io::Error::other("scratch cache has zero capacity"))?;
            self.write_back(victim)?;
            self.stats.evictions += 1;
            if let Some(old) = self.slots.get(victim) {
                self.map.remove(&old.page_no);
            }
            if let Some(s) = self.slots.get_mut(victim) {
                *s = fresh;
            }
            victim
        };
        self.map.insert(page_no, slot);
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]

    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tkc_store_scratch_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn random_rmw_under_tiny_cache_is_exact() {
        let path = temp("rmw.bin");
        let n = 1000u64;
        let mut s = ScratchFile::create(&path, n, 16, 2).unwrap();
        s.write_seq((0..n).map(|i| i as u32)).unwrap();
        // Deterministic pseudo-random decrement storm.
        let mut model: Vec<u32> = (0..n as u32).collect();
        let mut state = 0x1234_5678u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) % n;
            let v = s.read_u32(i).unwrap();
            assert_eq!(v, model[i as usize]);
            s.write_u32(i, v.wrapping_add(7)).unwrap();
            model[i as usize] = model[i as usize].wrapping_add(7);
        }
        assert!(s.spilled_bytes() > 0, "tiny cache must have spilled");
        let mut seen = vec![0u32; n as usize];
        s.for_each(|i, v| seen[i as usize] = v).unwrap();
        assert_eq!(seen, model);
        assert!(s.resident_bytes() <= s.budget_bytes());
        s.remove().unwrap();
    }

    #[test]
    fn write_seq_validates_length_and_resets_cache() {
        let path = temp("seq.bin");
        let mut s = ScratchFile::create(&path, 10, 16, 2).unwrap();
        assert!(s.write_seq(0..5u32).is_err());
        s.write_seq((0..10).map(|i| i * 3)).unwrap();
        assert_eq!(s.read_u32(9).unwrap(), 27);
        // A cached page from before write_seq must not shadow new data.
        s.write_u32(0, 99).unwrap();
        s.write_seq((0..10).map(|_| 1)).unwrap();
        assert_eq!(s.read_u32(0).unwrap(), 1);
        assert!(s.read_u32(10).is_err());
        s.remove().unwrap();
    }
}
