#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Silent-corruption rejection, driven through the tkc-faults harness.
//!
//! The writer emits exactly one positioned write per part — header,
//! section table, then each section in file order — so a
//! `FaultKind::BitFlip` failpoint on the write site with trigger `k`
//! corrupts precisely part `k` and nothing else. For every part of a
//! store with all six sections, and across many seeds (the flipped bit
//! position is seed-derived), the reader must answer with a structured
//! `StoreError` — from `open` for header/table damage, from
//! `verify_checksums` / the bulk loads for payload damage — and never
//! panic or return wrong data silently.

use std::sync::Arc;

use tkc_faults::{DiskFile, Failpoint, FaultFile, FaultKind, FaultPlan, FaultSite};
use tkc_graph::csr::edge_supports_csr;
use tkc_graph::{generators, EdgeId, Graph};
use tkc_store::{pack_graph, PageCacheConfig, SectionTag, StoreError, StoreReader};

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tkc_store_corruption_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn test_graph() -> (Graph, Vec<u32>, Vec<u32>) {
    let mut g = generators::holme_kim(90, 3, 0.6, 41);
    let victims: Vec<EdgeId> = g.edge_ids().step_by(5).collect();
    for e in victims {
        g.remove_edge(e).unwrap();
    }
    let sup = edge_supports_csr(&g);
    let kappa: Vec<u32> = sup.iter().map(|&s| s + 1).collect();
    (g, sup, kappa)
}

/// Writes the packed store through a FaultFile that flips one
/// seed-chosen bit of write number `write_no` (1 = header, 2 = table,
/// 3.. = sections in file order).
fn write_with_bitflip(path: &std::path::Path, write_no: u64, seed: u64) {
    let (g, sup, kappa) = test_graph();
    let parts = pack_graph(&g, &sup, Some(&kappa)).unwrap();
    let plan = Arc::new(FaultPlan::with_points(
        vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::BitFlip,
            trigger: write_no,
            count: 1,
        }],
        seed,
    ));
    let mut storage = FaultFile::new(Box::new(DiskFile::open(path).unwrap()), Arc::clone(&plan));
    parts.write_to_storage(&mut storage).unwrap();
    assert_eq!(plan.injected_total(), 1, "bitflip must have fired");
}

/// Every detection surface for a store whose payload may be corrupt:
/// the streaming verify, the bulk loads, and (via exhaustive paged
/// reads after verify skipped) nothing panics. Returns true if some
/// structured error surfaced.
fn corruption_detected(path: &std::path::Path) -> bool {
    let r = match StoreReader::open(path, PageCacheConfig::default()) {
        Ok(r) => r,
        Err(_) => return true,
    };
    if r.verify_checksums().is_err() {
        return true;
    }
    if r.load_graph().is_err() || r.read_supports().is_err() || r.read_kappa().is_err() {
        return true;
    }
    false
}

#[test]
fn bitflip_in_every_part_is_rejected() {
    // Parts: 1 header, 2 table, 3 OFFS, 4 NBRS, 5 EIDS, 6 EDGE, 7 SUPP,
    // 8 KAPP. Several seeds per part so the flipped bit lands in
    // different bytes each time.
    for write_no in 1..=8u64 {
        for seed in [1u64, 0xBEEF, 77_777] {
            let path = temp_store(&format!("flip_{write_no}_{seed}.tkcstor"));
            write_with_bitflip(&path, write_no, seed);
            assert!(
                corruption_detected(&path),
                "bitflip in write {write_no} (seed {seed:#x}) went undetected"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn header_and_table_flips_fail_at_open() {
    for (write_no, seed) in [(1u64, 3u64), (2, 9)] {
        let path = temp_store(&format!("open_flip_{write_no}.tkcstor"));
        write_with_bitflip(&path, write_no, seed);
        let err = StoreReader::open(&path, PageCacheConfig::default()).unwrap_err();
        match err {
            StoreError::Checksum { .. }
            | StoreError::BadMagic
            | StoreError::UnsupportedVersion(_)
            | StoreError::Corrupt(_) => {}
            other => panic!("unexpected error shape: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn truncated_files_are_structured_errors() {
    let (g, sup, kappa) = test_graph();
    let parts = pack_graph(&g, &sup, Some(&kappa)).unwrap();
    let path = temp_store("trunc.tkcstor");
    parts.write_path(&path).unwrap();
    let full = std::fs::read(&path).unwrap();
    // Cut at a few strategic lengths: mid-header, mid-table, mid-payload.
    for keep in [0usize, 10, 47, 60, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..keep]).unwrap();
        let r = StoreReader::open(&path, PageCacheConfig::default());
        match r {
            Err(_) => {}
            Ok(r) => {
                assert!(
                    r.verify_checksums().is_err() || r.load_graph().is_err(),
                    "truncation to {keep} bytes went undetected"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn short_write_on_a_section_is_rejected() {
    // A torn section write (ShortWrite failpoint) leaves stale/zero
    // bytes where the payload should be; the crc pass must catch it.
    let (g, sup, _) = test_graph();
    let parts = pack_graph(&g, &sup, None).unwrap();
    let path = temp_store("torn.tkcstor");
    // First write a clean store so the torn rewrite leaves stale bytes
    // (not just a short file).
    parts.write_path(&path).unwrap();
    let plan = Arc::new(FaultPlan::with_points(
        vec![Failpoint {
            site: FaultSite::Append,
            kind: FaultKind::ShortWrite,
            trigger: 4, // NBRS
            count: 1,
        }],
        0xA5A5,
    ));
    let mut storage = FaultFile::new(Box::new(DiskFile::open(&path).unwrap()), plan);
    assert!(parts.write_to_storage(&mut storage).is_err());
    // The interrupted pack must not be trusted wholesale: either open
    // fails or the checksum pass flags the torn section. (The seeded cut
    // can land at the section boundary, in which case the file is simply
    // the old, fully consistent store — also acceptable.)
    if let Ok(r) = StoreReader::open(&path, PageCacheConfig::default()) {
        let _ = r.verify_checksums();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn kappa_flag_and_section_must_agree() {
    let (g, sup, kappa) = test_graph();
    let with = pack_graph(&g, &sup, Some(&kappa)).unwrap();
    let without = pack_graph(&g, &sup, None).unwrap();
    let path = temp_store("sections.tkcstor");
    without.write_path(&path).unwrap();
    let r = StoreReader::open(&path, PageCacheConfig::default()).unwrap();
    assert!(!r.has_kappa());
    assert!(matches!(
        r.read_kappa(),
        Err(StoreError::MissingSection(SectionTag::Kappa))
    ));
    with.write_path(&path).unwrap();
    let r = StoreReader::open(&path, PageCacheConfig::default()).unwrap();
    assert_eq!(r.read_kappa().unwrap(), kappa);
    std::fs::remove_file(&path).ok();
}
