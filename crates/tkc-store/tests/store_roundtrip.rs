#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! End-to-end store coverage: pack → open → paged reads and bulk loads
//! must reproduce the source graph exactly (dead slots included), on
//! generator graphs and on proptest-random edge sets.

use proptest::prelude::*;
use tkc_graph::adjacency::AdjacencySource;
use tkc_graph::csr::edge_supports_csr;
use tkc_graph::{generators, EdgeId, Graph, VertexId};
use tkc_store::{pack_graph, PageCacheConfig, StoreReader};

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tkc_store_roundtrip_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Packs `g` (with computed supports and a synthetic κ), reopens it, and
/// checks every read surface against the in-memory graph.
fn assert_roundtrip(g: &Graph, name: &str, config: PageCacheConfig) {
    let sup = edge_supports_csr(g);
    let kappa: Vec<u32> = sup.iter().map(|&s| s / 2 + 1).collect();
    let parts = pack_graph(g, &sup, Some(&kappa)).unwrap();
    let path = temp_store(name);
    let written = parts.write_path(&path).unwrap();
    assert_eq!(written, std::fs::metadata(&path).unwrap().len());

    let r = StoreReader::open(&path, config).unwrap();
    r.verify_checksums().unwrap();
    assert_eq!(r.num_vertices(), g.num_vertices());
    assert_eq!(StoreReader::num_edges(&r), g.num_edges());
    assert_eq!(StoreReader::edge_bound(&r), g.edge_bound());
    assert!(r.has_kappa());

    // Paged adjacency matches the mutable graph's sorted lists.
    let mut list = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        r.neighbors(v, &mut list).unwrap();
        let expect: Vec<(u32, EdgeId)> = g
            .adjacency(VertexId(v))
            .iter()
            .map(|&(w, e)| (w.0, e))
            .collect();
        assert_eq!(list, expect, "{name}: adjacency of {v}");
    }

    // Paged per-edge lookups: endpoints, supports, κ, dead slots.
    for i in 0..g.edge_bound() as u32 {
        let want = g.endpoints_checked(EdgeId(i)).map(|(u, v)| (u.0, v.0));
        assert_eq!(r.endpoints(i).unwrap(), want, "{name}: endpoints of e{i}");
        if want.is_some() {
            assert_eq!(r.support(i).unwrap(), sup[i as usize]);
            assert_eq!(r.kappa_at(i).unwrap(), kappa[i as usize]);
        }
    }

    // Bulk loads reproduce the state vectors and the graph itself.
    assert_eq!(r.read_supports().unwrap(), sup);
    assert_eq!(r.read_kappa().unwrap(), kappa);
    let back = r.load_graph().unwrap();
    back.check_invariants().unwrap();
    assert_eq!(back.num_vertices(), g.num_vertices());
    assert_eq!(back.num_edges(), g.num_edges());
    assert_eq!(back.edge_bound(), g.edge_bound());
    for (e, u, v) in g.edges() {
        assert_eq!(back.endpoints_checked(e), Some((u, v)), "{name}: edge {e}");
    }

    // The AdjacencySource view agrees with neighbors().
    assert_eq!(AdjacencySource::num_lists(&r), g.num_vertices());
    let mut via_trait = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        AdjacencySource::read_list(&r, v, &mut via_trait).unwrap();
        r.neighbors(v, &mut list).unwrap();
        assert_eq!(via_trait, list);
    }

    // Compression: varint adjacency beats the raw flat arrays on any
    // graph with locality.
    let info = r.info();
    assert!(info.file_bytes > 0);
    assert_eq!(info.num_edges, g.num_edges());
}

fn churn(g: &mut Graph, step: usize) {
    let victims: Vec<EdgeId> = g.edge_ids().step_by(step.max(2)).collect();
    for e in victims {
        g.remove_edge(e).unwrap();
    }
}

#[test]
fn generator_graphs_roundtrip() {
    let mut hk = generators::holme_kim(250, 3, 0.6, 11);
    churn(&mut hk, 3);
    // Re-add a couple of edges so some freed slots are live again.
    hk.try_add_edge(VertexId(0), VertexId(200));
    hk.try_add_edge(VertexId(5), VertexId(199));
    let cases = [
        ("complete.tkcstor", generators::complete(9)),
        ("star.tkcstor", generators::star(40)),
        ("churned.tkcstor", hk),
        (
            "planted.tkcstor",
            generators::planted_partition(3, 12, 0.7, 0.08, 5),
        ),
    ];
    for (name, g) in &cases {
        assert_roundtrip(g, name, PageCacheConfig::default());
    }
}

#[test]
fn tiny_page_cache_still_reads_correctly() {
    // 64-byte pages, 2 resident: every list read crosses pages and
    // evicts constantly; results must be identical.
    let g = generators::holme_kim(120, 3, 0.7, 23);
    assert_roundtrip(
        &g,
        "tiny_cache.tkcstor",
        PageCacheConfig {
            page_size: 64,
            capacity: 2,
        },
    );
}

#[test]
fn empty_and_edgeless_graphs_roundtrip() {
    assert_roundtrip(&Graph::new(), "empty.tkcstor", PageCacheConfig::default());
    let mut g = Graph::new();
    g.add_vertices(17);
    assert_roundtrip(&g, "isolated.tkcstor", PageCacheConfig::default());
    // A graph where every edge was removed: all slots dead.
    let mut g = generators::complete(5);
    let all: Vec<EdgeId> = g.edge_ids().collect();
    for e in all {
        g.remove_edge(e).unwrap();
    }
    assert_roundtrip(&g, "all_dead.tkcstor", PageCacheConfig::default());
}

#[test]
fn cache_counters_track_traffic() {
    let g = generators::holme_kim(200, 3, 0.6, 3);
    let sup = vec![0u32; g.edge_bound()];
    let parts = pack_graph(&g, &sup, None).unwrap();
    let path = temp_store("counters.tkcstor");
    parts.write_path(&path).unwrap();
    let r = StoreReader::open(
        &path,
        PageCacheConfig {
            page_size: 256,
            capacity: 4,
        },
    )
    .unwrap();
    let mut out = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        r.neighbors(v, &mut out).unwrap();
    }
    let stats = r.cache_stats();
    assert!(stats.misses > 0, "paged reads must fault pages in");
    assert!(stats.hits > 0, "sequential OFFS reads must hit");
    assert!(r.cache_resident_bytes() <= 4 * 256);
    assert!(!r.has_kappa());
    assert!(matches!(
        r.read_kappa(),
        Err(tkc_store::StoreError::MissingSection(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The varint codec round-trips arbitrary values and arbitrary
    /// ascending lists exactly.
    #[test]
    fn varint_codec_roundtrips(values in collection::vec(0u64..u64::MAX, 0..64), gaps in collection::vec(1u32..10_000, 0..64)) {
        use tkc_store::varint::{decode_delta_list, decode_u64, encode_delta_list, encode_u64};
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(&mut buf, v);
        }
        let mut at = 0usize;
        for &v in &values {
            let (back, next) = decode_u64(&buf, at).unwrap();
            prop_assert_eq!(back, v);
            at = next;
        }
        prop_assert_eq!(at, buf.len());

        // Ascending list via cumulative gaps.
        let mut list = Vec::new();
        let mut acc = 0u64;
        for &g in &gaps {
            acc += u64::from(g);
            if acc > u64::from(u32::MAX) {
                break;
            }
            list.push(acc as u32);
        }
        let mut delta = Vec::new();
        encode_delta_list(&mut delta, &list);
        let mut back = Vec::new();
        decode_delta_list(&delta, 0, delta.len(), |v| back.push(v)).unwrap();
        prop_assert_eq!(back, list);
    }

    /// Random sparse edge sets with random deletions (dead slots) and
    /// re-insertions (recycled slots) round-trip bit-exactly.
    #[test]
    fn random_graphs_roundtrip(n in 2usize..60, edges in collection::vec((0u32..60, 0u32..60), 0..160), kill in 0usize..7) {
        let mut g = Graph::new();
        g.add_vertices(n);
        for &(a, b) in &edges {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        if kill > 1 {
            churn(&mut g, kill);
        }
        // Recycle a few slots.
        for &(a, b) in edges.iter().take(4) {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        assert_roundtrip(&g, "prop.tkcstor", PageCacheConfig { page_size: 128, capacity: 3 });
    }
}

/// The identity stamp must actually discriminate. Regression guard for a
/// subtle linearity trap: crc'ing a stream that ends in its own crc
/// (header‖header_crc, table‖table_crc) collapses to a constant residue
/// for *every* store — the stamp must exclude the embedded checksums.
#[test]
fn stamps_discriminate_and_roundtrip_through_disk() {
    let graphs = [
        generators::complete(4),
        generators::complete(9),
        generators::connected_caveman(3, 5),
    ];
    let mut stamps = Vec::new();
    for (i, g) in graphs.iter().enumerate() {
        let supports = edge_supports_csr(g);
        let parts = pack_graph(g, &supports, None).unwrap();
        let path = temp_store(&format!("stamp_{i}"));
        parts.write_path(&path).unwrap();
        let on_disk = tkc_store::file_stamp(&path).unwrap();
        assert_eq!(parts.stamp(), on_disk, "pack-side and file stamps agree");
        stamps.push(on_disk);
        std::fs::remove_file(&path).ok();
    }
    stamps.sort();
    stamps.dedup();
    assert_eq!(
        stamps.len(),
        graphs.len(),
        "distinct stores must stamp distinctly"
    );

    // Same graph, different payload (κ present vs absent, then κ+1):
    // the table's per-section crcs must push the change into the stamp.
    let g = generators::complete(5);
    let supports = edge_supports_csr(&g);
    let kappa = vec![3u32; g.edge_bound()];
    let kappa2 = vec![4u32; g.edge_bound()];
    let plain = pack_graph(&g, &supports, None).unwrap().stamp();
    let with_k = pack_graph(&g, &supports, Some(&kappa)).unwrap().stamp();
    let with_k2 = pack_graph(&g, &supports, Some(&kappa2)).unwrap().stamp();
    assert_ne!(plain, with_k);
    assert_ne!(with_k, with_k2);
}
