#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! The packed-store reopen path: compaction writes a `TKCSTOR` file next
//! to the snapshot and stamps the snapshot header with its identity;
//! `Engine::open` must then rebuild from the store's binary sections,
//! bit-identical to what a text-snapshot parse would have produced — and
//! must refuse (structured, never silent) whenever the pair disagrees.

use std::path::PathBuf;

use tkc_engine::{Engine, EngineConfig, WalOp, STATE_FILE, STORE_FILE};
use tkc_graph::generators;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tkc_store_reopen_tests")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn raw_config(dir: PathBuf) -> EngineConfig {
    EngineConfig {
        fsync: false,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    }
}

/// Seed graph + a removal churn, as WAL ops (leaves dead edge slots so
/// the store's sentinel handling is actually exercised).
fn churned_ops() -> Vec<WalOp> {
    let g = generators::planted_partition(4, 12, 0.8, 0.1, 9);
    let mut ops = Vec::new();
    ops.push(WalOp::AddVertices(g.num_vertices() as u32));
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        ops.push(WalOp::Insert(u.index() as u32, v.index() as u32));
    }
    for (i, e) in g.edge_ids().enumerate() {
        if i % 5 == 0 {
            let (u, v) = g.endpoints(e);
            ops.push(WalOp::Remove(u.index() as u32, v.index() as u32));
        }
    }
    ops
}

/// (vertices, live edges, sorted (u, v, κ) triples) — id-independent
/// identity of an engine's published state.
fn fingerprint(engine: &Engine) -> (usize, usize, Vec<(u32, u32, u32)>) {
    engine.publish();
    let snap = engine.snapshot();
    let g = snap.graph();
    let mut triples: Vec<(u32, u32, u32)> = g
        .edge_ids()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            (u.0.min(v.0), u.0.max(v.0), snap.decomposition().kappa(e))
        })
        .collect();
    triples.sort_unstable();
    (g.num_vertices(), g.num_edges(), triples)
}

#[test]
fn compact_writes_store_and_reopen_uses_it() {
    let dir = temp_dir("fast_path");
    let before = {
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        engine.apply(&churned_ops()).unwrap();
        engine.compact().unwrap();
        assert_eq!(engine.metrics().store_reopens.get(), 0, "open of empty dir");
        fingerprint(&engine)
    };
    assert!(
        dir.join(STORE_FILE).exists(),
        "compaction must pack a store"
    );

    let engine = Engine::open(raw_config(dir.clone())).unwrap();
    assert_eq!(
        engine.metrics().store_reopens.get(),
        1,
        "stamped snapshot + matching store must take the fast path"
    );
    assert_eq!(fingerprint(&engine), before, "store reopen changed state");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_ops_after_compaction_replay_on_top_of_store() {
    let dir = temp_dir("wal_on_top");
    {
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        engine.apply(&churned_ops()).unwrap();
        engine.compact().unwrap();
        // Post-compaction ops land in the WAL only.
        engine
            .apply(&[WalOp::Insert(0, 47), WalOp::Remove(1, 2)])
            .unwrap();
    }
    let reopened = Engine::open(raw_config(dir.clone())).unwrap();
    assert_eq!(reopened.metrics().store_reopens.get(), 1);
    let expected = {
        // Same history replayed WAL-only (no compaction) — the oracle.
        let dir2 = temp_dir("wal_on_top_oracle");
        let oracle = Engine::open(raw_config(dir2.clone())).unwrap();
        let mut ops = churned_ops();
        ops.push(WalOp::Insert(0, 47));
        ops.push(WalOp::Remove(1, 2));
        oracle.apply(&ops).unwrap();
        let f = fingerprint(&oracle);
        std::fs::remove_dir_all(&dir2).ok();
        f
    };
    assert_eq!(fingerprint(&reopened), expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_or_corrupt_store_blocks_open_structurally() {
    let dir = temp_dir("mismatch");
    {
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        engine.apply(&churned_ops()).unwrap();
        engine.compact().unwrap();
    }

    // Deleted store: the stamped snapshot has nothing to vouch for.
    let store = dir.join(STORE_FILE);
    let bytes = std::fs::read(&store).unwrap();
    std::fs::remove_file(&store).unwrap();
    let err = Engine::open(raw_config(dir.clone()))
        .unwrap_err()
        .to_string();
    assert!(err.contains("store"), "missing store: got {err}");

    // Corrupted store (flip a payload byte): stamp no longer matches.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0xff;
    std::fs::write(&store, &flipped).unwrap();
    let err = Engine::open(raw_config(dir.clone()))
        .unwrap_err()
        .to_string();
    assert!(err.contains("store"), "corrupt store: got {err}");

    // Restored byte-identical store: opens again.
    std::fs::write(&store, &bytes).unwrap();
    Engine::open(raw_config(dir.clone())).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_stampless_snapshot_still_opens_but_not_next_to_a_store() {
    let dir = temp_dir("legacy");
    let before = {
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        engine.apply(&churned_ops()).unwrap();
        engine.compact().unwrap();
        fingerprint(&engine)
    };

    // Strip the stamp from the header — a pre-store (v1-style) snapshot.
    let state = dir.join(STATE_FILE);
    let text = std::fs::read_to_string(&state).unwrap();
    let stripped: String = text
        .lines()
        .map(|l| match l.split_once("; store ") {
            Some((head, _)) => format!("{head}\n"),
            None => format!("{l}\n"),
        })
        .collect();
    std::fs::write(&state, &stripped).unwrap();

    // Next to the (now unvouched) store file: refuse.
    let err = Engine::open(raw_config(dir.clone()))
        .unwrap_err()
        .to_string();
    assert!(err.contains("store"), "unvouched store: got {err}");

    // Store removed: plain legacy text recovery, same state, slow path.
    std::fs::remove_file(dir.join(STORE_FILE)).unwrap();
    let engine = Engine::open(raw_config(dir.clone())).unwrap();
    assert_eq!(
        engine.metrics().store_reopens.get(),
        0,
        "must not fast-path"
    );
    assert_eq!(fingerprint(&engine), before);
    std::fs::remove_dir_all(&dir).ok();
}
