//! Replication chaos acceptance suite: seeded schedules kill and
//! restart the primary and the follower, tear the replication link
//! mid-stream (`repl.connect` / `repl.send` / `repl.recv` failpoints),
//! and require full convergence — follower κ ≡ primary κ ≡ from-scratch
//! recompute — after every disruption and at the end of every stream.
//!
//! Every seed fully determines its case (graph, op stream, link-fault
//! schedule, restart script), so a failure reproduces with one integer:
//!
//! ```text
//! chaos::run_repl_case(dir, &ReplChaosCase::from_seed(SEED))
//! ```
//!
//! The default run covers a quick subset; CI widens it to the full
//! acceptance range with `TKC_REPL_CHAOS_SEEDS` (the ISSUE floor is 72).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use std::path::PathBuf;

use tkc_engine::chaos::run_repl_seed_range;

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tkc_repl_chaos_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Seed count: 12 by default (quick, every disruption mode × every
/// graph shape at least once), `TKC_REPL_CHAOS_SEEDS` to widen.
fn seed_count() -> u64 {
    std::env::var("TKC_REPL_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

#[test]
fn seeded_replication_schedules_converge() {
    let count = seed_count();
    let root = temp_root("suite");
    let total = run_repl_seed_range(&root, 0, count)
        .unwrap_or_else(|(seed, f)| panic!("repl seed {seed}: {f}"));
    assert!(
        total.batches_acked >= count,
        "suspiciously few acks: {total:?}"
    );
    // Every case ends with at least the end-of-stream convergence, and
    // across the range the script must actually kill nodes and the plan
    // must actually tear links — all-zero counters mean the chaos layer
    // silently disarmed itself.
    assert!(
        total.convergences >= count,
        "too few convergence checkpoints: {total:?}"
    );
    assert!(total.restarts > 0, "no node was ever killed: {total:?}");
    assert!(
        total.faults_injected > 0,
        "no link faults fired across {count} seeds: {total:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}
