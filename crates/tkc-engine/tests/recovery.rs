#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! WAL crash-recovery equivalence, wired into the tkc-verify differential
//! corpus: for every stream in the 216-case default suite, killing the
//! engine (drop without compaction) and replaying the log must yield κ
//! values bit-identical to a from-scratch `triangle_kcore_decomposition`
//! of the surviving graph. A second pass kills mid-stream, recovers,
//! finishes the stream, and kills again — recovery must compose.

use std::path::PathBuf;

use tkc_engine::{Engine, EngineConfig, Wal, WalOp};
use tkc_graph::Graph;
use tkc_verify::differential::{
    default_suite, generate_ops, kappa_matches_recompute, StreamConfig, StreamOp,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tkc_recovery_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// No auto-publication or auto-compaction: every reopen replays the full
/// WAL, which is exactly the path under test.
fn raw_config(dir: PathBuf) -> EngineConfig {
    EngineConfig {
        fsync: false,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    }
}

/// The seed graph + op stream of a differential case, as WAL ops.
fn case_ops(config: &StreamConfig) -> Vec<WalOp> {
    let g = config.kind.build(config.seed);
    let mut ops = Vec::with_capacity(g.num_edges() + config.ops + 1);
    ops.push(WalOp::AddVertices(g.num_vertices() as u32));
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        ops.push(WalOp::Insert(u.index() as u32, v.index() as u32));
    }
    for op in generate_ops(config, config.ops) {
        ops.push(match op {
            StreamOp::Insert(u, v) => WalOp::Insert(u, v),
            StreamOp::Remove(u, v) => WalOp::Remove(u, v),
        });
    }
    ops
}

/// κ of every live edge in the engine's current graph, indexed by edge id.
fn engine_kappa(engine: &Engine) -> (Graph, Vec<u32>) {
    let snap = engine.snapshot();
    let g = snap.graph().clone();
    let mut kappa = vec![0u32; g.edge_bound()];
    for e in g.edge_ids() {
        kappa[e.index()] = snap.decomposition().kappa(e);
    }
    (g, kappa)
}

fn assert_recovered_matches(engine: &Engine, label: &str) {
    let (g, kappa) = engine_kappa(engine);
    if let Err(m) = kappa_matches_recompute(&g, &kappa) {
        panic!("{label}: recovered κ diverges from recompute: {m:?}");
    }
}

#[test]
fn full_suite_kill_and_replay_matches_recompute() {
    let suite = default_suite(216);
    assert_eq!(suite.len(), 216, "suite size drifted; update the test");
    for (i, config) in suite.iter().enumerate() {
        let dir = temp_dir(&format!("suite_{i}"));
        let ops = case_ops(config);
        {
            let engine = Engine::open(raw_config(dir.clone())).unwrap();
            engine.apply(&ops).unwrap();
            // Dropped without publish/compact: a kill. Everything durable
            // lives only in the WAL.
        }
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        assert!(
            engine.metrics().recovery_replays.get() > 0,
            "case {i}: reopen should have replayed the WAL"
        );
        assert_recovered_matches(&engine, &format!("case {i} ({config:?})"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mid_stream_kill_recover_continue_composes() {
    // A denser sweep on a subset: kill halfway, recover, finish, kill
    // again, recover — with a compaction wedged between the two halves on
    // odd cases so snapshot + WAL-suffix recovery is exercised too.
    let suite = default_suite(216);
    for (i, config) in suite.iter().enumerate().step_by(9) {
        let dir = temp_dir(&format!("midkill_{i}"));
        let ops = case_ops(config);
        let half = ops.len() / 2;
        {
            let engine = Engine::open(raw_config(dir.clone())).unwrap();
            engine.apply(&ops[..half]).unwrap();
        }
        {
            let engine = Engine::open(raw_config(dir.clone())).unwrap();
            assert_recovered_matches(&engine, &format!("case {i} after first kill"));
            if i % 2 == 1 {
                engine.compact().unwrap();
            }
            engine.apply(&ops[half..]).unwrap();
        }
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        assert_recovered_matches(&engine, &format!("case {i} after second kill"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn every_torn_wal_prefix_recovers_to_a_consistent_kappa() {
    // Simulate a crash at every possible byte of the log: truncate the WAL
    // to each length, reopen, and demand (a) the recovered ops are a
    // prefix of what was appended and (b) the engine's κ matches a fresh
    // recompute of that prefix's graph.
    let config = StreamConfig::quick(
        tkc_verify::differential::GraphKind::Gnp { n: 12, p: 0.3 },
        7,
        40,
    );
    let ops = case_ops(&config);

    let dir = temp_dir("torn_master");
    {
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        engine.apply(&ops).unwrap();
    }
    let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // The 8-byte magic must survive; everything after it is fair game.
    for cut in 8..=wal_bytes.len() {
        let dir = temp_dir(&format!("torn_{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), &wal_bytes[..cut]).unwrap();

        // First check the raw WAL layer reports an op-prefix.
        let (_, recovery) = Wal::open(&dir.join("wal.log"), false).unwrap();
        assert!(
            recovery.ops.len() <= ops.len() && recovery.ops == ops[..recovery.ops.len()],
            "cut {cut}: recovered ops are not a prefix"
        );
        std::fs::remove_dir_all(&dir).ok();

        // Then check the engine built from that prefix is self-consistent.
        let dir = temp_dir(&format!("torn_engine_{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), &wal_bytes[..cut]).unwrap();
        let engine = Engine::open(raw_config(dir.clone())).unwrap();
        assert_recovered_matches(&engine, &format!("torn cut {cut}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
