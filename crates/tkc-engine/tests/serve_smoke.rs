#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Concurrent serve smoke: four clients hammer one server over loopback —
//! two writers building disjoint K5 cliques (one via synchronous INSERT,
//! one via the queued BATCH path) while two readers loop
//! MAXK/KAPPA/TRUSS/STATS against the published snapshots. Afterwards the
//! final state must be exactly the two cliques, and shutdown must leave a
//! compacted state directory that reopens with zero WAL replays.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tkc_engine::{Engine, EngineConfig, ServeOptions, Server};

struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn send(&mut self, cmd: &str) -> String {
        writeln!(self.stream, "{cmd}").unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Sends STATS and returns the key/value block.
    fn stats(&mut self) -> Vec<(String, String)> {
        assert_eq!(self.send("STATS"), "OK");
        let mut out = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let t = line.trim_end();
            if t == "." {
                return out;
            }
            if let Some((k, v)) = t.split_once(' ') {
                out.push((k.to_string(), v.to_string()));
            }
        }
    }
}

fn clique_edges(base: u32) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for i in 0..5 {
        for j in (i + 1)..5 {
            edges.push((base + i, base + j));
        }
    }
    edges
}

#[test]
fn four_concurrent_clients_mixed_reads_and_writes() {
    let dir = std::env::temp_dir()
        .join("tkc_serve_smoke_tests")
        .join("mixed");
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(
        Engine::open(EngineConfig {
            fsync: false,
            epoch_ops: 8, // force frequent snapshot turnover under load
            ..EngineConfig::new(&dir)
        })
        .unwrap(),
    );
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeOptions {
            read_timeout: Duration::from_secs(10),
            queue_cap: 2,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Writer 1: synchronous INSERTs for the K5 on 0..5.
    let w1 = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for (u, v) in clique_edges(0) {
            let reply = c.send(&format!("INSERT {u} {v}"));
            assert!(reply.starts_with("OK"), "INSERT {u} {v} -> {reply}");
        }
        c.send("QUIT");
    });

    // Writer 2: the K5 on 5..10 through the bounded BATCH queue, one
    // batch per edge so the queue cycles.
    let w2 = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for (u, v) in clique_edges(5) {
            writeln!(c.stream, "BATCH 1\n+ {u} {v}").unwrap();
            let mut line = String::new();
            c.reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "OK queued 1");
        }
        c.send("QUIT");
    });

    // Readers: loop snapshot queries the whole time; every reply must be
    // well-formed regardless of how much ingest has landed.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for i in 0..50 {
                    assert!(c.send("MAXK").starts_with("OK "));
                    assert!(c.send("TRUSS 3").starts_with("OK cores="));
                    let kappa = c.send("KAPPA 0 1");
                    assert!(
                        kappa.starts_with("OK ") || kappa == "ERR no such edge",
                        "KAPPA 0 1 -> {kappa}"
                    );
                    assert!(!c.stats().is_empty());
                    if i % 10 == 9 {
                        assert!(c.send("EPOCH").starts_with("OK "));
                    }
                }
                c.send("QUIT");
            })
        })
        .collect();

    w1.join().unwrap();
    w2.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Both writers are done; wait for the batch queue to drain (20 ops
    // total: 10 sync + 10 queued), then check the merged state.
    let mut c = Client::connect(addr);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let applied = c
            .stats()
            .iter()
            .find(|(k, _)| k == "ops_applied")
            .map(|(_, v)| v.parse::<u64>().unwrap())
            .unwrap();
        if applied >= 20 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "batch queue never drained (ops_applied = {applied})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(c.send("EPOCH").starts_with("OK "));
    assert_eq!(c.send("KAPPA 0 1"), "OK 3", "K5 edge must sit at κ = 3");
    assert_eq!(c.send("KAPPA 5 9"), "OK 3");
    assert_eq!(c.send("MAXK"), "OK 3");
    assert_eq!(c.send("TRUSS 3"), "OK cores=2 edges=20 vertices=10");
    assert_eq!(c.send("SHUTDOWN"), "OK shutting down");
    let summary = server.join();
    // Drain summary: 5 clients connected (2 writers, 2 readers, this one),
    // all 10 queued batches flushed, all 20 ops applied.
    assert!(
        summary.connections >= 5,
        "expected >=5 connections, got {}",
        summary.connections
    );
    assert_eq!(summary.batches_flushed, 10);
    assert_eq!(summary.ops_applied, 20);

    // Graceful shutdown compacted: reopening replays nothing.
    let reopened = Engine::open(EngineConfig {
        fsync: false,
        ..EngineConfig::new(&dir)
    })
    .unwrap();
    assert_eq!(
        reopened.metrics().recovery_replays.get(),
        0,
        "clean shutdown must leave an empty WAL"
    );
    assert_eq!(reopened.snapshot().num_vertices(), 10);
    assert_eq!(reopened.snapshot().num_edges(), 20);
    assert_eq!(reopened.snapshot().max_kappa(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// The low-traffic verbs — PING, HEALTH, METRICS, REMOVE, QUIT — answer
/// correctly on a live server, and a REMOVE/re-INSERT toggle round-trips
/// through the durable path without disturbing κ.
#[test]
fn auxiliary_verbs_answer_on_a_live_server() {
    let dir = std::env::temp_dir()
        .join("tkc_serve_smoke_tests")
        .join("verbs");
    std::fs::remove_dir_all(&dir).ok();
    let engine = Arc::new(
        Engine::open(EngineConfig {
            fsync: false,
            ..EngineConfig::new(&dir)
        })
        .unwrap(),
    );
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeOptions {
            read_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr());

    assert_eq!(c.send("PING"), "OK pong");
    assert_eq!(c.send("HEALTH"), "OK serving");
    for (u, v) in [(0, 1), (0, 2), (1, 2)] {
        assert!(c.send(&format!("INSERT {u} {v}")).starts_with("OK"));
    }
    assert_eq!(c.send("REMOVE 0 1"), "OK removed");
    assert_eq!(c.send("REMOVE 0 1"), "OK noop");
    assert!(c.send("INSERT 0 1").starts_with("OK"));
    assert!(c.send("EPOCH").starts_with("OK "));
    assert_eq!(c.send("KAPPA 0 1"), "OK 1");

    // METRICS: `.`-terminated prometheus block with the removal counted.
    assert_eq!(c.send("METRICS"), "OK");
    let mut saw_removed = false;
    loop {
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        let t = line.trim_end();
        if t == "." {
            break;
        }
        if t.starts_with("tkc_engine_removed_total") {
            saw_removed = true;
        }
    }
    assert!(saw_removed, "METRICS block lacks tkc_engine_removed_total");

    // SLO: this server has no objectives configured; the verb still
    // answers with a `.`-terminated block saying exactly that.
    let read_block = |c: &mut Client| -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            c.reader.read_line(&mut line).unwrap();
            let t = line.trim_end();
            if t == "." {
                return lines;
            }
            lines.push(t.to_string());
        }
    };
    assert_eq!(c.send("SLO"), "OK");
    let slo = read_block(&mut c);
    assert!(
        slo.iter().any(|l| l.contains("no slo objectives")),
        "SLO without objectives -> {slo:?}"
    );

    // TRACE n: a `.`-terminated JSONL block (empty here — tracing is
    // off), and n is validated before anything is read.
    assert_eq!(c.send("TRACE 5"), "OK");
    read_block(&mut c);
    assert_eq!(c.send("TRACE 0"), "ERR usage: TRACE n (n >= 1)");

    // PROMOTE is only meaningful on a replication follower; on a
    // standalone server it answers a clean one-line error.
    assert!(c.send("PROMOTE").starts_with("ERR INVALID"));

    // QUIT closes only this connection; the server keeps serving.
    assert_eq!(c.send("QUIT"), "OK bye");
    let mut c2 = Client::connect(server.local_addr());
    assert_eq!(c2.send("PING"), "OK pong");
    assert_eq!(c2.send("SHUTDOWN"), "OK shutting down");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
