//! Fuzz the wire-protocol parser with arbitrary bytes: for *any* input
//! the parser must return a well-formed command or an `ERR`-renderable
//! parse error — never panic, never emit an unprintable or multi-line
//! error, never allocate proportionally to a hostile token.
//!
//! This is the server's first line of defense: every byte a client sends
//! flows through [`parse_command`] / [`parse_batch_line`] (after lossy
//! UTF-8 decoding, which these properties reproduce exactly).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use proptest::prelude::*;

use tkc_engine::proto::{parse_batch_line, parse_command, Command};

/// What the server does to raw bytes before parsing.
fn decode(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).trim().to_string()
}

/// Shared postcondition: any parse error must render as a sane,
/// single-line, printable wire message.
fn assert_wire_safe(line: &str) {
    if let Some(Err(e)) = parse_command(line) {
        let msg = e.to_string();
        assert!(!msg.is_empty(), "empty error for {line:?}");
        assert!(!msg.contains('\n'), "multi-line error for {line:?}");
        assert!(msg.len() <= 120, "oversized error {msg:?} for {line:?}");
        assert!(
            msg.chars().all(|c| c.is_ascii_graphic() || c == ' '),
            "unprintable error {msg:?} for {line:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..200)) {
        let line = decode(&bytes);
        assert_wire_safe(&line);
        // Batch body lines take the same hostile bytes.
        let _ = parse_batch_line(&line);
    }

    #[test]
    fn known_verbs_with_hostile_args_never_panic(
        verb_idx in 0usize..13,
        a in collection::vec(any::<u8>(), 0..40),
        b in collection::vec(any::<u8>(), 0..40),
    ) {
        const VERBS: [&str; 13] = [
            "KAPPA", "MAXK", "TRUSS", "INSERT", "REMOVE", "BATCH", "EPOCH",
            "STATS", "METRICS", "HEALTH", "PING", "QUIT", "SHUTDOWN",
        ];
        let line = format!("{} {} {}", VERBS[verb_idx], decode(&a), decode(&b));
        assert_wire_safe(line.trim());
    }

    #[test]
    fn oversized_tokens_echo_bounded(len in 1usize..5000, byte in any::<u8>()) {
        let c = if byte.is_ascii() && byte != 0 { byte as char } else { 'z' };
        let token: String = std::iter::repeat(c).take(len).collect();
        let line = token.clone();
        if let Some(Err(e)) = parse_command(&line) {
            assert!(e.to_string().len() <= 120, "unbounded echo for len {len}");
        }
        assert_wire_safe(&line);
    }

    #[test]
    fn nul_and_control_bytes_are_survivable(
        prefix in collection::vec(0u8..32, 0..8),
        verb_idx in 0usize..13,
    ) {
        const VERBS: [&str; 13] = [
            "KAPPA", "MAXK", "TRUSS", "INSERT", "REMOVE", "BATCH", "EPOCH",
            "STATS", "METRICS", "HEALTH", "PING", "QUIT", "SHUTDOWN",
        ];
        let mut bytes = prefix.clone();
        bytes.extend_from_slice(VERBS[verb_idx].as_bytes());
        bytes.push(0);
        assert_wire_safe(&decode(&bytes));
    }

    #[test]
    fn numeric_args_round_trip_or_reject(u in any::<u64>(), v in any::<u64>()) {
        let line = format!("INSERT {u} {v}");
        match parse_command(&line) {
            Some(Ok(Command::Insert(pu, pv))) => {
                // Accepted only when both fit u32, and losslessly.
                assert_eq!(u64::from(pu), u);
                assert_eq!(u64::from(pv), v);
            }
            Some(Err(_)) => {
                assert!(u > u64::from(u32::MAX) || v > u64::from(u32::MAX));
            }
            other => panic!("INSERT parsed as {other:?}"),
        }
    }

    #[test]
    fn truncated_batch_headers_reject_cleanly(
        tail in collection::vec(any::<u8>(), 0..16),
    ) {
        // "BATCH" + garbage tail: either a valid in-range count or a
        // usage error — never a panic, never an out-of-range accept.
        let line = format!("BATCH {}", decode(&tail));
        match parse_command(line.trim()) {
            Some(Ok(Command::Batch(n))) => assert!(n <= 1_000_000),
            Some(Ok(other)) => panic!("BATCH parsed as {other:?}"),
            Some(Err(_)) | None => {}
        }
        assert_wire_safe(line.trim());
    }

    #[test]
    fn batch_body_lines_parse_or_reject(
        sign in 0u8..4,
        u in any::<u64>(),
        v in any::<u64>(),
    ) {
        let s = ["+", "-", "*", ""][sign as usize];
        let line = format!("{s} {u} {v}");
        let parsed = parse_batch_line(line.trim());
        let in_range = u <= u64::from(u32::MAX) && v <= u64::from(u32::MAX);
        match s {
            "+" | "-" => assert_eq!(parsed.is_some(), in_range),
            _ => assert!(parsed.is_none()),
        }
    }
}
