//! Chaos acceptance suite: ≥200 seeded fault schedules through the real
//! engine, zero tolerance for panics or silent κ divergence.
//!
//! Every seed fully determines its case (graph, op stream, fault
//! schedule), so a failure here reproduces with one integer:
//!
//! ```text
//! chaos::run_case(dir, &ChaosCase::from_seed(SEED))
//! ```
//!
//! The harness itself ([`tkc_engine::chaos`]) reacts to injected faults
//! the way production does — recover in place when degraded, reopen and
//! replay after a simulated crash — and checks `κ ≡ recompute` after
//! every recovery, at the end of the stream, and across a final clean
//! reopen.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]
use std::path::PathBuf;

use tkc_engine::chaos::{run_case, run_seed_range, ChaosCase};

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tkc_chaos_tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The headline acceptance run: 216 seeds (mirroring the 216-stream
/// differential suite), every fault schedule survived, every oracle
/// checkpoint green.
#[test]
fn two_hundred_sixteen_seeded_schedules_survive() {
    let root = temp_root("suite");
    let total =
        run_seed_range(&root, 0, 216).unwrap_or_else(|(seed, f)| panic!("seed {seed}: {f}"));
    assert!(
        total.batches_acked >= 216,
        "suspiciously few acks: {total:?}"
    );
    // Across 216 seeded schedules a healthy harness must both inject
    // faults and exercise both repair paths; all-zero counters would mean
    // the chaos layer silently disarmed itself.
    assert!(total.faults_injected >= 50, "too few faults: {total:?}");
    assert!(total.recoveries >= 10, "too few recoveries: {total:?}");
    assert!(total.crash_restarts >= 5, "too few restarts: {total:?}");
    assert!(
        total.oracle_checks >= 216 * 2,
        "oracle barely ran: {total:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Same engine + plan machinery, but with fsync-heavy cases only: every
/// third seed runs `fsync: true`, which routes through the wal.fsync
/// failpoints (EIO on fsync is the classic "fsyncgate" shape).
#[test]
fn fsync_heavy_cases_survive() {
    let root = temp_root("fsync");
    for seed in (0..60).filter(|s| s % 3 == 0) {
        let case = ChaosCase::from_seed(seed);
        assert!(case.fsync, "seed {seed} should be an fsync case");
        let dir = root.join(format!("seed-{seed}"));
        run_case(&dir, &case).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A crash mid-append must never lose an acknowledged op: replay after
/// the simulated restart rebuilds a state whose κ matches recompute, and
/// the harness's durability epilogue (clean close + reopen) round-trips.
/// This pins the at-least-once contract on a seed known to crash.
#[test]
fn crash_seeds_replay_without_divergence() {
    let root = temp_root("crash");
    let mut crashes = 0;
    for seed in 0..48 {
        let dir = root.join(format!("seed-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let case = ChaosCase::from_seed(seed);
        let report = run_case(&dir, &case).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        crashes += report.crash_restarts;
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(crashes > 0, "no crash schedule fired in 48 seeds");
    std::fs::remove_dir_all(&root).ok();
}
