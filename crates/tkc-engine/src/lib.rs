//! Durable serving layer for Triangle K-Core decompositions.
//!
//! This crate wraps [`tkc_core`]'s incremental maintenance
//! (`DynamicTriangleKCore`) in a production-shaped engine:
//!
//! - [`wal`] — a write-ahead op log with checksummed, length-prefixed
//!   records. Recovery tolerates a torn final record (a crash mid-append)
//!   and replays every durable op; compaction folds the log into a
//!   snapshot file so restart cost stays bounded.
//! - [`engine`] — [`Engine`] applies ops under a single writer lock and
//!   publishes immutable [`EpochSnapshot`]s (graph + κ + frozen CSR) that
//!   readers share by cloning an `Arc`; queries never wait on ingest.
//! - [`server`] — [`Server`], the `tkc serve` TCP front-end: a
//!   line-oriented text protocol with synchronous durable writes, snapshot
//!   reads, a bounded batch-ingest queue with backpressure, and graceful
//!   shutdown.
//!
//! Everything is `std`-only: no async runtime, no external crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serving crate holds the strictest panic-surface wall in the
// workspace: the tkc-analyze lint audits it source-level, and clippy
// escalates from the workspace-wide `warn` to `deny` here. Exceptions
// live next to their justification (`#[allow]` + `// analyze: allow`).
#![deny(clippy::expect_used, clippy::indexing_slicing)]

pub mod chaos;
pub mod engine;
pub mod error;
pub mod proto;
pub mod repl;
pub mod server;
pub mod wal;

/// Serializes tests that toggle the process-global `TraceBuffer` (span
/// and op-trace tests would otherwise shear each other's records when
/// the test harness runs them on parallel threads).
#[cfg(test)]
pub(crate) fn global_trace_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock() // analyze: allow(lock-order): test-only serialization mutex, never held with product locks
        .unwrap_or_else(|p| p.into_inner())
}

pub use engine::{
    ApplyReport, Engine, EngineConfig, EngineMetrics, EpochSnapshot, TrussSummary, STATE_FILE,
    STORE_FILE, WAL_FILE,
};
pub use error::{EngineError, EngineState};
pub use repl::{start as start_replication, ReplOptions, ReplServer, Role};
pub use server::{DrainSummary, ServeOptions, Server};
pub use wal::{AppendInfo, Recovery, Wal, WalError, WalOp};
