//! The `tkc serve` TCP front-end: a threaded listener speaking a
//! line-oriented text protocol over the engine.
//!
//! ## Wire protocol
//!
//! One command per `\n`-terminated line; every response starts with `OK`
//! or `ERR`. Multi-line responses (`STATS`) end with a lone `.`.
//!
//! | command        | response                                | path   |
//! |----------------|-----------------------------------------|--------|
//! | `KAPPA u v`    | `OK <κ>` / `ERR no such edge`           | snapshot |
//! | `MAXK`         | `OK <max κ>`                            | snapshot |
//! | `TRUSS k`      | `OK cores=<c> edges=<m> vertices=<n>`   | snapshot |
//! | `INSERT u v`   | `OK kappa=<κ>` / `OK noop`              | durable, read-your-write |
//! | `REMOVE u v`   | `OK removed` / `OK noop`                | durable |
//! | `BATCH n` + n op lines (`+ u v` / `- u v`) | `OK queued <n>` | bounded queue |
//! | `EPOCH`        | `OK <epoch>` (forces publication)       | writer |
//! | `STATS`        | `OK`, `key value` lines, `.`            | counters |
//! | `METRICS`      | `OK`, Prometheus text lines, `.`        | counters |
//! | `SLO`          | `OK`, per-verb objective lines, `.`     | SLO tracker |
//! | `TRACE n`      | `OK`, last `n` trace/span JSONL lines, `.` | trace ring |
//! | `HEALTH`       | `OK serving` / `OK read_only <reason>`  | state machine |
//! | `PING`         | `OK pong`                               | — |
//! | `SHUTDOWN`     | `OK shutting down` (graceful stop)      | — |
//! | `QUIT`         | `OK bye` (closes this connection)       | — |
//!
//! Reads (`KAPPA`/`MAXK`/`TRUSS`) are answered from the current epoch
//! snapshot and never block on ingest. `INSERT`/`REMOVE` are applied
//! synchronously (WAL-durable when the `OK` is on the wire) and `INSERT`
//! reports the edge's κ immediately. `BATCH` trades that read-your-write
//! for throughput: ops go into a **bounded** queue consumed by a single
//! ingest thread, and the `send` blocks when the queue is full — clients
//! feel backpressure instead of the server buffering unboundedly. Queued
//! batches are acknowledged as *queued*, not yet durable; graceful
//! shutdown drains the queue before the final compaction.
//!
//! ## Degraded mode and recovery
//!
//! When the engine drops to read-only (WAL failure), reads keep being
//! served from the last epoch while writes answer `ERR DEGRADED
//! <reason>`. A supervisor thread watches the state and drives
//! [`Engine::recover`] with capped exponential backoff + jitter until
//! the engine serves again.
//!
//! ## Wire hardening
//!
//! Hostile or broken clients are bounded on every axis: line length
//! ([`ServeOptions::max_line_bytes`], oversized lines answer `ERR` and
//! close), connection count ([`ServeOptions::max_conns`], excess
//! connections are shed with `ERR BUSY`), per-connection request budget
//! ([`ServeOptions::request_budget`]), and a read timeout that reaps
//! idle or half-open connections (counted in `tkc_conn_timeouts_total`
//! and logged). Parsing never panics on arbitrary bytes — see
//! [`crate::proto`].
//!
//! ## Request spans, slow-op log, SLOs
//!
//! When span tracing is on (`--trace-out` / `--slow-op-ms`), every
//! request records a span tree: a per-connection `conn` root, a `parse`
//! child per line, and a per-request span named after the verb whose
//! children cover the batch-queue wait (`queue.wait`), the engine apply
//! (`engine.apply` → `engine.wal_append` → `engine.wal_fsync`,
//! `engine.cascade`, `engine.publish`), and — for queued batches — the
//! cross-thread `engine.ingest` continuation. A request slower than
//! [`ServeOptions::slow_op`] logs its completed tree at `warn` level and
//! bumps `tkc_server_slow_ops_total`. Per-verb latency objectives
//! ([`ServeOptions::slo`]) feed an [`SloTracker`] whose burn-rate gauges
//! are on `/metrics` and whose status renders via the `SLO` verb.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tkc_obs::{Counter, Histogram, SloTarget, SloTracker, SpanContext, SpanGuard, TraceBuffer};

use crate::engine::Engine;
use crate::error::{EngineError, EngineState};
use crate::proto::{parse_batch_line, parse_command, Command};
use crate::wal::WalOp;

/// Per-command request counter + latency histogram, labeled
/// `{cmd="<VERB>"}` on the engine's registry.
#[derive(Debug, Clone)]
struct CommandMetrics {
    requests: Counter,
    seconds: Histogram,
}

/// The wire verbs that get their own `{cmd=...}` series; anything else
/// lands in `OTHER`.
const VERBS: [&str; 16] = [
    "KAPPA", "MAXK", "TRUSS", "INSERT", "REMOVE", "BATCH", "EPOCH", "STATS", "METRICS", "SLO",
    "TRACE", "HEALTH", "PROMOTE", "PING", "QUIT", "SHUTDOWN",
];

/// The canonical (static) spelling of a raw verb token, for span names
/// and SLO keys; unknown verbs collapse to `OTHER`.
fn static_verb(verb: &str) -> &'static str {
    VERBS
        .iter()
        .find(|&&v| v == verb)
        .copied()
        .unwrap_or("OTHER")
}

/// One queued `BATCH` body plus the span context of the request that
/// queued it, so the ingest thread's spans link back to the client's
/// trace.
type QueuedBatch = (Vec<WalOp>, Option<SpanContext>);

/// Per-verb serving metrics plus the shedding/timeout counters, shared by
/// every connection thread.
#[derive(Debug)]
struct ServerMetrics {
    by_verb: Vec<(&'static str, CommandMetrics)>,
    other: CommandMetrics,
    /// Connections reaped by the read timeout.
    conn_timeouts: Counter,
    /// Connections shed at the cap with `ERR BUSY`.
    shed_busy: Counter,
    /// Connections closed for an oversized line.
    shed_line: Counter,
    /// Connections closed for exhausting their request budget.
    shed_budget: Counter,
    /// Queued batches dropped because apply failed (engine degraded).
    batches_dropped: Counter,
    /// Requests that tripped the `--slow-op-ms` slow-op log.
    slow_ops: Counter,
    /// Per-verb latency objectives (empty unless `--slo` is configured).
    slo: SloTracker,
}

impl ServerMetrics {
    fn register(engine: &Engine, slo_targets: &[SloTarget]) -> ServerMetrics {
        let reg = engine.registry();
        let family = |cmd: &str| CommandMetrics {
            requests: reg.counter_with(
                "tkc_server_requests_total",
                "Commands handled, by verb",
                &[("cmd", cmd)],
            ),
            seconds: reg.histogram_with(
                "tkc_server_command_seconds",
                "Command handling latency, by verb",
                1e-9,
                &[("cmd", cmd)],
            ),
        };
        let shed = |reason: &str| {
            reg.counter_with(
                "tkc_server_shed_total",
                "Connections shed, by reason",
                &[("reason", reason)],
            )
        };
        ServerMetrics {
            by_verb: VERBS.iter().map(|&v| (v, family(v))).collect(),
            other: family("OTHER"),
            conn_timeouts: reg.counter(
                "tkc_conn_timeouts_total",
                "Connections reaped by the read timeout",
            ),
            shed_busy: shed("busy"),
            shed_line: shed("line_too_long"),
            shed_budget: shed("request_budget"),
            batches_dropped: reg.counter(
                "tkc_server_batches_dropped_total",
                "Queued batches dropped because apply failed",
            ),
            slow_ops: reg.counter(
                "tkc_server_slow_ops_total",
                "Requests over the --slow-op-ms threshold (span tree logged)",
            ),
            slo: SloTracker::new(reg, slo_targets),
        }
    }

    fn for_verb(&self, verb: &str) -> &CommandMetrics {
        self.by_verb
            .iter()
            .find(|(name, _)| *name == verb)
            .map(|(_, m)| m)
            .unwrap_or(&self.other)
    }
}

/// Final accounting of a graceful shutdown, logged at info level and
/// returned by [`Server::shutdown`] / [`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime (all closed by the
    /// time the summary exists).
    pub connections: u64,
    /// Batches drained from the ingest queue and applied.
    pub batches_flushed: u64,
    /// Total mutation ops applied by the engine.
    pub ops_applied: u64,
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-connection read timeout; a connection idle longer is reaped
    /// (counted in `tkc_conn_timeouts_total`).
    pub read_timeout: Duration,
    /// Capacity (in batches) of the bounded ingest queue.
    pub queue_cap: usize,
    /// Maximum concurrent connections; extras get `ERR BUSY` and are
    /// closed immediately.
    pub max_conns: usize,
    /// Maximum request-line length in bytes; longer lines answer `ERR`
    /// and close the connection.
    pub max_line_bytes: usize,
    /// Requests a single connection may issue before being closed
    /// (`0` = unlimited).
    pub request_budget: u64,
    /// Base delay of the recovery supervisor's exponential backoff.
    pub recover_backoff: Duration,
    /// Cap on the recovery backoff delay.
    pub recover_backoff_cap: Duration,
    /// Slow-op log threshold: a request strictly slower than this logs
    /// its span tree at `warn` level (`None` = disabled).
    pub slow_op: Option<Duration>,
    /// Per-verb latency objectives for the SLO tracker (empty = none).
    pub slo: Vec<SloTarget>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_secs(60),
            queue_cap: 128,
            max_conns: 256,
            max_line_bytes: 64 << 10,
            request_budget: 0,
            recover_backoff: Duration::from_millis(50),
            recover_backoff_cap: Duration::from_secs(5),
            slow_op: None,
            slo: Vec::new(),
        }
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown`] (or send `SHUTDOWN` over the wire and
/// [`Server::join`]).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: JoinHandle<DrainSummary>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the accept loop, the ingest thread, and the recovery
    /// supervisor.
    pub fn start(engine: Arc<Engine>, addr: &str, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<QueuedBatch>(opts.queue_cap.max(1));
        let server_metrics = Arc::new(ServerMetrics::register(&engine, &opts.slo));
        let ingest_engine = Arc::clone(&engine);
        let dropped = server_metrics.batches_dropped.clone();
        let ingest = std::thread::spawn(move || ingest_loop(ingest_engine, rx, dropped));

        let supervisor_engine = Arc::clone(&engine);
        let supervisor_stop = Arc::clone(&stop);
        let supervisor_opts = opts.clone();
        let supervisor = std::thread::spawn(move || {
            recovery_supervisor(supervisor_engine, supervisor_stop, supervisor_opts);
        });

        let live_conns = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(mut stream) = incoming else { continue };
                if live_conns.load(Ordering::Relaxed) >= opts.max_conns.max(1) {
                    // Shed at the cap: a one-line refusal, then close.
                    server_metrics.shed_busy.inc();
                    let _ = writeln!(stream, "ERR BUSY too many connections");
                    continue;
                }
                engine.metrics().connections.inc();
                engine.metrics().active_connections.add(1.0);
                live_conns.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&server_metrics);
                let tx = tx.clone();
                let stop = Arc::clone(&accept_stop);
                let live = Arc::clone(&live_conns);
                let conn_opts = opts.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &engine, &metrics, &tx, &stop, &conn_opts);
                    engine.metrics().active_connections.add(-1.0);
                    live.fetch_sub(1, Ordering::Relaxed);
                }));
                conns.retain(|h| !h.is_finished());
            }
            // Stop accepting, wait for in-flight connections, then let the
            // ingest thread drain the queue (dropping tx closes it).
            for h in conns {
                let _ = h.join();
            }
            drop(tx);
            let batches_flushed = ingest.join().unwrap_or(0);
            let _ = supervisor.join();
            // Final epoch + compaction so a clean restart replays nothing.
            engine.publish();
            let _ = engine.compact();
            let summary = DrainSummary {
                connections: engine.metrics().connections.get(),
                batches_flushed,
                ops_applied: engine.metrics().ops_applied.get(),
            };
            tkc_obs::info!(
                "server drained: {} connections closed, {} batches flushed, {} ops applied",
                summary.connections,
                summary.batches_flushed,
                summary.ops_applied
            );
            summary
        });
        Ok(Server {
            addr: local,
            stop,
            accept_handle,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and waits for every thread: in-flight
    /// connections finish, the ingest queue drains, and the engine is
    /// compacted. Returns the final drain accounting.
    pub fn shutdown(self) -> DrainSummary {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_handle.join().unwrap_or_default()
    }

    /// Waits until some client sends `SHUTDOWN` (the accept loop exits on
    /// its own), then finishes the same graceful sequence. Returns the
    /// final drain accounting.
    pub fn join(self) -> DrainSummary {
        self.accept_handle.join().unwrap_or_default()
    }
}

/// Watches the engine state and drives [`Engine::recover`] whenever it
/// drops to read-only: capped exponential backoff with deterministic
/// jitter between attempts, resetting after each success.
fn recovery_supervisor(engine: Arc<Engine>, stop: Arc<AtomicBool>, opts: ServeOptions) {
    let mut rng = tkc_obs::process_nanos() | 1;
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::Relaxed) {
        if engine.state() != EngineState::ReadOnly {
            attempt = 0;
            nap(&stop, Duration::from_millis(10));
            continue;
        }
        let base = opts.recover_backoff.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(10));
        let capped = exp.min(opts.recover_backoff_cap.max(base));
        // Up to +25% jitter so restarting replicas don't retry in phase.
        // analyze: allow(panic-surface): divisor is `x / 4 + 1`, structurally nonzero
        let jitter_ns = tkc_faults::xorshift(&mut rng) % (capped.as_nanos() as u64 / 4 + 1);
        let backoff = capped + Duration::from_nanos(jitter_ns);
        engine
            .metrics()
            .recovery_backoff_seconds
            .record_duration(backoff);
        nap(&stop, backoff);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match engine.recover() {
            Ok(()) => attempt = 0,
            Err(e) => {
                attempt = attempt.saturating_add(1);
                tkc_obs::warn!("recovery attempt {attempt} failed: {e}");
            }
        }
    }
}

/// Sleeps `total` in small slices, returning early when `stop` is set.
fn nap(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::Relaxed) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// Applies queued batches until every sender is gone (shutdown drains the
/// queue by construction: senders are dropped first, then this returns).
/// Returns the number of batches applied.
///
/// A failing apply (degraded engine) drops that batch — it was only ever
/// acknowledged as *queued* — and keeps consuming, so the queue never
/// wedges and ingestion resumes by itself once the engine recovers.
fn ingest_loop(engine: Arc<Engine>, rx: Receiver<QueuedBatch>, dropped: Counter) -> u64 {
    let mut applied = 0u64;
    while let Ok((batch, ctx)) = rx.recv() {
        engine.metrics().batch_queue_depth.add(-1.0);
        // Continue the enqueuing request's trace on this thread; the
        // engine's apply spans become children of `engine.ingest`.
        let _ingest_span = SpanGuard::follow("engine.ingest", ctx);
        match engine.apply(&batch) {
            Ok(_) => {
                applied += 1;
                engine.metrics().batches_applied.inc();
            }
            Err(e) => {
                dropped.inc();
                tkc_obs::warn!("queued batch of {} ops dropped: {e}", batch.len());
            }
        }
    }
    applied
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// Clean end of stream.
    Eof,
    /// The line exceeded the limit (prefix consumed; caller closes).
    TooLong,
    /// The read timeout expired.
    TimedOut,
}

/// Reads one `\n`-terminated line into `buf` without ever buffering more
/// than `max` bytes of it — the slow-loris/oversized-line guard. Raw
/// bytes, not UTF-8: the caller decodes lossily.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(LineRead::Eof);
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                reader.consume(pos + 1);
                return Ok(LineRead::TooLong);
            }
            // analyze: allow(panic-surface): `pos` comes from position() on this chunk
            #[allow(clippy::indexing_slicing)]
            buf.extend_from_slice(&chunk[..pos]);
            reader.consume(pos + 1);
            return Ok(LineRead::Line);
        }
        let take = chunk.len();
        if buf.len() + take > max {
            reader.consume(take);
            return Ok(LineRead::TooLong);
        }
        buf.extend_from_slice(chunk);
        reader.consume(take);
    }
}

/// Serves one connection until QUIT/EOF/timeout/shutdown/limit.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    metrics: &ServerMetrics,
    tx: &SyncSender<QueuedBatch>,
    stop: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    // Request/response ping-pong over small writes: without TCP_NODELAY
    // the Nagle / delayed-ACK interaction stalls replies for tens of
    // milliseconds at the tail (bench_serve's client-vs-server p99
    // cross-check catches exactly this).
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut buf = Vec::new();
    let mut served = 0u64;
    // Root of this connection's span tree (inert unless tracing is on);
    // recorded with the connection's total lifetime when it closes.
    let _conn_span = SpanGuard::root("conn");
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match read_bounded_line(&mut reader, &mut buf, opts.max_line_bytes)? {
            LineRead::Line => {}
            LineRead::Eof => return Ok(()),
            LineRead::TimedOut => {
                // Idle past the read timeout: reap the connection, and
                // make the reap observable instead of silent.
                metrics.conn_timeouts.inc();
                tkc_obs::warn!(
                    "connection idle past {:?}: reaped (peer {})",
                    opts.read_timeout,
                    out.peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "unknown".to_string())
                );
                let _ = writeln!(out, "ERR read timeout");
                return Ok(());
            }
            LineRead::TooLong => {
                metrics.shed_line.inc();
                let _ = writeln!(out, "ERR line exceeds {} bytes", opts.max_line_bytes);
                return Ok(());
            }
        }
        let text = String::from_utf8_lossy(&buf);
        let line = text.trim();
        let parsed = {
            let _parse_span = SpanGuard::child("parse");
            parse_command(line)
        };
        let Some(parsed) = parsed else {
            continue; // blank line
        };
        if opts.request_budget > 0 {
            served += 1;
            if served > opts.request_budget {
                metrics.shed_budget.inc();
                let _ = writeln!(
                    out,
                    "ERR request budget of {} exhausted",
                    opts.request_budget
                );
                return Ok(());
            }
        }
        // Per-verb accounting keys off the raw first token so malformed
        // variants of a known verb still land in its family.
        let verb = line
            .split_whitespace()
            .next()
            .map(|t| {
                if t.len() <= 16 {
                    t.to_ascii_uppercase()
                } else {
                    String::new()
                }
            })
            .unwrap_or_default();
        let per_cmd = metrics.for_verb(&verb);
        per_cmd.requests.inc();
        let verb_static = static_verb(&verb);
        let mut req_span = SpanGuard::child(verb_static);
        req_span.attr("bytes", line.len() as u64);
        let trace_id = req_span.trace_id();
        let start = Instant::now();
        let flow = match parsed {
            Ok(cmd) => respond(cmd, engine, metrics, tx, &mut reader, &mut out, opts)?,
            Err(e) => {
                writeln!(out, "ERR {e}")?;
                Flow::Continue
            }
        };
        let elapsed = start.elapsed();
        // Finish the request span before rendering its tree or recording
        // latency so the slow-op log sees the complete request.
        drop(req_span);
        per_cmd.seconds.record_duration(elapsed);
        metrics.slo.record(verb_static, elapsed);
        if let Some(threshold) = opts.slow_op {
            if tkc_obs::span::maybe_log_slow_op(verb_static, elapsed, threshold, trace_id) {
                metrics.slow_ops.inc();
            }
        }
        match flow {
            Flow::Continue => {}
            Flow::Quit => return Ok(()),
            Flow::Shutdown => {
                stop.store(true, Ordering::Relaxed);
                // Unblock the accept loop (self-connect is best-effort).
                if let Ok(addr) = out.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

enum Flow {
    Continue,
    Quit,
    Shutdown,
}

/// Maps an engine failure to its structured wire reply.
fn write_engine_err(out: &mut TcpStream, e: &EngineError) -> std::io::Result<()> {
    match e {
        EngineError::Degraded { reason } => writeln!(out, "ERR DEGRADED {reason}"),
        // The payload is the primary's address alone so a client can
        // redirect itself without parsing prose.
        EngineError::Readonly { primary } => writeln!(out, "ERR READONLY {primary}"),
        other => writeln!(out, "ERR {} {other}", other.wire_token()),
    }
}

/// Answers a single parsed command.
#[allow(clippy::too_many_arguments)]
fn respond(
    cmd: Command,
    engine: &Engine,
    metrics: &ServerMetrics,
    tx: &SyncSender<QueuedBatch>,
    reader: &mut BufReader<TcpStream>,
    out: &mut TcpStream,
    opts: &ServeOptions,
) -> std::io::Result<Flow> {
    let em = engine.metrics();
    let count_query = || {
        em.queries_served.inc();
    };
    match cmd {
        Command::Kappa(u, v) => {
            count_query();
            match engine.snapshot().kappa(u, v) {
                Some(k) => writeln!(out, "OK {k}")?,
                None => writeln!(out, "ERR no such edge")?,
            }
        }
        Command::MaxK => {
            count_query();
            writeln!(out, "OK {}", engine.snapshot().max_kappa())?;
        }
        Command::Truss(k) => {
            count_query();
            let t = engine.snapshot().truss(k);
            writeln!(
                out,
                "OK cores={} edges={} vertices={}",
                t.cores, t.edges, t.vertices
            )?;
        }
        Command::Insert(u, v) => match engine.insert(u, v) {
            Ok(Some(k)) => writeln!(out, "OK kappa={k}")?,
            Ok(None) => writeln!(out, "OK noop")?,
            Err(e) => write_engine_err(out, &e)?,
        },
        Command::Remove(u, v) => match engine.remove(u, v) {
            Ok(true) => writeln!(out, "OK removed")?,
            Ok(false) => writeln!(out, "OK noop")?,
            Err(e) => write_engine_err(out, &e)?,
        },
        Command::Batch(n) => {
            let mut ops = Vec::with_capacity((n as usize).min(4096));
            let mut body = Vec::new();
            for i in 0..n {
                match read_bounded_line(reader, &mut body, opts.max_line_bytes)? {
                    LineRead::Line => {}
                    LineRead::Eof | LineRead::TimedOut => {
                        writeln!(out, "ERR batch cut short at op {i}")?;
                        return Ok(Flow::Quit);
                    }
                    LineRead::TooLong => {
                        metrics.shed_line.inc();
                        writeln!(out, "ERR line exceeds {} bytes", opts.max_line_bytes)?;
                        return Ok(Flow::Quit);
                    }
                }
                let text = String::from_utf8_lossy(&body);
                match parse_batch_line(text.trim()) {
                    Some(op) => ops.push(op),
                    None => {
                        writeln!(out, "ERR batch op {i}: expected '+ u v' or '- u v'")?;
                        return Ok(Flow::Continue);
                    }
                }
            }
            // Bounded queue: blocks when full — backpressure on the
            // client instead of unbounded buffering in the server. The
            // try_send probe only adds accounting; semantics match the
            // old unconditional blocking send. The request's span context
            // rides along so the ingest thread links back to this trace.
            let ctx = tkc_obs::span::current();
            let sent = match tx.try_send((ops, ctx)) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(batch)) => {
                    em.backpressure_waits.inc();
                    let _queue_span = SpanGuard::child("queue.wait");
                    tx.send(batch).map_err(|_| ())
                }
                Err(TrySendError::Disconnected(_)) => Err(()),
            };
            match sent {
                Ok(()) => {
                    em.batches_enqueued.inc();
                    em.batch_queue_depth.add(1.0);
                    writeln!(out, "OK queued {n}")?;
                }
                Err(()) => writeln!(out, "ERR ingest stopped")?,
            }
        }
        Command::Epoch => {
            count_query();
            writeln!(out, "OK {}", engine.publish())?;
        }
        Command::Stats => {
            count_query();
            write!(out, "OK\n{}.\n", engine.metrics_text())?;
        }
        Command::Metrics => {
            count_query();
            write!(out, "OK\n{}.\n", engine.prometheus_text())?;
        }
        Command::Slo => {
            count_query();
            write!(out, "OK\n{}.\n", metrics.slo.render_lines())?;
        }
        Command::Trace(n) => {
            count_query();
            write!(
                out,
                "OK\n{}.\n",
                TraceBuffer::global().tail_jsonl(n as usize)
            )?;
        }
        Command::Health => {
            count_query();
            let state = engine.state();
            match state {
                EngineState::Follower | EngineState::Diverged => {
                    match engine.replication_health() {
                        Some(detail) => writeln!(out, "OK {state} {detail}")?,
                        None => writeln!(out, "OK {state}")?,
                    }
                }
                _ => match engine.degraded_reason() {
                    None => writeln!(out, "OK {state}")?,
                    Some(reason) => writeln!(out, "OK {state} {reason}")?,
                },
            }
        }
        Command::Promote => match engine.promote() {
            Ok(term) => writeln!(out, "OK promoted term={term}")?,
            Err(e) => write_engine_err(out, &e)?,
        },
        Command::Ping => writeln!(out, "OK pong")?,
        Command::Quit => {
            writeln!(out, "OK bye")?;
            return Ok(Flow::Quit);
        }
        Command::Shutdown => {
            writeln!(out, "OK shutting down")?;
            return Ok(Flow::Shutdown);
        }
    }
    Ok(Flow::Continue)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use crate::engine::EngineConfig;
    use tkc_faults::{Failpoint, FaultKind, FaultPlan, FaultSite};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_server_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                stream,
            }
        }

        fn send(&mut self, cmd: &str) -> String {
            writeln!(self.stream, "{cmd}").unwrap();
            self.recv()
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn read_until_dot(&mut self) -> Vec<String> {
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                let t = line.trim_end();
                if t == "." {
                    return lines;
                }
                lines.push(t.to_string());
            }
        }
    }

    fn test_opts() -> ServeOptions {
        ServeOptions {
            read_timeout: Duration::from_secs(2),
            queue_cap: 4,
            ..ServeOptions::default()
        }
    }

    fn start_with(
        name: &str,
        configure: impl FnOnce(&mut EngineConfig),
        opts: ServeOptions,
    ) -> (Server, SocketAddr, Arc<Engine>) {
        let mut config = EngineConfig {
            fsync: false,
            epoch_ops: 0,
            compact_bytes: 0,
            ..EngineConfig::new(temp_dir(name))
        };
        configure(&mut config);
        let engine = Arc::new(Engine::open(config).unwrap());
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", opts).unwrap();
        let addr = server.local_addr();
        (server, addr, engine)
    }

    fn start_server(name: &str) -> (Server, SocketAddr) {
        let (server, addr, _) = start_with(name, |_| {}, test_opts());
        (server, addr)
    }

    #[test]
    fn protocol_end_to_end_over_loopback() {
        let (server, addr) = start_server("proto");
        let mut c = Client::connect(addr);
        assert_eq!(c.send("PING"), "OK pong");
        // Build K4 on 0..4 synchronously.
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)] {
            assert!(c.send(&format!("INSERT {u} {v}")).starts_with("OK"));
        }
        assert_eq!(c.send("INSERT 2 3"), "OK kappa=2");
        assert_eq!(c.send("INSERT 2 3"), "OK noop");
        // Reads see the snapshot, which is stale until EPOCH.
        assert_eq!(c.send("KAPPA 2 3"), "ERR no such edge");
        assert_eq!(c.send("EPOCH"), "OK 2");
        assert_eq!(c.send("KAPPA 2 3"), "OK 2");
        assert_eq!(c.send("MAXK"), "OK 2");
        assert_eq!(c.send("TRUSS 2"), "OK cores=1 edges=6 vertices=4");
        assert_eq!(c.send("REMOVE 0 1"), "OK removed");
        assert_eq!(c.send("REMOVE 0 1"), "OK noop");
        assert_eq!(c.send("HEALTH"), "OK serving");
        // Malformed input errors without dropping the connection.
        assert!(c.send("KAPPA one two").starts_with("ERR"));
        assert!(c.send("FROBNICATE").starts_with("ERR"));
        assert_eq!(c.send("QUIT"), "OK bye");

        let mut c2 = Client::connect(addr);
        assert_eq!(c2.send("SHUTDOWN"), "OK shutting down");
        server.join();
    }

    #[test]
    fn batch_path_applies_through_bounded_queue() {
        let (server, addr) = start_server("batch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 3\n+ 0 1\n+ 1 2\n+ 2 0").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK queued 3");
        // Async path: poll STATS until the triangle's ops are applied.
        for _ in 0..200 {
            assert_eq!(c.send("STATS"), "OK");
            let stats = c.read_until_dot();
            if stats.iter().any(|l| l == "ops_applied 3") {
                assert_eq!(c.send("EPOCH"), "OK 2");
                assert_eq!(c.send("KAPPA 0 1"), "OK 1");
                server.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("batch never applied");
    }

    #[test]
    fn slo_trace_verbs_and_slow_op_log_end_to_end() {
        let _guard = crate::global_trace_test_guard();
        let trace = TraceBuffer::global();
        trace.clear();
        trace.set_enabled(true);
        let opts = ServeOptions {
            slow_op: Some(Duration::from_nanos(0)),
            slo: tkc_obs::slo::parse_slo_spec("INSERT=500,KAPPA=500").unwrap(),
            ..test_opts()
        };
        let (server, addr, _engine) = start_with("slo_trace", |_| {}, opts);
        let mut c = Client::connect(addr);
        assert_eq!(c.send("INSERT 0 1"), "OK kappa=0");
        assert_eq!(c.send("SLO"), "OK");
        let lines = c.read_until_dot();
        assert!(
            lines.iter().any(|l| l.starts_with("INSERT target_ms=500")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("status=OK")), "{lines:?}");
        assert_eq!(c.send("TRACE 100"), "OK");
        let jsonl = c.read_until_dot();
        assert!(
            jsonl
                .iter()
                .any(|l| l.contains("\"kind\":\"span\"") && l.contains("\"name\":\"INSERT\"")),
            "{jsonl:?}"
        );
        assert!(
            jsonl
                .iter()
                .any(|l| l.contains("\"name\":\"engine.apply\"")),
            "{jsonl:?}"
        );
        assert_eq!(c.send("METRICS"), "OK");
        let text = c.read_until_dot().join("\n");
        assert!(text.contains("tkc_slo_burn_rate{cmd=\"INSERT\"}"), "{text}");
        let slow = text
            .lines()
            .find_map(|l| l.strip_prefix("tkc_server_slow_ops_total "))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap();
        assert!(slow >= 1, "every request is over the 0ns threshold");
        server.shutdown();
        trace.set_enabled(false);
        trace.clear();
    }

    #[test]
    fn metrics_command_returns_prometheus_text() {
        let (server, addr) = start_server("metrics_cmd");
        let mut c = Client::connect(addr);
        assert_eq!(c.send("INSERT 0 1"), "OK kappa=0");
        assert_eq!(c.send("METRICS"), "OK");
        let lines = c.read_until_dot();
        let text = lines.join("\n");
        for series in [
            "tkc_engine_ops_applied_total 1",
            "tkc_server_requests_total{cmd=\"INSERT\"} 1",
            "tkc_server_requests_total{cmd=\"METRICS\"} 1",
            "tkc_server_command_seconds_count{cmd=\"INSERT\"} 1",
            "tkc_server_active_connections 1",
            "tkc_engine_state{state=\"serving\"} 1",
            "tkc_engine_state{state=\"read_only\"} 0",
            "tkc_conn_timeouts_total 0",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
        let summary = server.shutdown();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.ops_applied, 1);
    }

    #[test]
    fn bad_batch_lines_are_rejected() {
        let (server, addr) = start_server("badbatch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 1\n* 0 1").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR batch op 0"));
        assert_eq!(c.send("PING"), "OK pong"); // connection survives
        server.shutdown();
    }

    #[test]
    fn stalled_client_is_reaped_and_counted() {
        let (server, addr, engine) = start_with(
            "stalled",
            |_| {},
            ServeOptions {
                read_timeout: Duration::from_millis(100),
                ..test_opts()
            },
        );
        let mut c = Client::connect(addr);
        // Say nothing. The reaper should close us with an ERR line.
        assert_eq!(c.recv(), "ERR read timeout");
        // And the reap is counted, not silent.
        let text = engine.prometheus_text();
        assert!(
            text.contains("tkc_conn_timeouts_total 1"),
            "timeout not counted in:\n{text}"
        );
        server.shutdown();
    }

    #[test]
    fn oversized_lines_are_rejected_with_bounded_memory() {
        let (server, addr, engine) = start_with(
            "longline",
            |_| {},
            ServeOptions {
                max_line_bytes: 256,
                ..test_opts()
            },
        );
        let mut c = Client::connect(addr);
        let big = "PING ".to_string() + &"x".repeat(4096);
        writeln!(c.stream, "{big}").unwrap();
        assert_eq!(c.recv(), "ERR line exceeds 256 bytes");
        assert!(engine
            .prometheus_text()
            .contains("tkc_server_shed_total{reason=\"line_too_long\"} 1"));
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_err_busy() {
        let (server, addr, engine) = start_with(
            "cap",
            |_| {},
            ServeOptions {
                max_conns: 1,
                ..test_opts()
            },
        );
        let mut first = Client::connect(addr);
        assert_eq!(first.send("PING"), "OK pong"); // first conn is live
        let mut second = Client::connect(addr);
        assert_eq!(second.recv(), "ERR BUSY too many connections");
        assert!(engine
            .prometheus_text()
            .contains("tkc_server_shed_total{reason=\"busy\"} 1"));
        assert_eq!(first.send("QUIT"), "OK bye");
        server.shutdown();
    }

    #[test]
    fn request_budget_closes_chatty_connections() {
        let (server, addr, _engine) = start_with(
            "budget",
            |_| {},
            ServeOptions {
                request_budget: 3,
                ..test_opts()
            },
        );
        let mut c = Client::connect(addr);
        for _ in 0..3 {
            assert_eq!(c.send("PING"), "OK pong");
        }
        assert_eq!(c.send("PING"), "ERR request budget of 3 exhausted");
        server.shutdown();
    }

    #[test]
    fn degraded_engine_serves_reads_and_recovers() {
        let plan = Arc::new(FaultPlan::with_points(
            vec![Failpoint {
                // Append 1 is the WAL magic header; appends 2-3 are the
                // first two INSERTs. Fail the third insert (append 4).
                site: FaultSite::Append,
                kind: FaultKind::Enospc,
                trigger: 4,
                count: 1,
            }],
            11,
        ));
        let inject = Arc::clone(&plan);
        let (server, addr, engine) = start_with(
            "degraded",
            move |config| config.fault_plan = Some(inject),
            ServeOptions {
                recover_backoff: Duration::from_millis(200),
                ..test_opts()
            },
        );
        let mut c = Client::connect(addr);
        assert_eq!(c.send("INSERT 0 1"), "OK kappa=0");
        assert_eq!(c.send("INSERT 1 2"), "OK kappa=0");
        assert_eq!(c.send("EPOCH"), "OK 2");
        // The injected ENOSPC drops the engine to read-only.
        let reply = c.send("INSERT 2 0");
        assert!(reply.starts_with("ERR WAL"), "got {reply}");
        assert!(c.send("HEALTH").starts_with("OK read_only"));
        // Reads keep serving the last epoch while degraded.
        assert_eq!(c.send("KAPPA 0 1"), "OK 0");
        let next = c.send("INSERT 2 0");
        assert!(
            next.starts_with("ERR DEGRADED") || next.starts_with("OK"),
            "got {next}"
        );
        assert!(plan.injected_total() >= 1);
        // The supervisor recovers the engine; writes come back.
        let mut recovered = false;
        for _ in 0..100 {
            if c.send("HEALTH") == "OK serving" {
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(recovered, "engine never recovered");
        assert!(c.send("INSERT 2 0").starts_with("OK"));
        let text = engine.prometheus_text();
        assert!(text.contains("tkc_recoveries_total 1"), "in:\n{text}");
        assert!(text.contains("tkc_engine_degraded_total 1"), "in:\n{text}");
        assert!(text.contains("tkc_faults_injected_total 1"), "in:\n{text}");
        server.shutdown();
    }

    #[test]
    fn vertex_cap_rejects_hostile_inserts_without_degrading() {
        let (server, addr, _engine) =
            start_with("vcap", |config| config.max_vertices = 1 << 10, test_opts());
        let mut c = Client::connect(addr);
        let reply = c.send("INSERT 4294967295 0");
        assert!(reply.starts_with("ERR INVALID"), "got {reply}");
        // The engine is still healthy and writable.
        assert_eq!(c.send("HEALTH"), "OK serving");
        assert_eq!(c.send("INSERT 0 1"), "OK kappa=0");
        server.shutdown();
    }

    #[test]
    fn promote_on_a_standalone_node_is_invalid() {
        let (server, addr) = start_server("promote_standalone");
        let mut c = Client::connect(addr);
        let reply = c.send("PROMOTE");
        assert!(
            reply.starts_with("ERR INVALID") && reply.contains("not a follower"),
            "got {reply}"
        );
        server.shutdown();
    }

    #[test]
    fn health_and_slo_answer_in_every_degraded_state() {
        let opts = ServeOptions {
            slo: tkc_obs::slo::parse_slo_spec("HEALTH=500").unwrap(),
            ..test_opts()
        };
        let (server, addr, engine) = start_with("health_states", |_| {}, opts);
        let mut c = Client::connect(addr);
        // Follower / Diverged without an attached replication subsystem
        // still render their state (no lag detail to show).
        for (state, expect) in [
            (EngineState::Follower, "OK follower"),
            (EngineState::Diverged, "OK diverged"),
            (EngineState::Recovering, "OK recovering"),
            (EngineState::Serving, "OK serving"),
        ] {
            engine.set_state(state);
            assert_eq!(c.send("HEALTH"), expect);
            assert_eq!(c.send("SLO"), "OK");
            let lines = c.read_until_dot();
            assert!(
                lines.iter().any(|l| l.starts_with("HEALTH target_ms=500")),
                "{lines:?}"
            );
        }
        // Follower-role writes are redirected, not degraded.
        engine.set_role(crate::repl::Role::Follower);
        engine.set_state(EngineState::Follower);
        let reply = c.send("INSERT 0 1");
        assert_eq!(reply, "ERR READONLY unknown");
        engine.set_role(crate::repl::Role::Standalone);
        engine.set_state(EngineState::Serving);
        server.shutdown();
    }

    /// Boots a (server, replication) pair sharing one engine.
    fn start_repl_node(
        name: &str,
        repl_addr: Option<String>,
        follow: Option<SocketAddr>,
    ) -> (Server, crate::repl::ReplServer, SocketAddr, Arc<Engine>) {
        let (server, addr, engine) = start_with(name, |_| {}, test_opts());
        let repl = crate::repl::start(
            &engine,
            crate::repl::ReplOptions {
                repl_addr,
                follow: follow.map(|a| a.to_string()),
                stamp_interval_ops: 1,
                ..Default::default()
            },
        )
        .unwrap();
        (server, repl, addr, engine)
    }

    fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
        for _ in 0..400 {
            if done() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn two_node_replication_promote_and_fencing_end_to_end() {
        let (p_server, p_repl, p_addr, p_engine) =
            start_repl_node("repl_primary", Some("127.0.0.1:0".to_string()), None);
        let repl_addr = p_repl.repl_addr().unwrap();
        let (f_server, f_repl, f_addr, f_engine) =
            start_repl_node("repl_follower", None, Some(repl_addr));
        assert_eq!(p_engine.role(), crate::repl::Role::Primary);
        assert_eq!(f_engine.role(), crate::repl::Role::Follower);

        // Write a triangle to the primary; the follower converges.
        let mut p = Client::connect(p_addr);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            assert!(p.send(&format!("INSERT {u} {v}")).starts_with("OK"));
        }
        wait_until("follower catch-up", || f_engine.applied_seq() == 3);
        let mut f = Client::connect(f_addr);
        assert_eq!(f.send("EPOCH"), "OK 2");
        assert_eq!(f.send("KAPPA 0 1"), "OK 1");

        // Follower writes are redirected to the primary's repl address.
        assert_eq!(f.send("INSERT 5 6"), format!("ERR READONLY {repl_addr}"));
        let health = f.send("HEALTH");
        assert!(
            health.starts_with(&format!("OK follower following {repl_addr}"))
                && health.contains("lag_seq=0"),
            "got {health}"
        );
        let stats = {
            assert_eq!(f.send("STATS"), "OK");
            f.read_until_dot()
        };
        assert!(stats.iter().any(|l| l == "repl_ops_applied 3"), "{stats:?}");
        assert!(stats.iter().any(|l| l == "role follower"), "{stats:?}");

        // Promote the follower: it becomes writable at term 1 and the
        // old primary is fenced read-only.
        assert_eq!(f.send("PROMOTE"), "OK promoted term=1");
        assert!(
            f.send("INSERT 5 6").starts_with("OK"),
            "promoted node writes"
        );
        wait_until("old primary fenced", || {
            p_engine.state() == EngineState::ReadOnly
        });
        let refused = p.send("INSERT 7 8");
        assert!(refused.starts_with("ERR DEGRADED"), "got {refused}");
        assert_eq!(p_engine.term(), 1);
        // The fence is sticky: the recovery supervisor must not
        // resurrect the superseded primary.
        p_engine.recover().unwrap();
        assert_eq!(p_engine.state(), EngineState::ReadOnly);

        f_repl.shutdown();
        p_repl.shutdown();
        f_server.shutdown();
        p_server.shutdown();
    }

    #[test]
    fn follower_bootstraps_when_primary_log_is_compacted_past_it() {
        // Prime the primary with history *before* replication starts, so
        // the hub's base is already past a fresh follower's seq 0 and
        // the only way to converge is a packed-store bootstrap.
        let (p_server, p_addr, p_engine) = start_with("repl_boot_primary", |_| {}, test_opts());
        let mut p = Client::connect(p_addr);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)] {
            assert!(p.send(&format!("INSERT {u} {v}")).starts_with("OK"));
        }
        assert_eq!(p_engine.applied_seq(), 5);
        let p_repl = crate::repl::start(
            &p_engine,
            crate::repl::ReplOptions {
                repl_addr: Some("127.0.0.1:0".to_string()),
                stamp_interval_ops: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let repl_addr = p_repl.repl_addr().unwrap();

        let (f_server, f_repl, f_addr, f_engine) =
            start_repl_node("repl_boot_follower", None, Some(repl_addr));
        wait_until("bootstrap catch-up", || f_engine.applied_seq() == 5);
        let mut f = Client::connect(f_addr);
        let stats = {
            assert_eq!(f.send("STATS"), "OK");
            f.read_until_dot()
        };
        assert!(stats.iter().any(|l| l == "repl_bootstraps 1"), "{stats:?}");
        // Bootstrap already published an epoch; a fresh one still works.
        assert!(f.send("EPOCH").starts_with("OK"));
        assert_eq!(f.send("KAPPA 0 1"), "OK 1");
        // Live tailing continues after the bootstrap.
        assert!(p.send("INSERT 2 3").starts_with("OK"));
        wait_until("post-bootstrap tail", || f_engine.applied_seq() == 6);
        assert_eq!(
            f_engine.kappa_stamp_now(),
            p_engine.kappa_stamp_now(),
            "replicas diverged"
        );

        f_repl.shutdown();
        p_repl.shutdown();
        f_server.shutdown();
        p_server.shutdown();
    }
}
