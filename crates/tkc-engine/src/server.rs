//! The `tkc serve` TCP front-end: a threaded listener speaking a
//! line-oriented text protocol over the engine.
//!
//! ## Wire protocol
//!
//! One command per `\n`-terminated line; every response starts with `OK`
//! or `ERR`. Multi-line responses (`STATS`) end with a lone `.`.
//!
//! | command        | response                                | path   |
//! |----------------|-----------------------------------------|--------|
//! | `KAPPA u v`    | `OK <κ>` / `ERR no such edge`           | snapshot |
//! | `MAXK`         | `OK <max κ>`                            | snapshot |
//! | `TRUSS k`      | `OK cores=<c> edges=<m> vertices=<n>`   | snapshot |
//! | `INSERT u v`   | `OK kappa=<κ>` / `OK noop`              | durable, read-your-write |
//! | `REMOVE u v`   | `OK removed` / `OK noop`                | durable |
//! | `BATCH n` + n op lines (`+ u v` / `- u v`) | `OK queued <n>` | bounded queue |
//! | `EPOCH`        | `OK <epoch>` (forces publication)       | writer |
//! | `STATS`        | `OK`, `key value` lines, `.`            | counters |
//! | `METRICS`      | `OK`, Prometheus text lines, `.`        | counters |
//! | `PING`         | `OK pong`                               | — |
//! | `SHUTDOWN`     | `OK shutting down` (graceful stop)      | — |
//! | `QUIT`         | `OK bye` (closes this connection)       | — |
//!
//! Reads (`KAPPA`/`MAXK`/`TRUSS`) are answered from the current epoch
//! snapshot and never block on ingest. `INSERT`/`REMOVE` are applied
//! synchronously (WAL-durable when the `OK` is on the wire) and `INSERT`
//! reports the edge's κ immediately. `BATCH` trades that read-your-write
//! for throughput: ops go into a **bounded** queue consumed by a single
//! ingest thread, and the `send` blocks when the queue is full — clients
//! feel backpressure instead of the server buffering unboundedly. Queued
//! batches are acknowledged as *queued*, not yet durable; graceful
//! shutdown drains the queue before the final compaction.
//!
//! Every connection has a read timeout: a half-open or stalled client is
//! dropped instead of pinning its thread forever.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tkc_obs::{Counter, Histogram};

use crate::engine::Engine;
use crate::wal::WalOp;

/// Per-command request counter + latency histogram, labeled
/// `{cmd="<VERB>"}` on the engine's registry.
#[derive(Debug, Clone)]
struct CommandMetrics {
    requests: Counter,
    seconds: Histogram,
}

/// The wire verbs that get their own `{cmd=...}` series; anything else
/// lands in `OTHER`.
const VERBS: [&str; 12] = [
    "KAPPA", "MAXK", "TRUSS", "INSERT", "REMOVE", "BATCH", "EPOCH", "STATS", "METRICS", "PING",
    "QUIT", "SHUTDOWN",
];

/// Per-verb serving metrics, shared by every connection thread.
#[derive(Debug)]
struct ServerMetrics {
    by_verb: Vec<(&'static str, CommandMetrics)>,
    other: CommandMetrics,
}

impl ServerMetrics {
    fn register(engine: &Engine) -> ServerMetrics {
        let reg = engine.registry();
        let family = |cmd: &str| CommandMetrics {
            requests: reg.counter_with(
                "tkc_server_requests_total",
                "Commands handled, by verb",
                &[("cmd", cmd)],
            ),
            seconds: reg.histogram_with(
                "tkc_server_command_seconds",
                "Command handling latency, by verb",
                1e-9,
                &[("cmd", cmd)],
            ),
        };
        ServerMetrics {
            by_verb: VERBS.iter().map(|&v| (v, family(v))).collect(),
            other: family("OTHER"),
        }
    }

    fn for_verb(&self, verb: &str) -> &CommandMetrics {
        self.by_verb
            .iter()
            .find(|(name, _)| *name == verb)
            .map(|(_, m)| m)
            .unwrap_or(&self.other)
    }
}

/// Final accounting of a graceful shutdown, logged at info level and
/// returned by [`Server::shutdown`] / [`Server::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime (all closed by the
    /// time the summary exists).
    pub connections: u64,
    /// Batches drained from the ingest queue and applied.
    pub batches_flushed: u64,
    /// Total mutation ops applied by the engine.
    pub ops_applied: u64,
}

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-connection read timeout; a connection idle longer is closed.
    pub read_timeout: Duration,
    /// Capacity (in batches) of the bounded ingest queue.
    pub queue_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_secs(60),
            queue_cap: 128,
        }
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown`] (or send `SHUTDOWN` over the wire and
/// [`Server::join`]).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: JoinHandle<DrainSummary>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the accept loop and the ingest thread.
    pub fn start(engine: Arc<Engine>, addr: &str, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<Vec<WalOp>>(opts.queue_cap.max(1));
        let server_metrics = Arc::new(ServerMetrics::register(&engine));
        let ingest_engine = Arc::clone(&engine);
        let ingest = std::thread::spawn(move || ingest_loop(ingest_engine, rx));

        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                engine.metrics().connections.inc();
                engine.metrics().active_connections.add(1.0);
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&server_metrics);
                let tx = tx.clone();
                let stop = Arc::clone(&accept_stop);
                let timeout = opts.read_timeout;
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &engine, &metrics, &tx, &stop, timeout);
                    engine.metrics().active_connections.add(-1.0);
                }));
                conns.retain(|h| !h.is_finished());
            }
            // Stop accepting, wait for in-flight connections, then let the
            // ingest thread drain the queue (dropping tx closes it).
            for h in conns {
                let _ = h.join();
            }
            drop(tx);
            let batches_flushed = ingest.join().unwrap_or(0);
            // Final epoch + compaction so a clean restart replays nothing.
            engine.publish();
            let _ = engine.compact();
            let summary = DrainSummary {
                connections: engine.metrics().connections.get(),
                batches_flushed,
                ops_applied: engine.metrics().ops_applied.get(),
            };
            tkc_obs::info!(
                "server drained: {} connections closed, {} batches flushed, {} ops applied",
                summary.connections,
                summary.batches_flushed,
                summary.ops_applied
            );
            summary
        });
        Ok(Server {
            addr: local,
            stop,
            accept_handle,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and waits for every thread: in-flight
    /// connections finish, the ingest queue drains, and the engine is
    /// compacted. Returns the final drain accounting.
    pub fn shutdown(self) -> DrainSummary {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_handle.join().unwrap_or_default()
    }

    /// Waits until some client sends `SHUTDOWN` (the accept loop exits on
    /// its own), then finishes the same graceful sequence. Returns the
    /// final drain accounting.
    pub fn join(self) -> DrainSummary {
        self.accept_handle.join().unwrap_or_default()
    }
}

/// Applies queued batches until every sender is gone (shutdown drains the
/// queue by construction: senders are dropped first, then this returns).
/// Returns the number of batches applied.
fn ingest_loop(engine: Arc<Engine>, rx: Receiver<Vec<WalOp>>) -> u64 {
    let mut applied = 0u64;
    while let Ok(batch) = rx.recv() {
        engine.metrics().batch_queue_depth.add(-1.0);
        if let Err(e) = engine.apply(&batch) {
            // Durability failure (disk full, dir removed): nothing sane to
            // do per-batch; stop consuming so senders see the closed queue.
            tkc_obs::error!("ingest stopped: batch apply failed: {e}");
            break;
        }
        applied += 1;
        engine.metrics().batches_applied.inc();
    }
    applied
}

/// Serves one connection until QUIT/EOF/timeout/shutdown.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    metrics: &ServerMetrics,
    tx: &SyncSender<Vec<WalOp>>,
    stop: &AtomicBool,
    timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle past the read timeout: drop the connection.
                let _ = writeln!(out, "ERR read timeout");
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        let verb = cmd
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        let per_cmd = metrics.for_verb(&verb);
        per_cmd.requests.inc();
        let start = Instant::now();
        let flow = respond(cmd, engine, tx, &mut reader, &mut out, timeout);
        per_cmd.seconds.record_duration(start.elapsed());
        match flow? {
            Flow::Continue => {}
            Flow::Quit => return Ok(()),
            Flow::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop (self-connect is best-effort).
                if let Ok(addr) = out.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

enum Flow {
    Continue,
    Quit,
    Shutdown,
}

/// Parses and answers a single command line.
fn respond(
    cmd: &str,
    engine: &Engine,
    tx: &SyncSender<Vec<WalOp>>,
    reader: &mut BufReader<TcpStream>,
    out: &mut TcpStream,
    _timeout: Duration,
) -> std::io::Result<Flow> {
    let mut parts = cmd.split_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let mut arg = || -> Option<u32> { parts.next()?.parse().ok() };
    let metrics = engine.metrics();
    let count_query = || {
        metrics.queries_served.inc();
    };
    match verb.as_str() {
        "KAPPA" => {
            count_query();
            match (arg(), arg()) {
                (Some(u), Some(v)) => match engine.snapshot().kappa(u, v) {
                    Some(k) => writeln!(out, "OK {k}")?,
                    None => writeln!(out, "ERR no such edge")?,
                },
                _ => writeln!(out, "ERR usage: KAPPA u v")?,
            }
        }
        "MAXK" => {
            count_query();
            writeln!(out, "OK {}", engine.snapshot().max_kappa())?;
        }
        "TRUSS" => {
            count_query();
            match arg() {
                Some(k) => {
                    let t = engine.snapshot().truss(k);
                    writeln!(
                        out,
                        "OK cores={} edges={} vertices={}",
                        t.cores, t.edges, t.vertices
                    )?;
                }
                None => writeln!(out, "ERR usage: TRUSS k")?,
            }
        }
        "INSERT" => match (arg(), arg()) {
            (Some(u), Some(v)) => match engine.insert(u, v) {
                Ok(Some(k)) => writeln!(out, "OK kappa={k}")?,
                Ok(None) => writeln!(out, "OK noop")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
            _ => writeln!(out, "ERR usage: INSERT u v")?,
        },
        "REMOVE" => match (arg(), arg()) {
            (Some(u), Some(v)) => match engine.remove(u, v) {
                Ok(true) => writeln!(out, "OK removed")?,
                Ok(false) => writeln!(out, "OK noop")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
            _ => writeln!(out, "ERR usage: REMOVE u v")?,
        },
        "BATCH" => match arg() {
            Some(n) if n <= 1_000_000 => {
                let mut ops = Vec::with_capacity(n as usize);
                let mut line = String::new();
                for i in 0..n {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        writeln!(out, "ERR batch cut short at op {i}")?;
                        return Ok(Flow::Quit);
                    }
                    match parse_batch_line(line.trim()) {
                        Some(op) => ops.push(op),
                        None => {
                            writeln!(out, "ERR batch op {i}: expected '+ u v' or '- u v'")?;
                            return Ok(Flow::Continue);
                        }
                    }
                }
                // Bounded queue: blocks when full — backpressure on the
                // client instead of unbounded buffering in the server. The
                // try_send probe only adds accounting; semantics match the
                // old unconditional blocking send.
                let sent = match tx.try_send(ops) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Full(ops)) => {
                        metrics.backpressure_waits.inc();
                        tx.send(ops).map_err(|_| ())
                    }
                    Err(TrySendError::Disconnected(_)) => Err(()),
                };
                match sent {
                    Ok(()) => {
                        metrics.batches_enqueued.inc();
                        metrics.batch_queue_depth.add(1.0);
                        writeln!(out, "OK queued {n}")?;
                    }
                    Err(()) => writeln!(out, "ERR ingest stopped")?,
                }
            }
            _ => writeln!(out, "ERR usage: BATCH n (n <= 1000000)")?,
        },
        "EPOCH" => {
            count_query();
            writeln!(out, "OK {}", engine.publish())?;
        }
        "STATS" => {
            count_query();
            write!(out, "OK\n{}.\n", engine.metrics_text())?;
        }
        "METRICS" => {
            count_query();
            write!(out, "OK\n{}.\n", engine.prometheus_text())?;
        }
        "PING" => writeln!(out, "OK pong")?,
        "QUIT" => {
            writeln!(out, "OK bye")?;
            return Ok(Flow::Quit);
        }
        "SHUTDOWN" => {
            writeln!(out, "OK shutting down")?;
            return Ok(Flow::Shutdown);
        }
        _ => writeln!(out, "ERR unknown command {verb:?}")?,
    }
    Ok(Flow::Continue)
}

/// Parses one `+ u v` / `- u v` batch line.
fn parse_batch_line(t: &str) -> Option<WalOp> {
    let mut parts = t.split_whitespace();
    let sign = parts.next()?;
    let u: u32 = parts.next()?.parse().ok()?;
    let v: u32 = parts.next()?.parse().ok()?;
    match sign {
        "+" => Some(WalOp::Insert(u, v)),
        "-" => Some(WalOp::Remove(u, v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::engine::EngineConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_server_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                stream,
            }
        }

        fn send(&mut self, cmd: &str) -> String {
            writeln!(self.stream, "{cmd}").unwrap();
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn read_until_dot(&mut self) -> Vec<String> {
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                let t = line.trim_end();
                if t == "." {
                    return lines;
                }
                lines.push(t.to_string());
            }
        }
    }

    fn start_server(name: &str) -> (Server, SocketAddr) {
        let config = EngineConfig {
            fsync: false,
            epoch_ops: 0,
            compact_bytes: 0,
            ..EngineConfig::new(temp_dir(name))
        };
        let engine = Arc::new(Engine::open(config).unwrap());
        let server = Server::start(
            engine,
            "127.0.0.1:0",
            ServeOptions {
                read_timeout: Duration::from_secs(5),
                queue_cap: 4,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn protocol_end_to_end_over_loopback() {
        let (server, addr) = start_server("proto");
        let mut c = Client::connect(addr);
        assert_eq!(c.send("PING"), "OK pong");
        // Build K4 on 0..4 synchronously.
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)] {
            assert!(c.send(&format!("INSERT {u} {v}")).starts_with("OK"));
        }
        assert_eq!(c.send("INSERT 2 3"), "OK kappa=2");
        assert_eq!(c.send("INSERT 2 3"), "OK noop");
        // Reads see the snapshot, which is stale until EPOCH.
        assert_eq!(c.send("KAPPA 2 3"), "ERR no such edge");
        assert_eq!(c.send("EPOCH"), "OK 2");
        assert_eq!(c.send("KAPPA 2 3"), "OK 2");
        assert_eq!(c.send("MAXK"), "OK 2");
        assert_eq!(c.send("TRUSS 2"), "OK cores=1 edges=6 vertices=4");
        assert_eq!(c.send("REMOVE 0 1"), "OK removed");
        assert_eq!(c.send("REMOVE 0 1"), "OK noop");
        // Malformed input errors without dropping the connection.
        assert!(c.send("KAPPA one two").starts_with("ERR"));
        assert!(c.send("FROBNICATE").starts_with("ERR"));
        assert_eq!(c.send("QUIT"), "OK bye");

        let mut c2 = Client::connect(addr);
        assert_eq!(c2.send("SHUTDOWN"), "OK shutting down");
        server.join();
    }

    #[test]
    fn batch_path_applies_through_bounded_queue() {
        let (server, addr) = start_server("batch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 3\n+ 0 1\n+ 1 2\n+ 2 0").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK queued 3");
        // Async path: poll STATS until the triangle's ops are applied.
        for _ in 0..200 {
            assert_eq!(c.send("STATS"), "OK");
            let stats = c.read_until_dot();
            if stats.iter().any(|l| l == "ops_applied 3") {
                assert_eq!(c.send("EPOCH"), "OK 2");
                assert_eq!(c.send("KAPPA 0 1"), "OK 1");
                server.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("batch never applied");
    }

    #[test]
    fn metrics_command_returns_prometheus_text() {
        let (server, addr) = start_server("metrics_cmd");
        let mut c = Client::connect(addr);
        assert_eq!(c.send("INSERT 0 1"), "OK kappa=0");
        assert_eq!(c.send("METRICS"), "OK");
        let lines = c.read_until_dot();
        let text = lines.join("\n");
        for series in [
            "tkc_engine_ops_applied_total 1",
            "tkc_server_requests_total{cmd=\"INSERT\"} 1",
            "tkc_server_requests_total{cmd=\"METRICS\"} 1",
            "tkc_server_command_seconds_count{cmd=\"INSERT\"} 1",
            "tkc_server_active_connections 1",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
        let summary = server.shutdown();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.ops_applied, 1);
    }

    #[test]
    fn bad_batch_lines_are_rejected() {
        let (server, addr) = start_server("badbatch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 1\n* 0 1").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR batch op 0"));
        assert_eq!(c.send("PING"), "OK pong"); // connection survives
        server.shutdown();
    }
}
