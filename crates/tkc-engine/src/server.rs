//! The `tkc serve` TCP front-end: a threaded listener speaking a
//! line-oriented text protocol over the engine.
//!
//! ## Wire protocol
//!
//! One command per `\n`-terminated line; every response starts with `OK`
//! or `ERR`. Multi-line responses (`STATS`) end with a lone `.`.
//!
//! | command        | response                                | path   |
//! |----------------|-----------------------------------------|--------|
//! | `KAPPA u v`    | `OK <κ>` / `ERR no such edge`           | snapshot |
//! | `MAXK`         | `OK <max κ>`                            | snapshot |
//! | `TRUSS k`      | `OK cores=<c> edges=<m> vertices=<n>`   | snapshot |
//! | `INSERT u v`   | `OK kappa=<κ>` / `OK noop`              | durable, read-your-write |
//! | `REMOVE u v`   | `OK removed` / `OK noop`                | durable |
//! | `BATCH n` + n op lines (`+ u v` / `- u v`) | `OK queued <n>` | bounded queue |
//! | `EPOCH`        | `OK <epoch>` (forces publication)       | writer |
//! | `STATS`        | `OK`, `key value` lines, `.`            | counters |
//! | `PING`         | `OK pong`                               | — |
//! | `SHUTDOWN`     | `OK shutting down` (graceful stop)      | — |
//! | `QUIT`         | `OK bye` (closes this connection)       | — |
//!
//! Reads (`KAPPA`/`MAXK`/`TRUSS`) are answered from the current epoch
//! snapshot and never block on ingest. `INSERT`/`REMOVE` are applied
//! synchronously (WAL-durable when the `OK` is on the wire) and `INSERT`
//! reports the edge's κ immediately. `BATCH` trades that read-your-write
//! for throughput: ops go into a **bounded** queue consumed by a single
//! ingest thread, and the `send` blocks when the queue is full — clients
//! feel backpressure instead of the server buffering unboundedly. Queued
//! batches are acknowledged as *queued*, not yet durable; graceful
//! shutdown drains the queue before the final compaction.
//!
//! Every connection has a read timeout: a half-open or stalled client is
//! dropped instead of pinning its thread forever.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::wal::WalOp;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-connection read timeout; a connection idle longer is closed.
    pub read_timeout: Duration,
    /// Capacity (in batches) of the bounded ingest queue.
    pub queue_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_secs(60),
            queue_cap: 128,
        }
    }
}

/// A running server; dropping it does **not** stop the threads — call
/// [`Server::shutdown`] (or send `SHUTDOWN` over the wire and
/// [`Server::join`]).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the accept loop and the ingest thread.
    pub fn start(engine: Arc<Engine>, addr: &str, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<Vec<WalOp>>(opts.queue_cap.max(1));
        let ingest_engine = Arc::clone(&engine);
        let ingest = std::thread::spawn(move || ingest_loop(ingest_engine, rx));

        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                engine.metrics().connections.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&engine);
                let tx = tx.clone();
                let stop = Arc::clone(&accept_stop);
                let timeout = opts.read_timeout;
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &engine, &tx, &stop, timeout);
                }));
                conns.retain(|h| !h.is_finished());
            }
            // Stop accepting, wait for in-flight connections, then let the
            // ingest thread drain the queue (dropping tx closes it).
            for h in conns {
                let _ = h.join();
            }
            drop(tx);
            let _ = ingest.join();
            // Final epoch + compaction so a clean restart replays nothing.
            engine.publish();
            let _ = engine.compact();
        });
        Ok(Server {
            addr: local,
            stop,
            accept_handle,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop and waits for every thread: in-flight
    /// connections finish, the ingest queue drains, and the engine is
    /// compacted.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_handle.join();
    }

    /// Waits until some client sends `SHUTDOWN` (the accept loop exits on
    /// its own), then finishes the same graceful sequence.
    pub fn join(self) {
        let _ = self.accept_handle.join();
    }
}

/// Applies queued batches until every sender is gone (shutdown drains the
/// queue by construction: senders are dropped first, then this returns).
fn ingest_loop(engine: Arc<Engine>, rx: Receiver<Vec<WalOp>>) {
    while let Ok(batch) = rx.recv() {
        if engine.apply(&batch).is_err() {
            // Durability failure (disk full, dir removed): nothing sane to
            // do per-batch; stop consuming so senders see the closed queue.
            break;
        }
    }
}

/// Serves one connection until QUIT/EOF/timeout/shutdown.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    tx: &SyncSender<Vec<WalOp>>,
    stop: &AtomicBool,
    timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle past the read timeout: drop the connection.
                let _ = writeln!(out, "ERR read timeout");
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        match respond(cmd, engine, tx, &mut reader, &mut out, timeout)? {
            Flow::Continue => {}
            Flow::Quit => return Ok(()),
            Flow::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop (self-connect is best-effort).
                if let Ok(addr) = out.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

enum Flow {
    Continue,
    Quit,
    Shutdown,
}

/// Parses and answers a single command line.
fn respond(
    cmd: &str,
    engine: &Engine,
    tx: &SyncSender<Vec<WalOp>>,
    reader: &mut BufReader<TcpStream>,
    out: &mut TcpStream,
    _timeout: Duration,
) -> std::io::Result<Flow> {
    let mut parts = cmd.split_whitespace();
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let mut arg = || -> Option<u32> { parts.next()?.parse().ok() };
    let metrics = engine.metrics();
    let count_query = || {
        metrics.queries_served.fetch_add(1, Ordering::Relaxed);
    };
    match verb.as_str() {
        "KAPPA" => {
            count_query();
            match (arg(), arg()) {
                (Some(u), Some(v)) => match engine.snapshot().kappa(u, v) {
                    Some(k) => writeln!(out, "OK {k}")?,
                    None => writeln!(out, "ERR no such edge")?,
                },
                _ => writeln!(out, "ERR usage: KAPPA u v")?,
            }
        }
        "MAXK" => {
            count_query();
            writeln!(out, "OK {}", engine.snapshot().max_kappa())?;
        }
        "TRUSS" => {
            count_query();
            match arg() {
                Some(k) => {
                    let t = engine.snapshot().truss(k);
                    writeln!(
                        out,
                        "OK cores={} edges={} vertices={}",
                        t.cores, t.edges, t.vertices
                    )?;
                }
                None => writeln!(out, "ERR usage: TRUSS k")?,
            }
        }
        "INSERT" => match (arg(), arg()) {
            (Some(u), Some(v)) => match engine.insert(u, v) {
                Ok(Some(k)) => writeln!(out, "OK kappa={k}")?,
                Ok(None) => writeln!(out, "OK noop")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
            _ => writeln!(out, "ERR usage: INSERT u v")?,
        },
        "REMOVE" => match (arg(), arg()) {
            (Some(u), Some(v)) => match engine.remove(u, v) {
                Ok(true) => writeln!(out, "OK removed")?,
                Ok(false) => writeln!(out, "OK noop")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
            _ => writeln!(out, "ERR usage: REMOVE u v")?,
        },
        "BATCH" => match arg() {
            Some(n) if n <= 1_000_000 => {
                let mut ops = Vec::with_capacity(n as usize);
                let mut line = String::new();
                for i in 0..n {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        writeln!(out, "ERR batch cut short at op {i}")?;
                        return Ok(Flow::Quit);
                    }
                    match parse_batch_line(line.trim()) {
                        Some(op) => ops.push(op),
                        None => {
                            writeln!(out, "ERR batch op {i}: expected '+ u v' or '- u v'")?;
                            return Ok(Flow::Continue);
                        }
                    }
                }
                // Bounded queue: blocks when full — backpressure on the
                // client instead of unbounded buffering in the server.
                match tx.send(ops) {
                    Ok(()) => {
                        metrics.batches_enqueued.fetch_add(1, Ordering::Relaxed);
                        writeln!(out, "OK queued {n}")?;
                    }
                    Err(_) => writeln!(out, "ERR ingest stopped")?,
                }
            }
            _ => writeln!(out, "ERR usage: BATCH n (n <= 1000000)")?,
        },
        "EPOCH" => {
            count_query();
            writeln!(out, "OK {}", engine.publish())?;
        }
        "STATS" => {
            count_query();
            write!(out, "OK\n{}.\n", engine.metrics_text())?;
        }
        "PING" => writeln!(out, "OK pong")?,
        "QUIT" => {
            writeln!(out, "OK bye")?;
            return Ok(Flow::Quit);
        }
        "SHUTDOWN" => {
            writeln!(out, "OK shutting down")?;
            return Ok(Flow::Shutdown);
        }
        _ => writeln!(out, "ERR unknown command {verb:?}")?,
    }
    Ok(Flow::Continue)
}

/// Parses one `+ u v` / `- u v` batch line.
fn parse_batch_line(t: &str) -> Option<WalOp> {
    let mut parts = t.split_whitespace();
    let sign = parts.next()?;
    let u: u32 = parts.next()?.parse().ok()?;
    let v: u32 = parts.next()?.parse().ok()?;
    match sign {
        "+" => Some(WalOp::Insert(u, v)),
        "-" => Some(WalOp::Remove(u, v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::engine::EngineConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_server_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    struct Client {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                stream,
            }
        }

        fn send(&mut self, cmd: &str) -> String {
            writeln!(self.stream, "{cmd}").unwrap();
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn read_until_dot(&mut self) -> Vec<String> {
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).unwrap();
                let t = line.trim_end();
                if t == "." {
                    return lines;
                }
                lines.push(t.to_string());
            }
        }
    }

    fn start_server(name: &str) -> (Server, SocketAddr) {
        let config = EngineConfig {
            fsync: false,
            epoch_ops: 0,
            compact_bytes: 0,
            ..EngineConfig::new(temp_dir(name))
        };
        let engine = Arc::new(Engine::open(config).unwrap());
        let server = Server::start(
            engine,
            "127.0.0.1:0",
            ServeOptions {
                read_timeout: Duration::from_secs(5),
                queue_cap: 4,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        (server, addr)
    }

    #[test]
    fn protocol_end_to_end_over_loopback() {
        let (server, addr) = start_server("proto");
        let mut c = Client::connect(addr);
        assert_eq!(c.send("PING"), "OK pong");
        // Build K4 on 0..4 synchronously.
        for (u, v) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)] {
            assert!(c.send(&format!("INSERT {u} {v}")).starts_with("OK"));
        }
        assert_eq!(c.send("INSERT 2 3"), "OK kappa=2");
        assert_eq!(c.send("INSERT 2 3"), "OK noop");
        // Reads see the snapshot, which is stale until EPOCH.
        assert_eq!(c.send("KAPPA 2 3"), "ERR no such edge");
        assert_eq!(c.send("EPOCH"), "OK 2");
        assert_eq!(c.send("KAPPA 2 3"), "OK 2");
        assert_eq!(c.send("MAXK"), "OK 2");
        assert_eq!(c.send("TRUSS 2"), "OK cores=1 edges=6 vertices=4");
        assert_eq!(c.send("REMOVE 0 1"), "OK removed");
        assert_eq!(c.send("REMOVE 0 1"), "OK noop");
        // Malformed input errors without dropping the connection.
        assert!(c.send("KAPPA one two").starts_with("ERR"));
        assert!(c.send("FROBNICATE").starts_with("ERR"));
        assert_eq!(c.send("QUIT"), "OK bye");

        let mut c2 = Client::connect(addr);
        assert_eq!(c2.send("SHUTDOWN"), "OK shutting down");
        server.join();
    }

    #[test]
    fn batch_path_applies_through_bounded_queue() {
        let (server, addr) = start_server("batch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 3\n+ 0 1\n+ 1 2\n+ 2 0").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK queued 3");
        // Async path: poll STATS until the triangle's ops are applied.
        for _ in 0..200 {
            assert_eq!(c.send("STATS"), "OK");
            let stats = c.read_until_dot();
            if stats.iter().any(|l| l == "ops_applied 3") {
                assert_eq!(c.send("EPOCH"), "OK 2");
                assert_eq!(c.send("KAPPA 0 1"), "OK 1");
                server.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("batch never applied");
    }

    #[test]
    fn bad_batch_lines_are_rejected() {
        let (server, addr) = start_server("badbatch");
        let mut c = Client::connect(addr);
        writeln!(c.stream, "BATCH 1\n* 0 1").unwrap();
        let mut line = String::new();
        c.reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR batch op 0"));
        assert_eq!(c.send("PING"), "OK pong"); // connection survives
        server.shutdown();
    }
}
