//! Structured engine failures and the serving state machine.
//!
//! The engine's failure model (DESIGN.md §10) distinguishes three fates
//! for a write:
//!
//! * **Rejected** — the op itself is unacceptable ([`EngineError::
//!   InvalidOp`], e.g. a vertex id past the configured cap). The engine
//!   stays healthy; only this request fails.
//! * **Degraded** — the durability layer failed
//!   ([`EngineError::Wal`]). The op is *not acknowledged* and the engine
//!   transitions to [`EngineState::ReadOnly`]: reads keep serving the
//!   last published epoch, further writes get [`EngineError::Degraded`]
//!   until a recovery succeeds.
//! * **Lost process** — a crash. Handled by WAL replay at the next open,
//!   not by this module.
//!
//! Nothing here panics, and none of these variants are reachable from
//! well-formed client input except `InvalidOp` — which is the point.

use std::fmt;

use tkc_core::persist::PersistError;

use crate::wal::WalError;

/// Where the engine is in its `Serving → ReadOnly → Recovering → Serving`
/// state machine — extended by replication with the two follower
/// states (`Follower`, `Diverged`), which are read-only by role rather
/// than by failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineState {
    /// Healthy: writes are durable, reads serve the latest epoch.
    Serving,
    /// Degraded: the WAL failed; writes are rejected, reads still serve
    /// the last published epoch.
    ReadOnly,
    /// A supervised recovery attempt is in flight.
    Recovering,
    /// Replicating from a primary: reads serve published epochs, writes
    /// are redirected with `ERR READONLY <primary-addr>`.
    Follower,
    /// The divergence probe caught a κ-stamp mismatch against the
    /// primary: still read-only, re-bootstrapping from the primary's
    /// packed store.
    Diverged,
}

impl EngineState {
    /// The metrics/wire label (`serving`, `read_only`, `recovering`,
    /// `follower`, `diverged`).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineState::Serving => "serving",
            EngineState::ReadOnly => "read_only",
            EngineState::Recovering => "recovering",
            EngineState::Follower => "follower",
            EngineState::Diverged => "diverged",
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            EngineState::Serving => 0,
            EngineState::ReadOnly => 1,
            EngineState::Recovering => 2,
            EngineState::Follower => 3,
            EngineState::Diverged => 4,
        }
    }

    pub(crate) fn from_u8(v: u8) -> EngineState {
        match v {
            1 => EngineState::ReadOnly,
            2 => EngineState::Recovering,
            3 => EngineState::Follower,
            4 => EngineState::Diverged,
            _ => EngineState::Serving,
        }
    }
}

impl fmt::Display for EngineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything that can go wrong inside the engine, shaped for the wire:
/// the server maps each variant to a structured `ERR ...` reply instead
/// of unwinding.
#[derive(Debug)]
pub enum EngineError {
    /// The write-ahead log failed at a named site (append, fsync, ...).
    Wal(WalError),
    /// Snapshot load/store failed (compaction, recovery state file).
    Persist(PersistError),
    /// The engine is read-only; the reason names the original failure.
    Degraded {
        /// Human-readable cause carried into `ERR DEGRADED <reason>`.
        reason: String,
    },
    /// A client-supplied op failed validation (and was not logged).
    InvalidOp {
        /// What the op violated.
        reason: String,
    },
    /// The engine is a replication follower: writes must go to the
    /// primary. Maps to `ERR READONLY <primary-addr>` on the wire so a
    /// client can redirect itself.
    Readonly {
        /// Address of the primary this node follows (`unknown` when the
        /// follower has not learned one yet).
        primary: String,
    },
}

impl EngineError {
    /// True when the failure is the fault harness's crash latch — the
    /// simulated process is dead, so retrying in-process is pointless.
    pub fn is_injected_crash(&self) -> bool {
        match self {
            EngineError::Wal(w) => w.is_injected_crash(),
            EngineError::Persist(PersistError::Io(e)) => tkc_faults::is_injected_crash(e),
            _ => false,
        }
    }

    /// The short wire token after `ERR` (`DEGRADED`, `INVALID`, `WAL`,
    /// `PERSIST`, `READONLY`) — stable for clients to dispatch on.
    pub fn wire_token(&self) -> &'static str {
        match self {
            EngineError::Wal(_) => "WAL",
            EngineError::Persist(_) => "PERSIST",
            EngineError::Degraded { .. } => "DEGRADED",
            EngineError::InvalidOp { .. } => "INVALID",
            EngineError::Readonly { .. } => "READONLY",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Wal(e) => write!(f, "wal failure: {e}"),
            EngineError::Persist(e) => write!(f, "persist failure: {e}"),
            EngineError::Degraded { reason } => write!(f, "engine degraded: {reason}"),
            EngineError::InvalidOp { reason } => write!(f, "invalid op: {reason}"),
            EngineError::Readonly { primary } => {
                write!(f, "read-only follower; writes go to {primary}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Wal(e) => Some(e),
            EngineError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Wal(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Persist(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Persist(PersistError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_through_u8() {
        for s in [
            EngineState::Serving,
            EngineState::ReadOnly,
            EngineState::Recovering,
            EngineState::Follower,
            EngineState::Diverged,
        ] {
            assert_eq!(EngineState::from_u8(s.as_u8()), s);
        }
    }

    #[test]
    fn wire_tokens_are_stable() {
        assert_eq!(
            EngineError::Degraded {
                reason: "wal.fsync".to_string()
            }
            .wire_token(),
            "DEGRADED"
        );
        assert_eq!(
            EngineError::InvalidOp {
                reason: "vertex cap".to_string()
            }
            .wire_token(),
            "INVALID"
        );
        let ro = EngineError::Readonly {
            primary: "10.0.0.1:7000".to_string(),
        };
        assert_eq!(ro.wire_token(), "READONLY");
        assert!(ro.to_string().contains("10.0.0.1:7000"));
    }
}
