//! The line protocol's pure parsing layer: bytes → [`Command`], with no
//! I/O and no panics.
//!
//! Everything client-controlled is funneled through [`parse_command`] /
//! [`parse_batch_line`], which makes this module the fuzz target for the
//! wire surface: for *any* byte sequence the parser either yields a
//! well-formed command or a [`ParseError`] whose `Display` is the exact
//! `ERR ...` text the server puts on the wire. Invalid UTF-8 is handled
//! lossily (replacement characters parse like any other garbage), token
//! lengths are bounded before any allocation-for-normalization happens,
//! and numeric fields reject anything that does not fit a `u32`.

use std::fmt;

use crate::wal::WalOp;

/// Largest batch a single `BATCH n` command may announce.
pub const MAX_BATCH: u32 = 1_000_000;

/// Longest verb we will normalize; anything longer is unknown by
/// construction (the longest real verb is 8 bytes).
const MAX_VERB_BYTES: usize = 16;

/// How much of a bad token is echoed back in an error message.
const ECHO_BYTES: usize = 32;

/// One parsed wire command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `KAPPA u v` — κ of one edge from the snapshot.
    Kappa(u32, u32),
    /// `MAXK` — largest κ in the snapshot.
    MaxK,
    /// `TRUSS k` — maximal Triangle K-Core summary at level `k`.
    Truss(u32),
    /// `INSERT u v` — durable edge insert (read-your-write κ).
    Insert(u32, u32),
    /// `REMOVE u v` — durable edge remove.
    Remove(u32, u32),
    /// `BATCH n` — `n` op lines follow on the connection.
    Batch(u32),
    /// `EPOCH` — force an epoch publication.
    Epoch,
    /// `STATS` — plain-text counters.
    Stats,
    /// `METRICS` — Prometheus exposition.
    Metrics,
    /// `HEALTH` — engine state (`serving` / `read_only <reason>` / ...).
    Health,
    /// `SLO` — per-verb latency-objective status lines.
    Slo,
    /// `TRACE n` — the last `n` trace/span records as JSONL.
    Trace(u32),
    /// `PROMOTE` — fence the old primary and make this follower
    /// writable at a higher term.
    Promote,
    /// `PING`.
    Ping,
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — graceful server stop.
    Shutdown,
}

/// Why a line failed to parse. `Display` is the wire text after `ERR `.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line had a known verb but bad arguments; carries the usage
    /// string.
    Usage(&'static str),
    /// The verb is not in the protocol (echoes a bounded prefix).
    Unknown(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Usage(u) => write!(f, "usage: {u}"),
            ParseError::Unknown(verb) => write!(f, "unknown command {verb:?}"),
        }
    }
}

/// Truncates arbitrary client bytes to a short, printable echo.
fn echo(token: &str) -> String {
    token
        .chars()
        .take(ECHO_BYTES)
        .map(|c| if c.is_ascii_graphic() { c } else { '?' })
        .collect()
}

/// Parses one (already `\n`-stripped, possibly hostile) command line.
/// Empty / all-whitespace lines yield `None` — the server skips them.
pub fn parse_command(line: &str) -> Option<Result<Command, ParseError>> {
    let mut parts = line.split_whitespace();
    let raw_verb = parts.next()?;
    let verb = if raw_verb.len() <= MAX_VERB_BYTES {
        raw_verb.to_ascii_uppercase()
    } else {
        return Some(Err(ParseError::Unknown(echo(raw_verb))));
    };
    let mut arg = || -> Option<u32> { parts.next()?.parse().ok() };
    Some(match verb.as_str() {
        "KAPPA" => match (arg(), arg()) {
            (Some(u), Some(v)) => Ok(Command::Kappa(u, v)),
            _ => Err(ParseError::Usage("KAPPA u v")),
        },
        "MAXK" => Ok(Command::MaxK),
        "TRUSS" => match arg() {
            Some(k) => Ok(Command::Truss(k)),
            None => Err(ParseError::Usage("TRUSS k")),
        },
        "INSERT" => match (arg(), arg()) {
            (Some(u), Some(v)) => Ok(Command::Insert(u, v)),
            _ => Err(ParseError::Usage("INSERT u v")),
        },
        "REMOVE" => match (arg(), arg()) {
            (Some(u), Some(v)) => Ok(Command::Remove(u, v)),
            _ => Err(ParseError::Usage("REMOVE u v")),
        },
        "BATCH" => match arg() {
            Some(n) if n <= MAX_BATCH => Ok(Command::Batch(n)),
            _ => Err(ParseError::Usage("BATCH n (n <= 1000000)")),
        },
        "SLO" => Ok(Command::Slo),
        "TRACE" => match arg() {
            Some(n) if n >= 1 => Ok(Command::Trace(n)),
            _ => Err(ParseError::Usage("TRACE n (n >= 1)")),
        },
        "EPOCH" => Ok(Command::Epoch),
        "STATS" => Ok(Command::Stats),
        "METRICS" => Ok(Command::Metrics),
        "HEALTH" => Ok(Command::Health),
        "PROMOTE" => Ok(Command::Promote),
        "PING" => Ok(Command::Ping),
        "QUIT" => Ok(Command::Quit),
        "SHUTDOWN" => Ok(Command::Shutdown),
        _ => Err(ParseError::Unknown(echo(&verb))),
    })
}

/// Parses one `+ u v` / `- u v` batch body line.
pub fn parse_batch_line(t: &str) -> Option<WalOp> {
    let mut parts = t.split_whitespace();
    let sign = parts.next()?;
    let u: u32 = parts.next()?.parse().ok()?;
    let v: u32 = parts.next()?.parse().ok()?;
    match sign {
        "+" => Some(WalOp::Insert(u, v)),
        "-" => Some(WalOp::Remove(u, v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn happy_paths_parse() {
        assert_eq!(
            parse_command("KAPPA 3 7").unwrap().unwrap(),
            Command::Kappa(3, 7)
        );
        assert_eq!(
            parse_command("  insert 0 1 ").unwrap().unwrap(),
            Command::Insert(0, 1)
        );
        assert_eq!(
            parse_command("BATCH 1000000").unwrap().unwrap(),
            Command::Batch(1_000_000)
        );
        assert_eq!(parse_command("ping").unwrap().unwrap(), Command::Ping);
        assert_eq!(parse_command("promote").unwrap().unwrap(), Command::Promote);
        assert_eq!(parse_command("slo").unwrap().unwrap(), Command::Slo);
        assert_eq!(
            parse_command("TRACE 25").unwrap().unwrap(),
            Command::Trace(25)
        );
        assert_eq!(
            parse_command("trace 0").unwrap().unwrap_err().to_string(),
            "usage: TRACE n (n >= 1)"
        );
        assert_eq!(
            parse_command("TRACE").unwrap().unwrap_err().to_string(),
            "usage: TRACE n (n >= 1)"
        );
        assert!(parse_command("").is_none());
        assert!(parse_command("   \t  ").is_none());
    }

    #[test]
    fn errors_render_wire_text() {
        assert_eq!(
            parse_command("KAPPA one two")
                .unwrap()
                .unwrap_err()
                .to_string(),
            "usage: KAPPA u v"
        );
        assert_eq!(
            parse_command("FROBNICATE")
                .unwrap()
                .unwrap_err()
                .to_string(),
            "unknown command \"FROBNICATE\""
        );
        assert_eq!(
            parse_command("BATCH 1000001")
                .unwrap()
                .unwrap_err()
                .to_string(),
            "usage: BATCH n (n <= 1000000)"
        );
    }

    #[test]
    fn hostile_tokens_are_bounded_and_sanitized() {
        let long = "A".repeat(10_000);
        let Err(ParseError::Unknown(echoed)) = parse_command(&long).unwrap() else {
            panic!("expected unknown command");
        };
        assert!(echoed.len() <= 32);
        // Control bytes never echo raw.
        let Err(ParseError::Unknown(echoed)) = parse_command("\u{1}\u{2}evil").unwrap() else {
            panic!("expected unknown command");
        };
        assert!(echoed.chars().all(|c| c.is_ascii_graphic() || c == '?'));
    }

    #[test]
    fn numeric_overflow_is_usage_not_panic() {
        assert!(parse_command("INSERT 4294967296 0").unwrap().is_err());
        assert!(parse_command("TRUSS -1").unwrap().is_err());
        assert!(parse_batch_line("+ 4294967296 0").is_none());
        assert!(parse_batch_line("+ 1").is_none());
        assert!(parse_batch_line("* 1 2").is_none());
        assert_eq!(parse_batch_line("- 1 2"), Some(WalOp::Remove(1, 2)));
    }
}
