//! The write-ahead op log: length-prefixed, checksummed, versioned binary
//! records of graph mutations, fsynced per batch.
//!
//! ## Record layout
//!
//! ```text
//! file   := magic record*
//! magic  := "TKCWAL" 0x00 version(u8)            ; 8 bytes
//! record := len(u32 LE) crc(u32 LE) payload      ; len = payload bytes
//! payload:= 0x01 u(u32 LE) v(u32 LE)             ; insert edge {u, v}
//!         | 0x02 u(u32 LE) v(u32 LE)             ; remove edge {u, v}
//!         | 0x03 n(u32 LE)                       ; add n vertices
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. Recovery reads records until
//! the first torn one — a length prefix or payload cut short by a crash,
//! or a checksum mismatch — and **truncates the file there**: a partially
//! flushed tail never poisons the log, and everything before it replays
//! exactly. A record whose checksum passes but whose content is
//! unintelligible (unknown tag, wrong field width) is a real error, not a
//! torn tail — it means version skew or external corruption, and recovery
//! refuses to guess.
//!
//! ## Storage abstraction
//!
//! The log never touches the filesystem directly: every byte flows
//! through a [`WalStorage`] (normally [`tkc_faults::DiskFile`], under
//! test a fault-injecting [`tkc_faults::FaultFile`]). Failures come back
//! as [`WalError`] — the underlying [`PersistError`] tagged with the
//! storage *site* that failed (`wal.open`, `wal.append`, `wal.fsync`,
//! `wal.truncate`), which is what the engine's degraded-mode reason and
//! the wire protocol report upward.
//!
//! Failed appends never advance the append position: the log's notion of
//! its valid length moves only after the batch is fully written *and*
//! (when configured) fsynced, so a torn batch is overwritten by the next
//! successful append or discarded by compaction.

use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

use tkc_core::persist::PersistError;
use tkc_faults::{DiskFile, WalStorage};

/// File magic: `TKCWAL`, a NUL, then the format version byte.
///
/// Version 2 (replication): the record layout is byte-identical to v1 —
/// the monotonic sequence number every record carries for WAL shipping
/// is *implicit* (the compaction floor seq persisted in the state header
/// plus the record's 1-based position in the log), so no per-record
/// bytes changed. v1 logs upgrade in place on open: the version byte is
/// rewritten and replay proceeds (their floor seq is 0).
pub const WAL_MAGIC: [u8; 8] = *b"TKCWAL\x00\x02";

/// The previous format version, still accepted by [`Wal::open`] via an
/// in-place header rewrite (upgrade-on-open).
const WAL_VERSION_V1: u8 = 1;

/// Hard upper bound on a record payload; anything larger is treated as a
/// torn length prefix (no legitimate op comes close).
const MAX_PAYLOAD: u32 = 64;

/// A WAL failure: *what* went wrong ([`PersistError`]) plus *where* in
/// the durability path it happened — the failpoint-site vocabulary shared
/// with `tkc-faults`, so an operator can line up an `ERR DEGRADED
/// wal.fsync` wire reply with the `--failpoint wal.fsync=eio@5` that
/// caused it.
#[derive(Debug)]
pub struct WalError {
    /// The storage site that failed (`wal.open`, `wal.append`,
    /// `wal.fsync`, `wal.truncate`).
    pub site: &'static str,
    /// The underlying failure.
    pub source: PersistError,
}

impl WalError {
    fn at(site: &'static str) -> impl FnOnce(std::io::Error) -> WalError {
        move |e| WalError {
            site,
            source: PersistError::Io(e),
        }
    }

    /// True when the failure is an injected crash latch (the simulated
    /// process is "dead" until the harness restarts it) — the recovery
    /// supervisor must not spin on these.
    pub fn is_injected_crash(&self) -> bool {
        matches!(&self.source, PersistError::Io(e) if tkc_faults::is_injected_crash(e))
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.site, self.source)
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One durable graph mutation.
///
/// Ops name vertices, never edge ids — replay is therefore independent of
/// the id-allocation history of the process that wrote the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert edge `{u, v}` (idempotent at apply time: duplicates and self
    /// loops are skipped, and missing endpoints are created).
    Insert(u32, u32),
    /// Remove edge `{u, v}` (skipped when absent).
    Remove(u32, u32),
    /// Grow the vertex set by `n` isolated vertices.
    AddVertices(u32),
}

impl WalOp {
    /// Appends the full record (len | crc | payload) for this op. Also
    /// used by the replication codec to embed records in OPS frames.
    pub(crate) fn encode(self, out: &mut Vec<u8>) {
        let mut payload = [0u8; 9];
        let (tag, args) = payload.split_at_mut(1);
        let (a, b) = args.split_at_mut(4);
        let used = match self {
            WalOp::Insert(u, v) => {
                tag.copy_from_slice(&[1]);
                a.copy_from_slice(&u.to_le_bytes());
                b.copy_from_slice(&v.to_le_bytes());
                9
            }
            WalOp::Remove(u, v) => {
                tag.copy_from_slice(&[2]);
                a.copy_from_slice(&u.to_le_bytes());
                b.copy_from_slice(&v.to_le_bytes());
                9
            }
            WalOp::AddVertices(n) => {
                tag.copy_from_slice(&[3]);
                a.copy_from_slice(&n.to_le_bytes());
                5
            }
        };
        let body = payload.get(..used).unwrap_or(payload.as_slice());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out.extend_from_slice(body);
    }

    fn decode(payload: &[u8], offset: u64) -> Result<WalOp, PersistError> {
        let field = |i: usize| -> Result<u32, PersistError> {
            payload
                .get(1 + i * 4..1 + i * 4 + 4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| PersistError::Corrupt {
                    offset,
                    reason: "payload shorter than its tag demands".to_string(),
                })
        };
        match payload.first() {
            Some(1) if payload.len() == 9 => Ok(WalOp::Insert(field(0)?, field(1)?)),
            Some(2) if payload.len() == 9 => Ok(WalOp::Remove(field(0)?, field(1)?)),
            Some(3) if payload.len() == 5 => Ok(WalOp::AddVertices(field(0)?)),
            Some(tag) => Err(PersistError::Corrupt {
                offset,
                reason: format!("unknown or mis-sized record tag {tag}"),
            }),
            None => Err(PersistError::Corrupt {
                offset,
                reason: "empty payload".to_string(),
            }),
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order.
    pub ops: Vec<WalOp>,
    /// Bytes of torn tail dropped (0 after a clean shutdown).
    pub torn_bytes: u64,
}

/// Byte and timing accounting for one [`Wal::append_with`] call, fed to
/// the engine's WAL metrics (this module stays observability-agnostic).
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendInfo {
    /// Encoded bytes written for the batch.
    pub bytes: u64,
    /// Time spent inside `sync_data` (zero with fsync off).
    pub fsync: std::time::Duration,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    storage: Box<dyn WalStorage>,
    /// Valid byte length — the append position.
    len: u64,
    fsync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` on the real
    /// filesystem, replaying every intact record and truncating any torn
    /// tail. `fsync` controls whether each appended batch is flushed to
    /// stable storage before [`Wal::append`] returns.
    pub fn open(path: &Path, fsync: bool) -> Result<(Wal, Recovery), WalError> {
        let disk = DiskFile::open(path).map_err(WalError::at("wal.open"))?;
        Wal::open_with(Box::new(disk), fsync)
    }

    /// [`Wal::open`] over an arbitrary [`WalStorage`] — the seam the
    /// fault-injection harness plugs into.
    pub fn open_with(
        mut storage: Box<dyn WalStorage>,
        fsync: bool,
    ) -> Result<(Wal, Recovery), WalError> {
        let buf = storage.read_all().map_err(WalError::at("wal.open"))?;

        if buf.is_empty() {
            storage
                .write_at(0, &WAL_MAGIC)
                .map_err(WalError::at("wal.append"))?;
            if fsync {
                storage.sync().map_err(WalError::at("wal.fsync"))?;
            }
            let wal = Wal {
                storage,
                len: WAL_MAGIC.len() as u64,
                fsync,
            };
            return Ok((wal, Recovery::default()));
        }
        let (magic_head, magic_tail) = WAL_MAGIC.split_at(7);
        if buf.len() < WAL_MAGIC.len() || buf.get(..7) != Some(magic_head) {
            return Err(WalError {
                site: "wal.open",
                source: PersistError::BadMagic { expected: "TKCWAL" },
            });
        }
        let version = buf.get(7).copied().unwrap_or(0);
        if version == WAL_VERSION_V1 {
            // Upgrade-on-open: v1 records are byte-identical, only the
            // version byte moves. Rewrite the header and carry on.
            storage
                .write_at(0, &WAL_MAGIC)
                .map_err(WalError::at("wal.append"))?;
            storage.sync().map_err(WalError::at("wal.fsync"))?;
        } else if magic_tail.first() != Some(&version) {
            return Err(WalError {
                site: "wal.open",
                source: PersistError::UnsupportedVersion {
                    format: "wal",
                    found: u32::from(version),
                },
            });
        }

        let mut ops = Vec::new();
        let mut off = WAL_MAGIC.len();
        loop {
            match read_record(&buf, off).map_err(|source| WalError {
                site: "wal.open",
                source,
            })? {
                RecordAt::Op(op, next) => {
                    ops.push(op);
                    off = next;
                }
                RecordAt::End => break,
                RecordAt::Torn => break,
            }
        }
        let torn_bytes = (buf.len() - off) as u64;
        if torn_bytes > 0 {
            storage
                .set_len(off as u64)
                .map_err(WalError::at("wal.truncate"))?;
            storage.sync().map_err(WalError::at("wal.fsync"))?;
        }
        let wal = Wal {
            storage,
            len: off as u64,
            fsync,
        };
        Ok((wal, Recovery { ops, torn_bytes }))
    }

    /// Appends a batch of ops as one write, then (if configured) fsyncs —
    /// the batch is durable when this returns.
    pub fn append(&mut self, ops: &[WalOp]) -> Result<(), WalError> {
        self.append_with(ops).map(|_| ())
    }

    /// [`Wal::append`] returning byte/fsync accounting for the batch.
    pub fn append_with(&mut self, ops: &[WalOp]) -> Result<AppendInfo, WalError> {
        if ops.is_empty() {
            return Ok(AppendInfo::default());
        }
        let mut buf = Vec::with_capacity(ops.len() * 17);
        for &op in ops {
            op.encode(&mut buf);
        }
        self.storage
            .write_at(self.len, &buf)
            .map_err(WalError::at("wal.append"))?;
        let mut fsync = std::time::Duration::ZERO;
        if self.fsync {
            let start = std::time::Instant::now();
            self.storage.sync().map_err(WalError::at("wal.fsync"))?;
            fsync = start.elapsed();
        }
        self.len += buf.len() as u64;
        Ok(AppendInfo {
            bytes: buf.len() as u64,
            fsync,
        })
    }

    /// Current log size in bytes (header included) — the compaction
    /// trigger input.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Drops every record, leaving just the header — called after the
    /// state they describe has been compacted into a snapshot file.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.storage
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(WalError::at("wal.truncate"))?;
        self.storage.sync().map_err(WalError::at("wal.fsync"))?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }
}

pub(crate) enum RecordAt {
    Op(WalOp, usize),
    End,
    Torn,
}

/// Reads the record at `off`; distinguishes a clean end, a torn tail, and
/// genuinely corrupt (non-tail) content. Shared with the replication
/// frame codec, which embeds runs of these records in its OPS frames.
pub(crate) fn read_record(buf: &[u8], off: usize) -> Result<RecordAt, PersistError> {
    if off == buf.len() {
        return Ok(RecordAt::End);
    }
    let Some(header) = buf.get(off..off + 8) else {
        return Ok(RecordAt::Torn); // length/crc prefix cut short
    };
    let (len_bytes, crc_bytes) = header.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap_or([0; 4]));
    if len == 0 || len > MAX_PAYLOAD {
        return Ok(RecordAt::Torn); // garbage length: interrupted write
    }
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap_or([0; 4]));
    let Some(payload) = buf.get(off + 8..off + 8 + len as usize) else {
        return Ok(RecordAt::Torn); // payload cut short
    };
    if crc32(payload) != crc {
        return Ok(RecordAt::Torn); // partially flushed payload
    }
    let op = WalOp::decode(payload, off as u64)?;
    Ok(RecordAt::Op(op, off + 8 + len as usize))
}

/// CRC-32 (IEEE 802.3) with a lazily built lookup table. Shared with the
/// replication frame codec so the wire and the log agree on checksums.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        #[allow(clippy::indexing_slicing)]
        {
            // analyze: allow(panic-surface): u8-derived index into a 256-entry table is always in bounds
            c = table[usize::from((c as u8) ^ b)] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use std::sync::Arc;
    use tkc_faults::{Failpoint, FaultFile, FaultKind, FaultPlan, FaultSite};

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_engine_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    const SCRIPT: [WalOp; 5] = [
        WalOp::AddVertices(6),
        WalOp::Insert(0, 1),
        WalOp::Insert(1, 2),
        WalOp::Remove(0, 1),
        WalOp::Insert(2, 0),
    ];

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = temp_wal("roundtrip.wal");
        let (mut wal, rec) = Wal::open(&path, true).unwrap();
        assert!(rec.ops.is_empty());
        wal.append(&SCRIPT[..2]).unwrap();
        wal.append(&SCRIPT[2..]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.ops, SCRIPT);
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn every_torn_prefix_recovers_a_record_prefix() {
        let path = temp_wal("torn.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_MAGIC.len()..full.len() {
            let torn_path = temp_wal("torn_cut.wal");
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let (wal, rec) = Wal::open(&torn_path, false).unwrap();
            // Recovered ops are exactly a prefix of what was written...
            assert_eq!(rec.ops, SCRIPT[..rec.ops.len()], "cut at {cut}");
            // ...and the file was truncated back to the last intact record.
            assert_eq!(
                wal.len_bytes(),
                std::fs::metadata(&torn_path).unwrap().len(),
                "cut at {cut}"
            );
            assert_eq!(rec.torn_bytes, (cut as u64) - wal.len_bytes());
        }
    }

    #[test]
    fn torn_tail_is_overwritten_by_later_appends() {
        let path = temp_wal("resume.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap(); // tear last record
        let (mut wal, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT[..SCRIPT.len() - 1]);
        wal.append(&[WalOp::Insert(4, 5)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, false).unwrap();
        let mut expected = SCRIPT[..SCRIPT.len() - 1].to_vec();
        expected.push(WalOp::Insert(4, 5));
        assert_eq!(rec.ops, expected);
    }

    #[test]
    fn flipped_payload_byte_truncates_from_there() {
        let path = temp_wal("bitflip.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the payload of the second record (header 8 + record 17 +
        // 8 bytes into the next record's payload region).
        let idx = WAL_MAGIC.len() + 17 + 8 + 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT[..1]);
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn alien_files_are_rejected_not_truncated() {
        let path = temp_wal("alien.wal");
        std::fs::write(&path, b"not a wal at all").unwrap();
        let err = Wal::open(&path, false).unwrap_err();
        assert_eq!(err.site, "wal.open");
        assert!(matches!(err.source, PersistError::BadMagic { .. }));
        let mut future = WAL_MAGIC;
        future[7] = 9;
        std::fs::write(&path, future).unwrap();
        let err = Wal::open(&path, false).unwrap_err();
        assert!(matches!(
            err.source,
            PersistError::UnsupportedVersion { found: 9, .. }
        ));
    }

    #[test]
    fn v1_logs_upgrade_in_place_on_open() {
        let path = temp_wal("upgrade_v1.wal");
        // Author a v1 log by hand: old magic, then the same record bytes.
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 1;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT, "v1 records must replay unchanged");
        assert_eq!(rec.torn_bytes, 0);
        let upgraded = std::fs::read(&path).unwrap();
        assert_eq!(upgraded[..8], WAL_MAGIC, "header must be rewritten to v2");
    }

    #[test]
    fn valid_checksum_with_unknown_tag_is_corrupt_not_torn() {
        let path = temp_wal("unknown_tag.wal");
        let mut bytes = WAL_MAGIC.to_vec();
        let payload = [9u8, 0, 0, 0, 0]; // tag 9, one u32 field
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path, false).unwrap_err();
        assert_eq!(err.site, "wal.open");
        assert!(matches!(err.source, PersistError::Corrupt { .. }));
    }

    #[test]
    fn reset_leaves_an_empty_replayable_log() {
        let path = temp_wal("reset.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), WAL_MAGIC.len() as u64);
        wal.append(&[WalOp::Insert(7, 8)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, vec![WalOp::Insert(7, 8)]);
    }

    fn faulted_wal(path: &std::path::Path, points: Vec<Failpoint>) -> (Wal, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::with_points(points, 99));
        let disk = DiskFile::open(path).unwrap();
        let storage = FaultFile::new(Box::new(disk), Arc::clone(&plan));
        let (wal, _) = Wal::open_with(Box::new(storage), true).unwrap();
        (wal, plan)
    }

    #[test]
    fn injected_enospc_fails_append_without_advancing() {
        let path = temp_wal("inject_enospc.wal");
        // Trigger 2 so the magic-header write (append invocation 1) lands.
        let (mut wal, plan) = faulted_wal(
            &path,
            vec![Failpoint {
                site: FaultSite::Append,
                kind: FaultKind::Enospc,
                trigger: 2,
                count: 1,
            }],
        );
        let before = wal.len_bytes();
        let err = wal.append(&SCRIPT[..2]).unwrap_err();
        assert_eq!(err.site, "wal.append");
        assert_eq!(wal.len_bytes(), before, "failed append advanced the log");
        assert_eq!(plan.injected_total(), 1);
        // The log stays usable once the failpoint is spent.
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT);
    }

    #[test]
    fn injected_short_write_recovers_a_prefix_on_reopen() {
        let path = temp_wal("inject_short.wal");
        let (mut wal, _plan) = faulted_wal(
            &path,
            vec![Failpoint {
                site: FaultSite::Append,
                kind: FaultKind::ShortWrite,
                trigger: 3, // magic, first batch, then tear the second
                count: 1,
            }],
        );
        wal.append(&SCRIPT[..2]).unwrap();
        let err = wal.append(&SCRIPT[2..]).unwrap_err();
        assert_eq!(err.site, "wal.append");
        drop(wal);
        // Plain reopen: the torn batch truncates away; acked ops survive.
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert!(rec.ops.len() >= 2, "acked records lost: {:?}", rec.ops);
        assert_eq!(rec.ops[..], SCRIPT[..rec.ops.len()]);
    }

    #[test]
    fn injected_fsync_failure_is_site_tagged() {
        let path = temp_wal("inject_fsync.wal");
        let (mut wal, _plan) = faulted_wal(
            &path,
            vec![Failpoint {
                site: FaultSite::Fsync,
                kind: FaultKind::Eio,
                trigger: 2, // survive the header fsync, fail the batch's
                count: 1,
            }],
        );
        let err = wal.append(&SCRIPT[..2]).unwrap_err();
        assert_eq!(err.site, "wal.fsync");
        assert!(!err.is_injected_crash());
    }

    #[test]
    fn injected_crash_latch_is_recognizable_and_survivable() {
        let path = temp_wal("inject_crash.wal");
        let (mut wal, plan) = faulted_wal(
            &path,
            vec![Failpoint {
                site: FaultSite::Append,
                kind: FaultKind::Crash,
                trigger: 30, // tear mid-way through the first record batch
                count: 1,
            }],
        );
        let err = wal.append(&SCRIPT).unwrap_err();
        assert!(err.is_injected_crash(), "got {err}");
        // Still "dead": reopening through the same plan fails too.
        let disk = DiskFile::open(&path).unwrap();
        let dead = FaultFile::new(Box::new(disk), Arc::clone(&plan));
        assert!(Wal::open_with(Box::new(dead), false)
            .unwrap_err()
            .is_injected_crash());
        // Restart: recovery truncates the torn tail and replays the rest.
        plan.clear_crash();
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops[..], SCRIPT[..rec.ops.len()]);
        assert!(
            rec.torn_bytes > 0,
            "expected a torn tail at the crash offset"
        );
    }
}
