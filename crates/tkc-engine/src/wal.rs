//! The write-ahead op log: length-prefixed, checksummed, versioned binary
//! records of graph mutations, fsynced per batch.
//!
//! ## Record layout
//!
//! ```text
//! file   := magic record*
//! magic  := "TKCWAL" 0x00 version(u8)            ; 8 bytes
//! record := len(u32 LE) crc(u32 LE) payload      ; len = payload bytes
//! payload:= 0x01 u(u32 LE) v(u32 LE)             ; insert edge {u, v}
//!         | 0x02 u(u32 LE) v(u32 LE)             ; remove edge {u, v}
//!         | 0x03 n(u32 LE)                       ; add n vertices
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. Recovery reads records until
//! the first torn one — a length prefix or payload cut short by a crash,
//! or a checksum mismatch — and **truncates the file there**: a partially
//! flushed tail never poisons the log, and everything before it replays
//! exactly. A record whose checksum passes but whose content is
//! unintelligible (unknown tag, wrong field width) is a real error, not a
//! torn tail — it means version skew or external corruption, and recovery
//! refuses to guess.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::OnceLock;

use tkc_core::persist::PersistError;

/// File magic: `TKCWAL`, a NUL, then the format version byte.
pub const WAL_MAGIC: [u8; 8] = *b"TKCWAL\x00\x01";

/// Hard upper bound on a record payload; anything larger is treated as a
/// torn length prefix (no legitimate op comes close).
const MAX_PAYLOAD: u32 = 64;

/// One durable graph mutation.
///
/// Ops name vertices, never edge ids — replay is therefore independent of
/// the id-allocation history of the process that wrote the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert edge `{u, v}` (idempotent at apply time: duplicates and self
    /// loops are skipped, and missing endpoints are created).
    Insert(u32, u32),
    /// Remove edge `{u, v}` (skipped when absent).
    Remove(u32, u32),
    /// Grow the vertex set by `n` isolated vertices.
    AddVertices(u32),
}

impl WalOp {
    fn encode(self, out: &mut Vec<u8>) {
        let payload_start = out.len() + 8;
        out.extend_from_slice(&[0; 8]); // len + crc placeholders
        match self {
            WalOp::Insert(u, v) => {
                out.push(1);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            WalOp::Remove(u, v) => {
                out.push(2);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            WalOp::AddVertices(n) => {
                out.push(3);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        let len = (out.len() - payload_start) as u32;
        let crc = crc32(&out[payload_start..]);
        out[payload_start - 8..payload_start - 4].copy_from_slice(&len.to_le_bytes());
        out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
    }

    fn decode(payload: &[u8], offset: u64) -> Result<WalOp, PersistError> {
        let field = |i: usize| -> Result<u32, PersistError> {
            payload
                .get(1 + i * 4..1 + i * 4 + 4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| PersistError::Corrupt {
                    offset,
                    reason: "payload shorter than its tag demands".to_string(),
                })
        };
        match payload.first() {
            Some(1) if payload.len() == 9 => Ok(WalOp::Insert(field(0)?, field(1)?)),
            Some(2) if payload.len() == 9 => Ok(WalOp::Remove(field(0)?, field(1)?)),
            Some(3) if payload.len() == 5 => Ok(WalOp::AddVertices(field(0)?)),
            Some(tag) => Err(PersistError::Corrupt {
                offset,
                reason: format!("unknown or mis-sized record tag {tag}"),
            }),
            None => Err(PersistError::Corrupt {
                offset,
                reason: "empty payload".to_string(),
            }),
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order.
    pub ops: Vec<WalOp>,
    /// Bytes of torn tail dropped (0 after a clean shutdown).
    pub torn_bytes: u64,
}

/// Byte and timing accounting for one [`Wal::append_with`] call, fed to
/// the engine's WAL metrics (this module stays observability-agnostic).
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendInfo {
    /// Encoded bytes written for the batch.
    pub bytes: u64,
    /// Time spent inside `sync_data` (zero with fsync off).
    pub fsync: std::time::Duration,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Valid byte length — the append position.
    len: u64,
    fsync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// intact record and truncating any torn tail. `fsync` controls
    /// whether each appended batch is flushed to stable storage before
    /// [`Wal::append`] returns.
    pub fn open(path: &Path, fsync: bool) -> Result<(Wal, Recovery), PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        if buf.is_empty() {
            file.write_all(&WAL_MAGIC)?;
            if fsync {
                file.sync_data()?;
            }
            let wal = Wal {
                file,
                len: WAL_MAGIC.len() as u64,
                fsync,
            };
            return Ok((wal, Recovery::default()));
        }
        if buf.len() < WAL_MAGIC.len() || buf[..6] != WAL_MAGIC[..6] || buf[6] != 0 {
            return Err(PersistError::BadMagic { expected: "TKCWAL" });
        }
        if buf[7] != WAL_MAGIC[7] {
            return Err(PersistError::UnsupportedVersion {
                format: "wal",
                found: u32::from(buf[7]),
            });
        }

        let mut ops = Vec::new();
        let mut off = WAL_MAGIC.len();
        loop {
            match read_record(&buf, off)? {
                RecordAt::Op(op, next) => {
                    ops.push(op);
                    off = next;
                }
                RecordAt::End => break,
                RecordAt::Torn => break,
            }
        }
        let torn_bytes = (buf.len() - off) as u64;
        if torn_bytes > 0 {
            file.set_len(off as u64)?;
            file.sync_data()?;
        }
        let wal = Wal {
            file,
            len: off as u64,
            fsync,
        };
        Ok((wal, Recovery { ops, torn_bytes }))
    }

    /// Appends a batch of ops as one write, then (if configured) fsyncs —
    /// the batch is durable when this returns.
    pub fn append(&mut self, ops: &[WalOp]) -> Result<(), PersistError> {
        self.append_with(ops).map(|_| ())
    }

    /// [`Wal::append`] returning byte/fsync accounting for the batch.
    pub fn append_with(&mut self, ops: &[WalOp]) -> Result<AppendInfo, PersistError> {
        if ops.is_empty() {
            return Ok(AppendInfo::default());
        }
        let mut buf = Vec::with_capacity(ops.len() * 17);
        for &op in ops {
            op.encode(&mut buf);
        }
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&buf)?;
        let mut fsync = std::time::Duration::ZERO;
        if self.fsync {
            let start = std::time::Instant::now();
            self.file.sync_data()?;
            fsync = start.elapsed();
        }
        self.len += buf.len() as u64;
        Ok(AppendInfo {
            bytes: buf.len() as u64,
            fsync,
        })
    }

    /// Current log size in bytes (header included) — the compaction
    /// trigger input.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Drops every record, leaving just the header — called after the
    /// state they describe has been compacted into a snapshot file.
    pub fn reset(&mut self) -> Result<(), PersistError> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.sync_data()?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }
}

enum RecordAt {
    Op(WalOp, usize),
    End,
    Torn,
}

/// Reads the record at `off`; distinguishes a clean end, a torn tail, and
/// genuinely corrupt (non-tail) content.
fn read_record(buf: &[u8], off: usize) -> Result<RecordAt, PersistError> {
    if off == buf.len() {
        return Ok(RecordAt::End);
    }
    let Some(header) = buf.get(off..off + 8) else {
        return Ok(RecordAt::Torn); // length/crc prefix cut short
    };
    let len = u32::from_le_bytes(header[..4].try_into().unwrap_or([0; 4]));
    if len == 0 || len > MAX_PAYLOAD {
        return Ok(RecordAt::Torn); // garbage length: interrupted write
    }
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap_or([0; 4]));
    let Some(payload) = buf.get(off + 8..off + 8 + len as usize) else {
        return Ok(RecordAt::Torn); // payload cut short
    };
    if crc32(payload) != crc {
        return Ok(RecordAt::Torn); // partially flushed payload
    }
    let op = WalOp::decode(payload, off as u64)?;
    Ok(RecordAt::Op(op, off + 8 + len as usize))
}

/// CRC-32 (IEEE 802.3) with a lazily built lookup table.
fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_engine_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    const SCRIPT: [WalOp; 5] = [
        WalOp::AddVertices(6),
        WalOp::Insert(0, 1),
        WalOp::Insert(1, 2),
        WalOp::Remove(0, 1),
        WalOp::Insert(2, 0),
    ];

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = temp_wal("roundtrip.wal");
        let (mut wal, rec) = Wal::open(&path, true).unwrap();
        assert!(rec.ops.is_empty());
        wal.append(&SCRIPT[..2]).unwrap();
        wal.append(&SCRIPT[2..]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, true).unwrap();
        assert_eq!(rec.ops, SCRIPT);
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn every_torn_prefix_recovers_a_record_prefix() {
        let path = temp_wal("torn.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_MAGIC.len()..full.len() {
            let torn_path = temp_wal("torn_cut.wal");
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let (wal, rec) = Wal::open(&torn_path, false).unwrap();
            // Recovered ops are exactly a prefix of what was written...
            assert_eq!(rec.ops, SCRIPT[..rec.ops.len()], "cut at {cut}");
            // ...and the file was truncated back to the last intact record.
            assert_eq!(
                wal.len_bytes(),
                std::fs::metadata(&torn_path).unwrap().len(),
                "cut at {cut}"
            );
            assert_eq!(rec.torn_bytes, (cut as u64) - wal.len_bytes());
        }
    }

    #[test]
    fn torn_tail_is_overwritten_by_later_appends() {
        let path = temp_wal("resume.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap(); // tear last record
        let (mut wal, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT[..SCRIPT.len() - 1]);
        wal.append(&[WalOp::Insert(4, 5)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, false).unwrap();
        let mut expected = SCRIPT[..SCRIPT.len() - 1].to_vec();
        expected.push(WalOp::Insert(4, 5));
        assert_eq!(rec.ops, expected);
    }

    #[test]
    fn flipped_payload_byte_truncates_from_there() {
        let path = temp_wal("bitflip.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the payload of the second record (header 8 + record 17 +
        // 8 bytes into the next record's payload region).
        let idx = WAL_MAGIC.len() + 17 + 8 + 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, SCRIPT[..1]);
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn alien_files_are_rejected_not_truncated() {
        let path = temp_wal("alien.wal");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(matches!(
            Wal::open(&path, false),
            Err(PersistError::BadMagic { .. })
        ));
        let mut future = WAL_MAGIC;
        future[7] = 9;
        std::fs::write(&path, future).unwrap();
        assert!(matches!(
            Wal::open(&path, false),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn valid_checksum_with_unknown_tag_is_corrupt_not_torn() {
        let path = temp_wal("unknown_tag.wal");
        let mut bytes = WAL_MAGIC.to_vec();
        let payload = [9u8, 0, 0, 0, 0]; // tag 9, one u32 field
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&path, false),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn reset_leaves_an_empty_replayable_log() {
        let path = temp_wal("reset.wal");
        let (mut wal, _) = Wal::open(&path, false).unwrap();
        wal.append(&SCRIPT).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), WAL_MAGIC.len() as u64);
        wal.append(&[WalOp::Insert(7, 8)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.ops, vec![WalOp::Insert(7, 8)]);
    }
}
