//! WAL-shipping replication: a primary streams its log to followers
//! that serve read-only epochs and survive node loss (DESIGN.md §13).
//!
//! ## Protocol
//!
//! Length-prefixed binary frames over TCP, one stream per follower:
//! `u32 len | u32 crc | payload`, crc32 (the WAL's own checksum) over
//! the payload. The first payload byte is the frame tag:
//!
//! | tag | frame     | payload after the tag                          |
//! |-----|-----------|------------------------------------------------|
//! | 01  | HELLO     | `last_seq u64, term u64` (follower → primary)  |
//! | 02  | OPS       | `first_seq u64, count u32`, WAL records        |
//! | 03  | STAMP     | `seq u64, kappa_stamp u64, term u64`           |
//! | 04  | SNAPMETA  | `seq u64, term u64, total_bytes u64`           |
//! | 05  | SNAPCHUNK | raw packed-store bytes                         |
//! | 06  | SNAPDONE  | (empty)                                        |
//! | 07  | FENCE     | `new_term u64`                                 |
//! | 08  | HEARTBEAT | `head_seq u64, term u64`                       |
//!
//! A follower handshakes with its last applied sequence number; the
//! primary either catches it up from the in-memory hub buffer (OPS
//! frames embed the WAL's own self-delimiting record encoding) or — if
//! the buffer was trimmed past it, its term disagrees, or it sent the
//! `u64::MAX` force-bootstrap sentinel after a divergence — streams a
//! packed-store snapshot (PR 8 format) before tailing live.
//!
//! ## Divergence probe
//!
//! Every [`ReplOptions::stamp_interval_ops`] applied ops the primary
//! checkpoints [`tkc_verify::kappa_stamp`] into the stream. Stream
//! order guarantees the follower sits at exactly that seq when the
//! STAMP arrives; a mismatch demotes it to `Diverged` (still read-only)
//! and forces a full re-bootstrap on reconnect.
//!
//! ## Fencing
//!
//! `PROMOTE` bumps the follower's term, best-effort sends FENCE
//! upstream, and stops tailing. A primary that hears a higher term
//! (FENCE, or a HELLO from the future) closes every follower stream and
//! drops to read-only — it was superseded and must not accept writes.
//!
//! ## Fault injection
//!
//! Link failpoints (`repl.connect`, `repl.send`, `repl.recv`; kinds
//! eio/short/bitflip/stall) consult the plan in [`ReplOptions`] around
//! every connect and frame, so the replication chaos harness can tear
//! links mid-stream deterministically.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_faults::{FaultKind, FaultPlan, FaultSite, WalStorage};
use tkc_obs::{Counter, Gauge, MetricsRegistry};

use crate::engine::Engine;
use crate::error::{EngineError, EngineState};
use crate::wal::{crc32, read_record, RecordAt, WalOp};

/// Failpoint site: a follower dialing its primary.
const CONNECT_SITE: &str = "repl.connect";
/// Failpoint site: one frame leaving a node.
const SEND_SITE: &str = "repl.send";
/// Failpoint site: one frame arriving at a node.
const RECV_SITE: &str = "repl.recv";

const TAG_HELLO: u8 = 0x01;
const TAG_OPS: u8 = 0x02;
const TAG_STAMP: u8 = 0x03;
const TAG_SNAPMETA: u8 = 0x04;
const TAG_SNAPCHUNK: u8 = 0x05;
const TAG_SNAPDONE: u8 = 0x06;
const TAG_FENCE: u8 = 0x07;
const TAG_HEARTBEAT: u8 = 0x08;

/// HELLO `last_seq` sentinel: "ignore my history, bootstrap me" — sent
/// after a divergence, where the follower's seq is not to be trusted.
const BOOTSTRAP_SENTINEL: u64 = u64::MAX;

/// Hard cap on a single frame (snapshots are chunked well below this).
const MAX_FRAME: usize = 4 << 20;
/// Snapshot chunk size.
const SNAP_CHUNK: usize = 256 << 10;
/// Hard cap on an assembled bootstrap snapshot.
const MAX_SNAPSHOT: u64 = 1 << 32;
/// Max ops batched into one OPS frame.
const OPS_BATCH: usize = 512;
/// Idle interval between heartbeats on a caught-up stream.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
/// A follower that hears nothing for this long tears down and redials.
const SILENCE_LIMIT: Duration = Duration::from_secs(10);

/// This node's replication role. Orthogonal to [`EngineState`]: a
/// follower is *read-only by role*, not by failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// No replication configured (the default single-node shape).
    Standalone,
    /// Accepts writes and streams its WAL to followers.
    Primary,
    /// Tails a primary; writes answer `ERR READONLY <primary-addr>`.
    Follower,
}

impl Role {
    /// The metrics/wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Role::Standalone => 0,
            Role::Primary => 1,
            Role::Follower => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Role {
        match v {
            1 => Role::Primary,
            2 => Role::Follower,
            _ => Role::Standalone,
        }
    }
}

/// Tunables for [`start`].
#[derive(Debug, Clone, Default)]
pub struct ReplOptions {
    /// Bind address for the replication listener (`Some` = this node
    /// serves followers; `127.0.0.1:0` picks an ephemeral port).
    pub repl_addr: Option<String>,
    /// Primary address to tail (`Some` = this node is a follower).
    pub follow: Option<String>,
    /// Applied ops between κ-stamp divergence checkpoints (0 = 256).
    pub stamp_interval_ops: u64,
    /// In-memory hub ring capacity in entries (0 = 65536); followers
    /// trimmed past it re-bootstrap from the packed store.
    pub hub_buffer: usize,
    /// Link failpoint plan (`repl.connect` / `repl.send` / `repl.recv`).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

/// Counters behind both the `STATS` keys and the `tkc_repl_*` gauges.
#[derive(Debug, Default)]
struct ReplShared {
    reconnects: AtomicU64,
    ops_shipped: AtomicU64,
    ops_applied: AtomicU64,
    lag_seq: AtomicU64,
    head_seq: AtomicU64,
    caught_up_nanos: AtomicU64,
    followers: AtomicU64,
    bootstraps: AtomicU64,
    divergences: AtomicU64,
}

impl ReplShared {
    /// Seconds since the follower last had zero seq lag (0 while caught
    /// up).
    fn lag_seconds(&self) -> u64 {
        if self.lag_seq.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let since =
            tkc_obs::process_nanos().saturating_sub(self.caught_up_nanos.load(Ordering::Relaxed));
        since / 1_000_000_000
    }
}

/// Prometheus families for the replication subsystem (engine registry).
#[derive(Debug, Clone)]
struct ReplMetrics {
    reconnects: Counter,
    ops_shipped: Counter,
    ops_applied: Counter,
    lag_seq: Gauge,
    lag_seconds: Gauge,
    followers: Gauge,
    bootstraps: Counter,
    divergences: Counter,
}

impl ReplMetrics {
    fn register(reg: &MetricsRegistry) -> ReplMetrics {
        ReplMetrics {
            reconnects: reg.counter(
                "tkc_repl_reconnects_total",
                "Follower reconnect attempts to the primary",
            ),
            ops_shipped: reg.counter(
                "tkc_repl_ops_shipped_total",
                "Ops shipped to followers over replication streams",
            ),
            ops_applied: reg.counter(
                "tkc_repl_ops_applied_total",
                "Replicated ops applied by this follower",
            ),
            lag_seq: reg.gauge(
                "tkc_repl_lag_seq",
                "Follower sequence lag behind the primary head",
            ),
            lag_seconds: reg.gauge(
                "tkc_repl_lag_seconds",
                "Seconds since this follower was last fully caught up",
            ),
            followers: reg.gauge(
                "tkc_repl_followers",
                "Live follower streams served by this primary",
            ),
            bootstraps: reg.counter(
                "tkc_repl_bootstraps_total",
                "Full snapshot bootstraps completed by this follower",
            ),
            divergences: reg.counter(
                "tkc_repl_divergences_total",
                "Kappa-stamp divergences caught by the probe",
            ),
        }
    }
}

/// One entry in the hub ring: a WAL op at its sequence number, or a
/// κ-stamp checkpoint anchored at the seq of the op just before it.
#[derive(Debug, Clone, Copy)]
enum Entry {
    Op(WalOp),
    Stamp { stamp: u64, term: u64 },
}

#[derive(Debug)]
struct HubState {
    entries: VecDeque<(u64, Entry)>,
    /// Lowest op seq still in `entries` (head + 1 when empty).
    base: u64,
    /// Highest op seq pushed so far.
    head: u64,
    closed: bool,
}

/// What [`ReplHub::collect_from`] hands a sender thread.
enum Collected {
    Items(Vec<(u64, Entry)>),
    /// `next` was trimmed out of the ring: bootstrap the follower.
    Behind,
    /// Caught up; nothing new inside the wait window.
    Empty,
    Closed,
}

/// The primary's fan-out buffer: ops (and stamp checkpoints) pushed
/// under the engine writer lock, consumed by one sender thread per
/// follower stream.
#[derive(Debug)]
struct ReplHub {
    state: Mutex<HubState>,
    cv: Condvar,
    cap: usize,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
}

impl ReplHub {
    fn new(base_seq: u64, cap: usize) -> ReplHub {
        ReplHub {
            state: Mutex::new(HubState {
                entries: VecDeque::new(),
                base: base_seq + 1,
                head: base_seq,
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(64),
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
        }
    }

    fn push_ops(&self, ops: &[WalOp], end_seq: u64) {
        let mut s = lock_hub(&self.state);
        let mut seq = end_seq.saturating_sub(ops.len() as u64);
        for &op in ops {
            seq += 1;
            s.entries.push_back((seq, Entry::Op(op)));
        }
        s.head = end_seq;
        while s.entries.len() > self.cap {
            if let Some((seq, entry)) = s.entries.pop_front() {
                if matches!(entry, Entry::Op(_)) {
                    s.base = seq + 1;
                }
            }
        }
        drop(s);
        self.cv.notify_all();
    }

    fn push_stamp(&self, seq: u64, stamp: u64, term: u64) {
        let mut s = lock_hub(&self.state);
        s.entries.push_back((seq, Entry::Stamp { stamp, term }));
        drop(s);
        self.cv.notify_all();
    }

    fn head(&self) -> u64 {
        lock_hub(&self.state).head
    }

    fn collect_from(&self, next: u64, max: usize, wait: Duration) -> Collected {
        let deadline = Instant::now() + wait;
        let mut s = lock_hub(&self.state);
        loop {
            if s.closed {
                return Collected::Closed;
            }
            if next < s.base {
                return Collected::Behind;
            }
            let items: Vec<(u64, Entry)> = s
                .entries
                .iter()
                .filter(|(seq, _)| *seq >= next)
                .take(max)
                .copied()
                .collect();
            if !items.is_empty() {
                return Collected::Items(items);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Collected::Empty;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(s, left)
                .unwrap_or_else(|p| p.into_inner());
            s = guard;
        }
    }

    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        lock_conns(&self.conns).push((id, stream));
        id
    }

    fn unregister(&self, id: u64) {
        lock_conns(&self.conns).retain(|(cid, _)| *cid != id);
    }

    fn conn_count(&self) -> usize {
        lock_conns(&self.conns).len()
    }

    fn close_all(&self) {
        {
            let mut s = lock_hub(&self.state);
            s.closed = true;
        }
        self.cv.notify_all();
        for (_, stream) in lock_conns(&self.conns).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn closed(&self) -> bool {
        lock_hub(&self.state).closed
    }
}

/// Follower-side control block: the supervised tail loop's shared
/// state, plus the upstream stream handle `PROMOTE` fences through.
#[derive(Debug)]
struct FollowerCtl {
    upstream_addr: String,
    stream: Mutex<Option<TcpStream>>,
    stop: AtomicBool,
    force_bootstrap: AtomicBool,
}

impl FollowerCtl {
    /// Records stream progress: advances the known head, recomputes seq
    /// lag, and mirrors both into the gauges.
    fn note_position(
        &self,
        shared: &ReplShared,
        metrics: &ReplMetrics,
        applied: u64,
        head: Option<u64>,
    ) {
        let cur = shared.head_seq.load(Ordering::Relaxed);
        let new_head = head.unwrap_or(applied).max(applied).max(cur);
        shared.head_seq.store(new_head, Ordering::Relaxed);
        let lag = new_head.saturating_sub(applied);
        shared.lag_seq.store(lag, Ordering::Relaxed);
        if lag == 0 {
            shared
                .caught_up_nanos
                .store(tkc_obs::process_nanos(), Ordering::Relaxed);
        }
        metrics.lag_seq.set(lag as f64);
        metrics.lag_seconds.set(shared.lag_seconds() as f64);
    }
}

/// The engine's handle into the replication subsystem: the hub to ship
/// applied ops into (primary), the follower control block, and the
/// shared counters behind `STATS`/`HEALTH`.
#[derive(Debug)]
pub(crate) struct ReplHandle {
    hub: Option<Arc<ReplHub>>,
    follower: Option<Arc<FollowerCtl>>,
    shared: Arc<ReplShared>,
    stamp_interval: u64,
    ops_since_stamp: AtomicU64,
}

impl ReplHandle {
    /// Called under the engine writer lock after every applied batch:
    /// ships the ops into the hub ring and, every `stamp_interval`
    /// ops, checkpoints the κ-stamp into the stream.
    pub(crate) fn on_apply(&self, ops: &[WalOp], seq: u64, core: &DynamicTriangleKCore, term: u64) {
        let Some(hub) = &self.hub else { return };
        hub.push_ops(ops, seq);
        let since = self
            .ops_since_stamp
            .fetch_add(ops.len() as u64, Ordering::Relaxed)
            + ops.len() as u64;
        if since >= self.stamp_interval {
            self.ops_since_stamp.store(0, Ordering::Relaxed);
            let stamp = tkc_verify::kappa_stamp(core.graph(), core.kappa_slice());
            hub.push_stamp(seq, stamp, term);
        }
    }

    /// The primary this node follows, if it is a follower.
    pub(crate) fn primary_addr(&self) -> Option<String> {
        self.follower.as_ref().map(|f| f.upstream_addr.clone())
    }

    /// Closes every follower stream (fencing a superseded primary).
    pub(crate) fn close_followers(&self) {
        if let Some(hub) = &self.hub {
            hub.close_all();
        }
    }

    /// Follower → writable transition: stops tailing, best-effort sends
    /// FENCE upstream. Returns true when this node also runs a hub (it
    /// becomes Primary rather than Standalone).
    pub(crate) fn promote(&self, new_term: u64) -> bool {
        if let Some(f) = &self.follower {
            f.stop.store(true, Ordering::Relaxed);
            if let Some(mut stream) = lock_upstream(&f.stream).take() {
                let mut payload = vec![TAG_FENCE];
                payload.extend_from_slice(&new_term.to_le_bytes());
                let _ = write_frame(&mut stream, &payload, None);
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        self.hub.is_some()
    }

    /// (seq lag, seconds lag) of this follower.
    pub(crate) fn lag(&self) -> (u64, u64) {
        (
            self.shared.lag_seq.load(Ordering::Relaxed),
            self.shared.lag_seconds(),
        )
    }

    /// The `STATS` key/value lines the engine appends when replication
    /// is attached.
    pub(crate) fn stats_keys(&self) -> Vec<(&'static str, u64)> {
        let s = &self.shared;
        vec![
            ("repl_reconnects", s.reconnects.load(Ordering::Relaxed)),
            ("repl_ops_shipped", s.ops_shipped.load(Ordering::Relaxed)),
            ("repl_ops_applied", s.ops_applied.load(Ordering::Relaxed)),
            ("repl_lag_seq", s.lag_seq.load(Ordering::Relaxed)),
            ("repl_lag_seconds", s.lag_seconds()),
            ("repl_followers", s.followers.load(Ordering::Relaxed)),
            ("repl_bootstraps", s.bootstraps.load(Ordering::Relaxed)),
            ("repl_divergences", s.divergences.load(Ordering::Relaxed)),
        ]
    }
}

/// A running replication subsystem; [`ReplServer::shutdown`] stops the
/// accept loop, the follower tail loop, and every follower stream.
#[derive(Debug)]
pub struct ReplServer {
    repl_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    hub: Option<Arc<ReplHub>>,
    ctl: Option<Arc<FollowerCtl>>,
    threads: Vec<JoinHandle<()>>,
}

impl ReplServer {
    /// The bound replication listener address (resolves `:0`).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// Stops every replication thread and closes every stream.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(ctl) = &self.ctl {
            ctl.stop.store(true, Ordering::Relaxed);
            if let Some(stream) = lock_upstream(&ctl.stream).take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(hub) = &self.hub {
            hub.close_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Attaches the replication subsystem to `engine` per `opts`: binds the
/// replication listener (primary), spawns the supervised tail loop
/// (follower), registers the `tkc_repl_*` families, and installs the
/// [`ReplHandle`] the engine ships applied ops through.
pub fn start(engine: &Arc<Engine>, opts: ReplOptions) -> Result<ReplServer, EngineError> {
    let metrics = ReplMetrics::register(engine.registry());
    let shared = Arc::new(ReplShared::default());
    let stop = Arc::new(AtomicBool::new(false));
    let stamp_interval = if opts.stamp_interval_ops == 0 {
        256
    } else {
        opts.stamp_interval_ops
    };
    let hub_cap = if opts.hub_buffer == 0 {
        65536
    } else {
        opts.hub_buffer
    };

    let mut hub = None;
    let mut ctl = None;
    let mut repl_addr = None;
    let mut listener_slot = None;
    if let Some(addr) = &opts.repl_addr {
        let listener = TcpListener::bind(addr)?;
        repl_addr = Some(listener.local_addr()?);
        listener.set_nonblocking(true)?;
        let h = Arc::new(ReplHub::new(engine.applied_seq(), hub_cap));
        hub = Some(Arc::clone(&h));
        listener_slot = Some((listener, h));
    }
    if let Some(up) = &opts.follow {
        ctl = Some(Arc::new(FollowerCtl {
            upstream_addr: up.clone(),
            stream: Mutex::new(None),
            stop: AtomicBool::new(false),
            force_bootstrap: AtomicBool::new(false),
        }));
    }

    engine.set_repl(ReplHandle {
        hub: hub.clone(),
        follower: ctl.clone(),
        shared: Arc::clone(&shared),
        stamp_interval,
        ops_since_stamp: AtomicU64::new(0),
    });
    if ctl.is_some() {
        engine.set_role(Role::Follower);
        engine.set_state(EngineState::Follower);
    } else if hub.is_some() {
        engine.set_role(Role::Primary);
    }

    let mut threads = Vec::new();
    if let Some((listener, h)) = listener_slot {
        let accept_engine = Arc::clone(engine);
        let accept_stop = Arc::clone(&stop);
        let accept_metrics = metrics.clone();
        let accept_shared = Arc::clone(&shared);
        let plan = opts.fault_plan.clone();
        threads.push(std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_engine,
                h,
                accept_shared,
                accept_metrics,
                plan,
                accept_stop,
            );
        }));
    }
    if let Some(c) = &ctl {
        let tail_engine = Arc::clone(engine);
        let tail_ctl = Arc::clone(c);
        let tail_metrics = metrics.clone();
        let tail_shared = Arc::clone(&shared);
        let plan = opts.fault_plan.clone();
        threads.push(std::thread::spawn(move || {
            tail_loop(tail_engine, tail_ctl, tail_shared, tail_metrics, plan);
        }));
    }

    Ok(ReplServer {
        repl_addr,
        stop,
        hub,
        ctl,
        threads,
    })
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame, consulting the `repl.send` failpoint: eio fails
/// outright, short truncates the frame on the wire, bitflip corrupts a
/// payload byte (the peer's crc check catches it), stall sleeps then
/// fails.
fn write_frame(
    stream: &mut TcpStream,
    payload: &[u8],
    plan: Option<&Arc<FaultPlan>>,
) -> io::Result<()> {
    if let Some(kind) = plan.and_then(|p| p.inject(FaultSite::ReplSend)) {
        match kind {
            FaultKind::ShortWrite => {
                let mut buf = frame_bytes(payload);
                let cut = buf.len().saturating_sub(1).max(4);
                buf.truncate(cut);
                let _ = stream.write_all(&buf);
                return Err(io::Error::other(format!(
                    "injected short write at {SEND_SITE}"
                )));
            }
            FaultKind::BitFlip => {
                let mut buf = frame_bytes(payload);
                let mid = 8 + payload.len() / 2;
                if let Some(b) = buf.get_mut(mid) {
                    *b ^= 0x10;
                }
                return stream.write_all(&buf);
            }
            FaultKind::Stall => {
                std::thread::sleep(Duration::from_millis(100));
                return Err(io::Error::other(format!("injected stall at {SEND_SITE}")));
            }
            _ => {
                return Err(io::Error::other(format!(
                    "injected {} at {SEND_SITE}",
                    kind.as_str()
                )))
            }
        }
    }
    stream.write_all(&frame_bytes(payload))
}

/// Reads one frame, verifying length bounds and the payload crc; the
/// `repl.recv` failpoint tears the link (stall sleeps first).
fn read_frame(stream: &mut TcpStream, plan: Option<&Arc<FaultPlan>>) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 8];
    stream.read_exact(&mut header)?;
    if let Some(kind) = plan.and_then(|p| p.inject(FaultSite::ReplRecv)) {
        if kind == FaultKind::Stall {
            std::thread::sleep(Duration::from_millis(100));
        }
        return Err(io::Error::other(format!(
            "injected {} at {RECV_SITE}",
            kind.as_str()
        )));
    }
    let (len_b, crc_b) = header.split_at(4);
    let len = u32::from_le_bytes(len_b.try_into().unwrap_or([0; 4])) as usize;
    let crc = u32::from_le_bytes(crc_b.try_into().unwrap_or([0; 4]));
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::other(format!("frame length {len} out of range")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(io::Error::other("frame crc mismatch"));
    }
    Ok(payload)
}

fn u64_at(p: &[u8], off: usize) -> io::Result<u64> {
    p.get(off..off + 8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| io::Error::other("frame truncated"))
}

fn u32_at(p: &[u8], off: usize) -> io::Result<u32> {
    p.get(off..off + 4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| io::Error::other("frame truncated"))
}

fn hello_payload(last_seq: u64, term: u64) -> Vec<u8> {
    let mut p = vec![TAG_HELLO];
    p.extend_from_slice(&last_seq.to_le_bytes());
    p.extend_from_slice(&term.to_le_bytes());
    p
}

fn ops_payload(first_seq: u64, ops: &[WalOp]) -> Vec<u8> {
    let mut p = Vec::with_capacity(13 + ops.len() * 17);
    p.push(TAG_OPS);
    p.extend_from_slice(&first_seq.to_le_bytes());
    p.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for &op in ops {
        op.encode(&mut p);
    }
    p
}

/// Decodes an OPS payload back into `(first_seq, ops)` using the WAL's
/// own record reader — wire and log share one codec.
fn decode_ops(p: &[u8]) -> io::Result<(u64, Vec<WalOp>)> {
    let first_seq = u64_at(p, 1)?;
    let count = u32_at(p, 9)? as usize;
    if count > MAX_FRAME / 9 {
        return Err(io::Error::other("ops frame count out of range"));
    }
    let mut ops = Vec::with_capacity(count);
    let mut off = 13;
    while ops.len() < count {
        match read_record(p, off) {
            Ok(RecordAt::Op(op, next)) => {
                ops.push(op);
                off = next;
            }
            Ok(RecordAt::End | RecordAt::Torn) => {
                return Err(io::Error::other("ops frame truncated"));
            }
            Err(e) => return Err(io::Error::other(format!("ops frame corrupt: {e}"))),
        }
    }
    Ok((first_seq, ops))
}

fn three_u64_payload(tag: u8, a: u64, b: u64, c: u64) -> Vec<u8> {
    let mut p = vec![tag];
    p.extend_from_slice(&a.to_le_bytes());
    p.extend_from_slice(&b.to_le_bytes());
    p.extend_from_slice(&c.to_le_bytes());
    p
}

fn heartbeat_payload(head_seq: u64, term: u64) -> Vec<u8> {
    let mut p = vec![TAG_HEARTBEAT];
    p.extend_from_slice(&head_seq.to_le_bytes());
    p.extend_from_slice(&term.to_le_bytes());
    p
}

// ---------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    hub: Arc<ReplHub>,
    shared: Arc<ReplShared>,
    metrics: ReplMetrics,
    plan: Option<Arc<FaultPlan>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) && !hub.closed() {
        match listener.accept() {
            Ok((stream, peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let engine = Arc::clone(&engine);
                let hub = Arc::clone(&hub);
                let shared = Arc::clone(&shared);
                let metrics = metrics.clone();
                let plan = plan.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    if let Err(e) =
                        serve_follower(engine, hub, &shared, &metrics, plan, stream, &stop)
                    {
                        tkc_obs::warn!("replication stream to {peer} ended: {e}");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Serves one follower stream: HELLO handshake (with term fencing),
/// snapshot bootstrap when the follower is behind the hub ring, then a
/// live tail of OPS/STAMP/HEARTBEAT frames. A small reader thread
/// watches the stream for inbound FENCE frames.
fn serve_follower(
    engine: Arc<Engine>,
    hub: Arc<ReplHub>,
    shared: &ReplShared,
    metrics: &ReplMetrics,
    plan: Option<Arc<FaultPlan>>,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let hello = read_frame(&mut stream, plan.as_ref())?;
    if hello.first() != Some(&TAG_HELLO) {
        return Err(io::Error::other("expected HELLO"));
    }
    let last_seq = u64_at(&hello, 1)?;
    let their_term = u64_at(&hello, 9)?;
    if their_term > engine.term() {
        // A promoted follower is telling us we were superseded.
        engine.fence(their_term);
        return Err(io::Error::other(format!(
            "fenced by follower hello at term {their_term}"
        )));
    }
    stream.set_read_timeout(None)?;
    let conn_id = hub.register(stream.try_clone()?);
    shared
        .followers
        .store(hub.conn_count() as u64, Ordering::Relaxed);
    metrics.followers.set(hub.conn_count() as f64);
    {
        // FENCE watcher: blocks on the stream until it errors (stream
        // shut down at unregister) or a FENCE frame arrives.
        let mut rd = stream.try_clone()?;
        let fence_engine = Arc::clone(&engine);
        std::thread::spawn(move || loop {
            match read_frame(&mut rd, None) {
                Ok(p) if p.first() == Some(&TAG_FENCE) => {
                    if let Ok(term) = u64_at(&p, 1) {
                        fence_engine.fence(term);
                    }
                    let _ = rd.shutdown(Shutdown::Both);
                    return;
                }
                Ok(_) => {}
                Err(_) => return,
            }
        });
    }
    let result = stream_entries(
        &engine,
        &hub,
        shared,
        metrics,
        plan.as_ref(),
        &mut stream,
        stop,
        last_seq,
        their_term,
    );
    hub.unregister(conn_id);
    shared
        .followers
        .store(hub.conn_count() as u64, Ordering::Relaxed);
    metrics.followers.set(hub.conn_count() as f64);
    let _ = stream.shutdown(Shutdown::Both);
    result
}

#[allow(clippy::too_many_arguments)]
fn stream_entries(
    engine: &Arc<Engine>,
    hub: &Arc<ReplHub>,
    shared: &ReplShared,
    metrics: &ReplMetrics,
    plan: Option<&Arc<FaultPlan>>,
    stream: &mut TcpStream,
    stop: &AtomicBool,
    last_seq: u64,
    their_term: u64,
) -> io::Result<()> {
    // A sentinel HELLO, a term mismatch (diverged history), or a seq
    // from our future all mean the follower's log cannot be trusted to
    // align with ours: stream a snapshot instead of catching up.
    let mut force =
        last_seq == BOOTSTRAP_SENTINEL || their_term != engine.term() || last_seq > hub.head();
    let mut next = if force { 0 } else { last_seq + 1 };
    loop {
        if stop.load(Ordering::Relaxed) || hub.closed() {
            return Ok(());
        }
        if force {
            let (bytes, seq, term) = engine
                .snapshot_for_replication()
                .map_err(|e| io::Error::other(format!("snapshot capture: {e}")))?;
            write_frame(
                stream,
                &three_u64_payload(TAG_SNAPMETA, seq, term, bytes.len() as u64),
                plan,
            )?;
            for chunk in bytes.chunks(SNAP_CHUNK) {
                let mut p = Vec::with_capacity(1 + chunk.len());
                p.push(TAG_SNAPCHUNK);
                p.extend_from_slice(chunk);
                write_frame(stream, &p, plan)?;
            }
            write_frame(stream, &[TAG_SNAPDONE], plan)?;
            next = seq + 1;
            force = false;
            continue;
        }
        match hub.collect_from(next, OPS_BATCH, HEARTBEAT_EVERY) {
            Collected::Closed => return Ok(()),
            Collected::Behind => {
                force = true;
            }
            Collected::Empty => {
                write_frame(stream, &heartbeat_payload(hub.head(), engine.term()), plan)?;
            }
            Collected::Items(items) => {
                let mut ops: Vec<WalOp> = Vec::new();
                let mut first = next;
                for (seq, entry) in items {
                    match entry {
                        Entry::Op(op) => {
                            if ops.is_empty() {
                                first = seq;
                            }
                            ops.push(op);
                            next = seq + 1;
                        }
                        Entry::Stamp { stamp, term } => {
                            if !ops.is_empty() {
                                write_frame(stream, &ops_payload(first, &ops), plan)?;
                                shared
                                    .ops_shipped
                                    .fetch_add(ops.len() as u64, Ordering::Relaxed);
                                metrics.ops_shipped.add(ops.len() as u64);
                                ops.clear();
                            }
                            write_frame(
                                stream,
                                &three_u64_payload(TAG_STAMP, seq, stamp, term),
                                plan,
                            )?;
                        }
                    }
                }
                if !ops.is_empty() {
                    write_frame(stream, &ops_payload(first, &ops), plan)?;
                    shared
                        .ops_shipped
                        .fetch_add(ops.len() as u64, Ordering::Relaxed);
                    metrics.ops_shipped.add(ops.len() as u64);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Follower side
// ---------------------------------------------------------------------

/// The supervised follower loop: dial, handshake, tail; on any link
/// error reconnect with capped exponential backoff + deterministic
/// jitter (the PR 5 recovery-supervisor pattern).
fn tail_loop(
    engine: Arc<Engine>,
    ctl: Arc<FollowerCtl>,
    shared: Arc<ReplShared>,
    metrics: ReplMetrics,
    plan: Option<Arc<FaultPlan>>,
) {
    let mut rng = tkc_obs::process_nanos() | 1;
    let mut attempt: u32 = 0;
    while !ctl.stop.load(Ordering::Relaxed) {
        match tail_once(
            &engine,
            &ctl,
            &shared,
            &metrics,
            plan.as_ref(),
            &mut attempt,
        ) {
            Ok(()) => break,
            Err(e) => {
                if ctl.stop.load(Ordering::Relaxed) {
                    break;
                }
                tkc_obs::warn!(
                    "replication link to {}: {e}; reconnecting",
                    ctl.upstream_addr
                );
                shared.reconnects.fetch_add(1, Ordering::Relaxed);
                metrics.reconnects.inc();
                attempt = attempt.saturating_add(1);
                let base = Duration::from_millis(50);
                let exp = base.saturating_mul(1u32 << attempt.min(6));
                let capped = exp.min(Duration::from_secs(2));
                // Up to +25% jitter so a restarted cluster's followers
                // don't redial in phase.
                // analyze: allow(panic-surface): divisor is `x / 4 + 1`, structurally nonzero
                let jitter = tkc_faults::xorshift(&mut rng) % (capped.as_nanos() as u64 / 4 + 1);
                nap(&ctl.stop, capped + Duration::from_nanos(jitter));
            }
        }
    }
}

/// Sleeps `total` in small slices, returning early when `stop` is set.
fn nap(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::Relaxed) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// Buffer for an in-flight snapshot bootstrap.
struct SnapBuffer {
    seq: u64,
    term: u64,
    total: u64,
    bytes: Vec<u8>,
}

/// One connection lifetime: returns `Ok` only on a clean stop
/// (shutdown or promotion); any error means "reconnect".
fn tail_once(
    engine: &Arc<Engine>,
    ctl: &FollowerCtl,
    shared: &ReplShared,
    metrics: &ReplMetrics,
    plan: Option<&Arc<FaultPlan>>,
    attempt: &mut u32,
) -> io::Result<()> {
    if let Some(kind) = plan.and_then(|p| p.inject(FaultSite::ReplConnect)) {
        if kind == FaultKind::Stall {
            std::thread::sleep(Duration::from_millis(100));
        }
        return Err(io::Error::other(format!(
            "injected {} at {CONNECT_SITE}",
            kind.as_str()
        )));
    }
    let mut stream = TcpStream::connect(&ctl.upstream_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    *lock_upstream(&ctl.stream) = stream.try_clone().ok();
    let last = if ctl.force_bootstrap.load(Ordering::Relaxed) {
        BOOTSTRAP_SENTINEL
    } else {
        engine.applied_seq()
    };
    write_frame(&mut stream, &hello_payload(last, engine.term()), plan)?;
    let mut snap: Option<SnapBuffer> = None;
    let mut last_heard = Instant::now();
    loop {
        if ctl.stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let payload = match read_frame(&mut stream, plan) {
            Ok(p) => p,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_heard.elapsed() > SILENCE_LIMIT {
                    return Err(io::Error::other(format!(
                        "upstream silent for {SILENCE_LIMIT:?}"
                    )));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        *attempt = 0;
        last_heard = Instant::now();
        match payload.first().copied() {
            Some(TAG_OPS) => {
                let (first_seq, ops) = decode_ops(&payload)?;
                let applied = engine.applied_seq();
                if first_seq != applied + 1 {
                    return Err(io::Error::other(format!(
                        "seq gap: expected {}, got {first_seq}",
                        applied + 1
                    )));
                }
                engine
                    .apply_replicated(&ops)
                    .map_err(|e| io::Error::other(format!("replicated apply: {e}")))?;
                shared
                    .ops_applied
                    .fetch_add(ops.len() as u64, Ordering::Relaxed);
                metrics.ops_applied.add(ops.len() as u64);
                ctl.note_position(shared, metrics, engine.applied_seq(), None);
            }
            Some(TAG_STAMP) => {
                let seq = u64_at(&payload, 1)?;
                let stamp = u64_at(&payload, 9)?;
                let term = u64_at(&payload, 17)?;
                if term > engine.term() {
                    engine.set_term(term);
                }
                // Stream order puts us at exactly `seq` when the stamp
                // arrives; anything else is a skipped checkpoint from a
                // catch-up, not a divergence.
                if seq == engine.applied_seq() {
                    let local = engine.kappa_stamp_now();
                    if local != stamp {
                        engine.set_state(EngineState::Diverged);
                        ctl.force_bootstrap.store(true, Ordering::Relaxed);
                        shared.divergences.fetch_add(1, Ordering::Relaxed);
                        metrics.divergences.inc();
                        return Err(io::Error::other(format!(
                            "kappa divergence at seq {seq}: local {local:#018x} != primary {stamp:#018x}"
                        )));
                    }
                }
            }
            Some(TAG_SNAPMETA) => {
                let seq = u64_at(&payload, 1)?;
                let term = u64_at(&payload, 9)?;
                let total = u64_at(&payload, 17)?;
                if total > MAX_SNAPSHOT {
                    return Err(io::Error::other(format!("snapshot of {total} bytes")));
                }
                snap = Some(SnapBuffer {
                    seq,
                    term,
                    total,
                    bytes: Vec::with_capacity((total as usize).min(1 << 20)),
                });
            }
            Some(TAG_SNAPCHUNK) => {
                let Some(s) = snap.as_mut() else {
                    return Err(io::Error::other("SNAPCHUNK outside a snapshot"));
                };
                s.bytes.extend_from_slice(payload.get(1..).unwrap_or(&[]));
                if s.bytes.len() as u64 > s.total {
                    return Err(io::Error::other("snapshot overflowed SNAPMETA size"));
                }
            }
            Some(TAG_SNAPDONE) => {
                let Some(s) = snap.take() else {
                    return Err(io::Error::other("SNAPDONE outside a snapshot"));
                };
                if s.bytes.len() as u64 != s.total {
                    return Err(io::Error::other(format!(
                        "snapshot cut short: {} of {} bytes",
                        s.bytes.len(),
                        s.total
                    )));
                }
                engine
                    .install_snapshot(&s.bytes, s.seq, s.term)
                    .map_err(|e| io::Error::other(format!("snapshot install: {e}")))?;
                ctl.force_bootstrap.store(false, Ordering::Relaxed);
                engine.set_state(EngineState::Follower);
                shared.bootstraps.fetch_add(1, Ordering::Relaxed);
                metrics.bootstraps.inc();
                ctl.note_position(shared, metrics, s.seq, Some(s.seq));
            }
            Some(TAG_HEARTBEAT) => {
                let head = u64_at(&payload, 1)?;
                let term = u64_at(&payload, 9)?;
                if term > engine.term() {
                    engine.set_term(term);
                }
                ctl.note_position(shared, metrics, engine.applied_seq(), Some(head));
            }
            Some(TAG_FENCE) => {
                let term = u64_at(&payload, 1)?;
                if term > engine.term() {
                    engine.set_term(term);
                }
            }
            _ => return Err(io::Error::other("unknown frame tag")),
        }
    }
}

// ---------------------------------------------------------------------
// Support
// ---------------------------------------------------------------------

/// In-memory [`WalStorage`] the bootstrap snapshot is packed into.
#[derive(Debug, Default)]
pub(crate) struct MemStorage {
    buf: Vec<u8>,
}

impl MemStorage {
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl WalStorage for MemStorage {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.buf.clone())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let off = offset as usize;
        if self.buf.len() < off + data.len() {
            self.buf.resize(off + data.len(), 0);
        }
        if let Some(dst) = self.buf.get_mut(off..off + data.len()) {
            dst.copy_from_slice(data);
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.buf.resize(len as usize, 0);
        Ok(())
    }
}

fn lock_hub<'a>(m: &'a Mutex<HubState>) -> std::sync::MutexGuard<'a, HubState> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_conns<'a>(
    m: &'a Mutex<Vec<(u64, TcpStream)>>,
) -> std::sync::MutexGuard<'a, Vec<(u64, TcpStream)>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_upstream<'a>(
    m: &'a Mutex<Option<TcpStream>>,
) -> std::sync::MutexGuard<'a, Option<TcpStream>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn role_round_trips_through_u8() {
        for r in [Role::Standalone, Role::Primary, Role::Follower] {
            assert_eq!(Role::from_u8(r.as_u8()), r);
        }
    }

    #[test]
    fn ops_payload_round_trips_through_the_wal_codec() {
        let ops = [
            WalOp::Insert(1, 2),
            WalOp::Remove(3, 4),
            WalOp::AddVertices(9),
        ];
        let p = ops_payload(42, &ops);
        assert_eq!(p.first(), Some(&TAG_OPS));
        let (first, decoded) = decode_ops(&p).unwrap();
        assert_eq!(first, 42);
        assert_eq!(decoded, ops);
    }

    #[test]
    fn corrupt_ops_payload_is_rejected_not_panicked() {
        let p = ops_payload(7, &[WalOp::Insert(0, 1)]);
        let mut flipped = p.clone();
        *flipped.last_mut().unwrap() ^= 0xFF;
        assert!(decode_ops(&flipped).is_err());
        let truncated = &p[..p.len() - 3];
        assert!(decode_ops(truncated).is_err());
    }

    #[test]
    fn hub_catch_up_trim_and_behind() {
        let hub = ReplHub::new(0, 64);
        let ops: Vec<WalOp> = (0..4u32).map(|i| WalOp::Insert(i, i + 1)).collect();
        hub.push_ops(&ops, 4);
        hub.push_stamp(4, 0xABCD, 0);
        match hub.collect_from(1, 100, Duration::from_millis(10)) {
            Collected::Items(items) => {
                assert_eq!(items.len(), 5);
                assert!(matches!(items[0], (1, Entry::Op(WalOp::Insert(0, 1)))));
                assert!(matches!(items[4], (4, Entry::Stamp { stamp: 0xABCD, .. })));
            }
            _ => panic!("expected items"),
        }
        // From the middle: only seq >= 3 (the stale stamp is skipped).
        match hub.collect_from(3, 100, Duration::from_millis(10)) {
            Collected::Items(items) => assert_eq!(items.len(), 3),
            _ => panic!("expected items"),
        }
        // Caught up: nothing within the window.
        assert!(matches!(
            hub.collect_from(5, 100, Duration::from_millis(10)),
            Collected::Empty
        ));
        // Overflow the ring: early seqs are trimmed, stragglers must
        // bootstrap.
        let many: Vec<WalOp> = (0..100u32).map(|i| WalOp::Insert(i, i + 1)).collect();
        hub.push_ops(&many, 104);
        assert!(matches!(
            hub.collect_from(1, 100, Duration::from_millis(10)),
            Collected::Behind
        ));
        hub.close_all();
        assert!(matches!(
            hub.collect_from(50, 100, Duration::from_millis(10)),
            Collected::Closed
        ));
    }

    #[test]
    fn mem_storage_round_trips_writes() {
        let mut m = MemStorage::default();
        m.write_at(0, b"hello").unwrap();
        m.write_at(5, b" world").unwrap();
        assert_eq!(m.read_all().unwrap(), b"hello world");
        m.set_len(5).unwrap();
        assert_eq!(m.into_bytes(), b"hello");
    }

    #[test]
    fn frame_codec_detects_corruption() {
        let payload = hello_payload(9, 2);
        let bytes = frame_bytes(&payload);
        assert_eq!(bytes.len(), payload.len() + 8);
        // A clean frame parses back (via a loopback socket pair).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        write_frame(&mut tx, &payload, None).unwrap();
        let got = read_frame(&mut rx, None).unwrap();
        assert_eq!(got, payload);
        assert_eq!(u64_at(&got, 1).unwrap(), 9);
        assert_eq!(u64_at(&got, 9).unwrap(), 2);
        // A corrupted payload byte fails the crc check.
        let mut bad = bytes.clone();
        bad[10] ^= 0x01;
        tx.write_all(&bad).unwrap();
        assert!(read_frame(&mut rx, None).is_err());
    }
}
