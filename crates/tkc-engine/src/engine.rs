//! The durable engine: a [`DynamicTriangleKCore`] writer behind a
//! write-ahead log, publishing immutable epoch snapshots for readers.
//!
//! ## Write path
//!
//! Every mutation batch is appended to the WAL (fsync'd) **before** it is
//! applied to the in-memory maintainer — a crash at any point replays to
//! exactly the acknowledged state. Periodically the log is *compacted*:
//! the full graph + κ state is written to a snapshot file (atomic
//! tmp-write + rename, via `tkc-core::persist::write_state`) and the log
//! is reset, bounding recovery time.
//!
//! ## Read path
//!
//! Readers never touch the writer. [`Engine::snapshot`] hands out an
//! `Arc<EpochSnapshot>` — an immutable graph clone, its κ vector wrapped
//! as a [`Decomposition`] view, and a frozen [`CsrGraph`] — published
//! atomically by swapping the `Arc` under a briefly held `RwLock` (readers
//! hold the read lock only long enough to clone the `Arc`, so queries
//! never wait on ingest, and in-flight queries keep their epoch alive
//! after the next one is published).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use tkc_core::decompose::Decomposition;
use tkc_core::dynamic::{DynamicTriangleKCore, UpdateStats};
use tkc_core::extract::cores_at_level;
use tkc_core::persist::{
    read_state, read_state_header, verify_store_stamp, write_state_tagged, PersistError,
};
use tkc_faults::{DiskFile, FaultFile, FaultPlan};
use tkc_graph::csr::edge_supports_csr;
use tkc_graph::{CsrGraph, Graph, VertexId};
use tkc_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard, TraceBuffer, TraceRecord};
use tkc_store::{file_stamp, pack_graph, PageCacheConfig, StoreError, StoreReader};

use crate::error::{EngineError, EngineState};
use crate::repl::{ReplHandle, Role};
use crate::wal::{Recovery, Wal, WalError, WalOp};

/// Name of the compacted snapshot file inside the state directory.
pub const STATE_FILE: &str = "state.tkc";
/// Name of the write-ahead log inside the state directory.
// analyze: allow(registry-consistency): file name, not a failpoint site id
pub const WAL_FILE: &str = "wal.log";
/// Name of the packed `TKCSTOR` store written next to the snapshot at
/// each compaction. The snapshot header carries the store's identity
/// stamp; [`Engine::open`] reopens from the store (binary sections, no
/// per-edge re-insertion) whenever the stamp vouches for it.
pub const STORE_FILE: &str = "state.tkcstor";

/// Tunables for [`Engine::open`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Directory holding `state.tkc` and `wal.log` (created if absent).
    pub dir: PathBuf,
    /// Fsync the WAL on every appended batch (turn off only for tests or
    /// throwaway ingest — an OS crash can then lose acknowledged ops).
    pub fsync: bool,
    /// Publish a fresh epoch snapshot automatically after this many
    /// applied ops (`0` = only on explicit [`Engine::publish`]).
    pub epoch_ops: usize,
    /// Compact the WAL into a snapshot file once it exceeds this many
    /// bytes (`0` = only on explicit [`Engine::compact`]).
    pub compact_bytes: u64,
    /// Hard cap on the vertex-id space. An op naming (or growing to) a
    /// vertex id at or past this is rejected with
    /// [`EngineError::InvalidOp`] *before* it reaches the WAL — without
    /// it, a single `INSERT 4294967295 0` line would ask the maintainer
    /// to allocate four billion adjacency lists.
    pub max_vertices: u32,
    /// When set, every WAL byte flows through a fault-injecting
    /// [`FaultFile`] driven by this plan — the hook `tkc serve
    /// --failpoint` and the chaos harness use. `None` (the default) is
    /// plain disk I/O.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl EngineConfig {
    /// Defaults: fsync on, an epoch every 256 ops, compaction at 4 MiB,
    /// 16Mi vertex-id cap, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> EngineConfig {
        EngineConfig {
            dir: dir.into(),
            fsync: true,
            epoch_ops: 256,
            compact_bytes: 4 << 20,
            max_vertices: 1 << 24,
            fault_plan: None,
        }
    }
}

/// Handles onto the engine's [`MetricsRegistry`]: lock-free counters,
/// gauges, and latency histograms shared by the write path (engine) and
/// the serving layer. The first eleven counters carry the exact names the
/// old ad-hoc struct rendered in `STATS`; the registry additionally
/// exposes every handle as a Prometheus series (`METRICS` command /
/// `--metrics-addr` scrape endpoint).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Mutation ops applied (including recovery replay).
    pub ops_applied: Counter,
    /// Mutation ops skipped as no-ops (duplicate insert, missing remove).
    pub ops_skipped: Counter,
    /// Edge insertions that took effect.
    pub inserted: Counter,
    /// Edge removals that took effect.
    pub removed: Counter,
    /// Epoch snapshots published.
    pub epochs_published: Counter,
    /// WAL compactions performed.
    pub compactions: Counter,
    /// Opens served by the packed-store fast path instead of parsing the
    /// text snapshot (see [`STORE_FILE`]).
    pub store_reopens: Counter,
    /// Ops replayed from the WAL during the last recovery.
    pub recovery_replays: Counter,
    /// Torn tail bytes dropped during the last recovery.
    pub recovery_torn_bytes: Counter,
    /// Read queries served from snapshots (maintained by the server).
    pub queries_served: Counter,
    /// Connections accepted (maintained by the server).
    pub connections: Counter,
    /// Batches accepted into the bounded ingest queue.
    pub batches_enqueued: Counter,

    /// WAL append batches written.
    pub wal_appends: Counter,
    /// Encoded WAL bytes written.
    pub wal_bytes: Counter,
    /// Full append latency (encode + write + fsync) per batch.
    pub wal_append_seconds: Histogram,
    /// fsync portion of each append (zero-valued with fsync off).
    pub wal_fsync_seconds: Histogram,
    /// End-to-end [`Engine::apply`] latency per batch.
    pub apply_seconds: Histogram,
    /// Triangles touched (added + removed) per mutation op — the skew the
    /// maintenance papers predict, now measurable.
    pub triangles_per_op: Histogram,
    /// Epoch snapshot build + publish latency.
    pub epoch_publish_seconds: Histogram,
    /// Seconds since the current epoch was published (refreshed at render
    /// time).
    pub snapshot_age_seconds: Gauge,
    /// Connections currently open (maintained by the server).
    pub active_connections: Gauge,
    /// Batches sitting in the bounded ingest queue.
    pub batch_queue_depth: Gauge,
    /// BATCH commands that found the ingest queue full and blocked.
    pub backpressure_waits: Counter,
    /// Batches drained from the queue and applied by the ingest thread.
    pub batches_applied: Counter,

    /// Transitions into the read-only (degraded) state.
    pub degraded_total: Counter,
    /// Recovery attempts (each supervised retry, successful or not).
    pub recovery_attempts: Counter,
    /// Recoveries that returned the engine to `serving`.
    pub recoveries: Counter,
    /// Supervisor backoff sleeps before each recovery attempt.
    pub recovery_backoff_seconds: Histogram,
    /// Faults injected by the armed failpoint plan (refreshed from the
    /// plan at render time; 0 forever without `--failpoint`).
    pub faults_injected: Counter,
    /// 0/1 indicator per engine state (`tkc_engine_state{state="..."}`).
    pub state_serving: Gauge,
    /// See [`EngineMetrics::state_serving`].
    pub state_read_only: Gauge,
    /// See [`EngineMetrics::state_serving`].
    pub state_recovering: Gauge,
    /// See [`EngineMetrics::state_serving`].
    pub state_follower: Gauge,
    /// See [`EngineMetrics::state_serving`].
    pub state_diverged: Gauge,
    /// 0/1 indicator per replication role
    /// (`tkc_engine_role{role="..."}`).
    pub role_standalone: Gauge,
    /// See [`EngineMetrics::role_standalone`].
    pub role_primary: Gauge,
    /// See [`EngineMetrics::role_standalone`].
    pub role_follower: Gauge,
}

impl EngineMetrics {
    /// Registers every handle on `reg` (idempotent — reopening the same
    /// registry yields the same underlying atomics).
    fn register(reg: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            ops_applied: reg.counter(
                "tkc_engine_ops_applied_total",
                "Mutation ops applied (including recovery replay)",
            ),
            ops_skipped: reg.counter(
                "tkc_engine_ops_skipped_total",
                "Mutation ops skipped as no-ops",
            ),
            inserted: reg.counter(
                "tkc_engine_inserted_total",
                "Edge insertions that took effect",
            ),
            removed: reg.counter("tkc_engine_removed_total", "Edge removals that took effect"),
            epochs_published: reg.counter(
                "tkc_engine_epochs_published_total",
                "Epoch snapshots published",
            ),
            compactions: reg.counter("tkc_engine_compactions_total", "WAL compactions performed"),
            store_reopens: reg.counter(
                "tkc_engine_store_reopens_total",
                "Engine opens served from the packed store fast path",
            ),
            recovery_replays: reg.int_gauge(
                "tkc_engine_recovery_replays",
                "Ops replayed from the WAL during the last recovery",
            ),
            recovery_torn_bytes: reg.int_gauge(
                "tkc_engine_recovery_torn_bytes",
                "Torn tail bytes dropped during the last recovery",
            ),
            queries_served: reg.counter(
                "tkc_server_queries_total",
                "Read queries served from snapshots",
            ),
            connections: reg.counter("tkc_server_connections_total", "Connections accepted"),
            batches_enqueued: reg.counter(
                "tkc_server_batches_enqueued_total",
                "Batches accepted into the bounded ingest queue",
            ),
            wal_appends: reg.counter("tkc_engine_wal_appends_total", "WAL append batches written"),
            wal_bytes: reg.counter("tkc_engine_wal_bytes_total", "Encoded WAL bytes written"),
            wal_append_seconds: reg.histogram_seconds(
                "tkc_engine_wal_append_seconds",
                "WAL append latency per batch (encode + write + fsync)",
            ),
            wal_fsync_seconds: reg.histogram_seconds(
                "tkc_engine_wal_fsync_seconds",
                "fsync portion of each WAL append",
            ),
            apply_seconds: reg.histogram_seconds(
                "tkc_engine_apply_seconds",
                "End-to-end apply latency per batch",
            ),
            triangles_per_op: reg.histogram_plain(
                "tkc_engine_triangles_per_op",
                "Triangles touched (added + removed) per mutation op",
            ),
            epoch_publish_seconds: reg.histogram_seconds(
                "tkc_engine_epoch_publish_seconds",
                "Epoch snapshot build + publish latency",
            ),
            snapshot_age_seconds: reg.gauge(
                "tkc_engine_snapshot_age_seconds",
                "Seconds since the current epoch snapshot was published",
            ),
            active_connections: reg.gauge(
                "tkc_server_active_connections",
                "Connections currently open",
            ),
            batch_queue_depth: reg.gauge(
                "tkc_server_batch_queue_depth",
                "Batches sitting in the bounded ingest queue",
            ),
            backpressure_waits: reg.counter(
                "tkc_server_backpressure_waits_total",
                "BATCH commands that found the ingest queue full and blocked",
            ),
            batches_applied: reg.counter(
                "tkc_server_batches_applied_total",
                "Batches drained from the queue and applied",
            ),
            degraded_total: reg.counter(
                "tkc_engine_degraded_total",
                "Transitions into the read-only (degraded) state",
            ),
            recovery_attempts: reg.counter(
                "tkc_recovery_attempts_total",
                "Supervised recovery attempts (successful or not)",
            ),
            recoveries: reg.counter(
                "tkc_recoveries_total",
                "Recoveries that returned the engine to serving",
            ),
            recovery_backoff_seconds: reg.histogram_seconds(
                "tkc_recovery_backoff_seconds",
                "Supervisor backoff sleeps before each recovery attempt",
            ),
            faults_injected: reg.counter(
                "tkc_faults_injected_total",
                "Faults injected by the armed failpoint plan",
            ),
            state_serving: reg.gauge_with(
                "tkc_engine_state",
                "1 for the engine's current state, 0 for the others",
                &[("state", "serving")],
            ),
            state_read_only: reg.gauge_with(
                "tkc_engine_state",
                "1 for the engine's current state, 0 for the others",
                &[("state", "read_only")],
            ),
            state_recovering: reg.gauge_with(
                "tkc_engine_state",
                "1 for the engine's current state, 0 for the others",
                &[("state", "recovering")],
            ),
            state_follower: reg.gauge_with(
                "tkc_engine_state",
                "1 for the engine's current state, 0 for the others",
                &[("state", "follower")],
            ),
            state_diverged: reg.gauge_with(
                "tkc_engine_state",
                "1 for the engine's current state, 0 for the others",
                &[("state", "diverged")],
            ),
            role_standalone: reg.gauge_with(
                "tkc_engine_role",
                "1 for the engine's replication role, 0 for the others",
                &[("role", "standalone")],
            ),
            role_primary: reg.gauge_with(
                "tkc_engine_role",
                "1 for the engine's replication role, 0 for the others",
                &[("role", "primary")],
            ),
            role_follower: reg.gauge_with(
                "tkc_engine_role",
                "1 for the engine's replication role, 0 for the others",
                &[("role", "follower")],
            ),
        }
    }

    /// Reflects `state` into the per-state 0/1 `tkc_engine_state` series.
    fn set_state_gauges(&self, state: EngineState) {
        self.state_serving
            .set(f64::from(u8::from(state == EngineState::Serving)));
        self.state_read_only
            .set(f64::from(u8::from(state == EngineState::ReadOnly)));
        self.state_recovering
            .set(f64::from(u8::from(state == EngineState::Recovering)));
        self.state_follower
            .set(f64::from(u8::from(state == EngineState::Follower)));
        self.state_diverged
            .set(f64::from(u8::from(state == EngineState::Diverged)));
    }

    /// Reflects `role` into the per-role 0/1 `tkc_engine_role` series.
    fn set_role_gauges(&self, role: Role) {
        self.role_standalone
            .set(f64::from(u8::from(role == Role::Standalone)));
        self.role_primary
            .set(f64::from(u8::from(role == Role::Primary)));
        self.role_follower
            .set(f64::from(u8::from(role == Role::Follower)));
    }
}

/// Summary of a `TRUSS k` query over one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrussSummary {
    /// Number of maximal Triangle K-Cores at the level.
    pub cores: usize,
    /// Edges across all of them.
    pub edges: usize,
    /// Vertices across all of them.
    pub vertices: usize,
}

/// An immutable, atomically published view of the graph and its κ values.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    graph: Graph,
    decomp: Decomposition,
    csr: CsrGraph,
    stats: UpdateStats,
    ops_applied: u64,
}

impl EpochSnapshot {
    /// Monotone publication counter (1 = the recovery snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The κ view over [`EpochSnapshot::graph`].
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// The frozen CSR companion (triangle counting, support kernels).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// κ of edge `{u, v}`, or `None` when absent.
    pub fn kappa(&self, u: u32, v: u32) -> Option<u32> {
        let e = self.graph.edge_between(VertexId(u), VertexId(v))?;
        Some(self.decomp.kappa(e))
    }

    /// Largest κ in the snapshot.
    pub fn max_kappa(&self) -> u32 {
        self.decomp.max_kappa()
    }

    /// Triangles in the snapshot (CSR kernel).
    pub fn triangle_count(&self) -> u64 {
        self.csr.triangle_count()
    }

    /// All maximal Triangle K-Cores of number ≥ `k` (`k` clamped to ≥ 1),
    /// summarized.
    pub fn truss(&self, k: u32) -> TrussSummary {
        let cores = cores_at_level(&self.graph, &self.decomp, k.max(1));
        TrussSummary {
            cores: cores.len(),
            edges: cores.iter().map(|c| c.edges.len()).sum(),
            vertices: cores.iter().map(|c| c.vertices.len()).sum(),
        }
    }

    /// Cumulative maintenance counters at publication time.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Total ops applied when this epoch was published.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Live edge count.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Outcome of one applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Insertions that took effect.
    pub inserted: usize,
    /// Removals that took effect.
    pub removed: usize,
    /// Ops that were no-ops (duplicate insert, self loop, missing remove).
    pub skipped: usize,
}

/// The writer half: maintainer + WAL, always mutated under one mutex.
#[derive(Debug)]
struct Writer {
    core: DynamicTriangleKCore,
    wal: Wal,
    cumulative: UpdateStats,
    epoch: u64,
    ops_applied: u64,
    since_epoch: usize,
}

/// The durable ingest/query engine. Cheap to share: wrap it in an `Arc`
/// and hand clones to ingest and query threads.
#[derive(Debug)]
pub struct Engine {
    writer: Mutex<Writer>,
    published: RwLock<Arc<EpochSnapshot>>,
    registry: Arc<MetricsRegistry>,
    metrics: EngineMetrics,
    /// `tkc_obs::process_nanos` at the last epoch publication (feeds the
    /// snapshot-age gauge).
    last_publish_nanos: AtomicU64,
    /// [`EngineState`] as a `u8` (see `EngineState::as_u8`).
    state: AtomicU8,
    /// Why the engine left `Serving` (empty while healthy).
    degraded_reason: Mutex<String>,
    /// Monotonic WAL sequence number of the last applied op: the state
    /// header's compaction floor plus every op applied since. Written
    /// under the writer lock; the atomic is a read-side mirror for
    /// STATS/handshakes.
    applied_seq: AtomicU64,
    /// Replication fencing term (persisted in the state header at each
    /// compaction). A node refuses writes once it learns of a higher
    /// term. Written under the writer lock, mirrored for readers.
    term: AtomicU64,
    /// [`Role`] as a `u8` (see `Role::as_u8`).
    role: AtomicU8,
    /// Latched when a higher term fences this node: the recovery
    /// supervisor must not resurrect a superseded primary into a
    /// writable state.
    fenced: AtomicBool,
    /// The replication subsystem attached by [`crate::repl::start`]
    /// (never set on standalone engines).
    repl: OnceLock<ReplHandle>,
    config: EngineConfig,
}

/// Opens the WAL storage per config: plain disk, or disk wrapped in the
/// configured fault plan.
fn open_wal(config: &EngineConfig) -> Result<(Wal, Recovery), WalError> {
    let path = config.dir.join(WAL_FILE);
    let disk = DiskFile::open(&path).map_err(|e| WalError {
        site: "wal.open",
        source: e.into(),
    })?;
    match &config.fault_plan {
        Some(plan) => Wal::open_with(
            Box::new(FaultFile::new(Box::new(disk), Arc::clone(plan))),
            config.fsync,
        ),
        None => Wal::open_with(Box::new(disk), config.fsync),
    }
}

impl Engine {
    /// Opens (or creates) the engine state in `config.dir`: loads the
    /// compaction snapshot if present, replays the WAL over it, truncates
    /// any torn tail, and publishes the recovered state as epoch 1.
    pub fn open(config: EngineConfig) -> Result<Engine, EngineError> {
        std::fs::create_dir_all(&config.dir)?;
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = EngineMetrics::register(&registry);
        let state_path = config.dir.join(STATE_FILE);
        let store_path = config.dir.join(STORE_FILE);
        let mut floor_seq = 0u64;
        let mut term = 0u64;
        let mut core = if state_path.exists() {
            let header = read_state_header(std::fs::File::open(&state_path)?)?;
            floor_seq = header.seq;
            term = header.term;
            let stamp = header.store_stamp;
            verify_store_stamp(stamp.as_deref(), &store_path)?;
            if stamp.is_some() {
                // Fast path: the snapshot header vouches for the packed
                // store, so rebuild from its binary sections (crc-checked
                // on read) instead of re-parsing and re-inserting every
                // edge of the text body.
                let reader = StoreReader::open(&store_path, PageCacheConfig::default())
                    .map_err(store_err)?;
                let g = reader.load_graph().map_err(store_err)?;
                let kappa = reader.read_kappa().map_err(store_err)?;
                metrics.store_reopens.inc();
                DynamicTriangleKCore::from_parts(g, kappa)
            } else {
                let file = std::fs::File::open(&state_path)?;
                let (g, kappa) = read_state(file)?;
                DynamicTriangleKCore::from_parts(g, kappa)
            }
        } else {
            // No snapshot: a store file sitting here alone is unvouched
            // (same gate as a stampless snapshot next to one).
            verify_store_stamp(None, &store_path)?;
            DynamicTriangleKCore::new(Graph::new())
        };

        let (wal, recovery) = open_wal(&config)?;
        let Recovery { ops, torn_bytes } = recovery;
        let mut replay_report = ApplyReport::default();
        for &op in &ops {
            apply_to_core(&mut core, op, &mut replay_report);
        }
        metrics.recovery_replays.set(ops.len() as u64);
        metrics.recovery_torn_bytes.set(torn_bytes);
        metrics.ops_applied.set(ops.len() as u64);

        let mut cumulative = UpdateStats::default();
        cumulative.absorb(core.stats());
        core.reset_stats();

        let mut writer = Writer {
            core,
            wal,
            cumulative,
            epoch: 0,
            ops_applied: ops.len() as u64,
            since_epoch: 0,
        };
        let first = Arc::new(snapshot_of(&mut writer, &metrics));
        metrics.set_state_gauges(EngineState::Serving);
        metrics.set_role_gauges(Role::Standalone);
        let applied_seq = floor_seq + ops.len() as u64;
        Ok(Engine {
            writer: Mutex::new(writer),
            published: RwLock::new(first),
            registry,
            metrics,
            last_publish_nanos: AtomicU64::new(tkc_obs::process_nanos()),
            state: AtomicU8::new(EngineState::Serving.as_u8()),
            degraded_reason: Mutex::new(String::new()),
            applied_seq: AtomicU64::new(applied_seq),
            term: AtomicU64::new(term),
            role: AtomicU8::new(Role::Standalone.as_u8()),
            fenced: AtomicBool::new(false),
            repl: OnceLock::new(),
            config,
        })
    }

    /// Where the engine is in its serving state machine.
    pub fn state(&self) -> EngineState {
        EngineState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Why the engine is not `Serving` (`None` while healthy).
    pub fn degraded_reason(&self) -> Option<String> {
        match self.state() {
            EngineState::Serving => None,
            _ => Some(lock_reason(&self.degraded_reason).clone()),
        }
    }

    pub(crate) fn set_state(&self, state: EngineState) {
        self.state.store(state.as_u8(), Ordering::Release);
        self.metrics.set_state_gauges(state);
    }

    /// The engine's replication role (standalone until
    /// [`crate::repl::start`] attaches a subsystem).
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::Acquire))
    }

    pub(crate) fn set_role(&self, role: Role) {
        self.role.store(role.as_u8(), Ordering::Release);
        self.metrics.set_role_gauges(role);
    }

    /// Monotonic WAL sequence number of the last applied op (compaction
    /// floor + ops applied since) — the replication watermark.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Relaxed)
    }

    /// The replication fencing term this node last persisted or learned.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Relaxed)
    }

    pub(crate) fn set_term(&self, term: u64) {
        self.term.store(term, Ordering::Relaxed);
    }

    /// Installs the replication subsystem handle (once, at serve start).
    pub(crate) fn set_repl(&self, handle: ReplHandle) {
        let _ = self.repl.set(handle);
    }

    /// Where writes should go when this node is a follower.
    fn primary_addr(&self) -> String {
        self.repl
            .get()
            .and_then(|h| h.primary_addr())
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Learns of a higher fencing term: records it, closes the hub's
    /// follower streams, and drops to read-only — the node was
    /// superseded by a promoted follower and must not accept writes.
    pub(crate) fn fence(&self, new_term: u64) {
        if new_term <= self.term() {
            return;
        }
        self.set_term(new_term);
        self.fenced.store(true, Ordering::Relaxed);
        if let Some(h) = self.repl.get() {
            h.close_followers();
        }
        self.enter_degraded(format!("fenced by term {new_term}"));
    }

    /// Drops into read-only mode: records the reason, flips the state
    /// gauges, and logs. Idempotent — repeated failures while already
    /// degraded keep the *first* reason (the root cause).
    fn enter_degraded(&self, reason: String) {
        {
            let mut guard = lock_reason(&self.degraded_reason);
            if guard.is_empty() {
                *guard = reason.clone();
            }
        }
        if self.state() != EngineState::ReadOnly {
            self.metrics.degraded_total.inc();
            tkc_obs::warn!("engine degraded, serving read-only: {reason}");
        }
        self.set_state(EngineState::ReadOnly);
    }

    /// One supervised recovery attempt: re-opens the WAL (the in-memory
    /// state is authoritative — it holds exactly the acknowledged ops, so
    /// the on-disk log's replay is discarded rather than trusted), then
    /// compacts that state into a fresh snapshot + empty log. On success
    /// the engine returns to `Serving`; on failure it stays `ReadOnly`
    /// with the original reason and the error is returned for the
    /// supervisor's backoff loop.
    pub fn recover(&self) -> Result<(), EngineError> {
        if matches!(
            self.state(),
            EngineState::Serving | EngineState::Follower | EngineState::Diverged
        ) {
            return Ok(());
        }
        // A fenced node was superseded, not broken: recovery would only
        // resurrect a split brain. It stays read-only until an operator
        // restarts it (typically as a follower of the new primary).
        if self.fenced.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.metrics.recovery_attempts.inc();
        self.set_state(EngineState::Recovering);
        let mut w = lock_writer(&self.writer);
        let attempt = (|| -> Result<(), EngineError> {
            let (wal, _discarded_replay) = open_wal(&self.config)?;
            w.wal = wal;
            self.compact_locked(&mut w)
        })();
        match attempt {
            Ok(()) => {
                *lock_reason(&self.degraded_reason) = String::new();
                // A recovered follower goes back to replicating, not to
                // accepting writes.
                if self.role() == Role::Follower {
                    self.set_state(EngineState::Follower);
                } else {
                    self.set_state(EngineState::Serving);
                }
                self.metrics.recoveries.inc();
                tkc_obs::info!("engine recovered: wal reopened and compacted, serving again");
                Ok(())
            }
            Err(e) => {
                self.set_state(EngineState::ReadOnly);
                Err(e)
            }
        }
    }

    /// The engine's counters (shared with the serving layer).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The per-engine metrics registry (for registering additional
    /// families, e.g. the server's per-command series).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The current epoch snapshot. Clone-of-`Arc` cost; never blocks on
    /// ingest beyond the instant of a publication pointer swap.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&lock_read(&self.published))
    }

    /// Durably applies a batch: WAL append + fsync first, then the
    /// in-memory maintainer, then (per config) epoch publication and WAL
    /// compaction.
    ///
    /// Failure semantics: a batch that fails validation
    /// ([`EngineError::InvalidOp`]) touches nothing; a batch whose WAL
    /// append or fsync fails is **not acknowledged and not applied** —
    /// the engine drops to read-only ([`EngineError::Wal`]) and later
    /// writes get [`EngineError::Degraded`] until recovery.
    pub fn apply(&self, ops: &[WalOp]) -> Result<ApplyReport, EngineError> {
        self.apply_inner(ops, false)
    }

    /// [`Engine::apply`] for ops arriving over the replication stream:
    /// identical durability (the follower's own WAL is appended first),
    /// but permitted while the engine is in the read-only `Follower`
    /// state. Client writes must keep going through [`Engine::apply`].
    pub fn apply_replicated(&self, ops: &[WalOp]) -> Result<ApplyReport, EngineError> {
        self.apply_inner(ops, true)
    }

    fn apply_inner(&self, ops: &[WalOp], replicated: bool) -> Result<ApplyReport, EngineError> {
        if ops.is_empty() {
            return Ok(ApplyReport::default());
        }
        let m = &self.metrics;
        let apply_start = Instant::now();
        // Inert (one relaxed load) unless span tracing is on; a child of
        // the serving request's span when one is open on this thread.
        let mut apply_span = SpanGuard::child("engine.apply");
        apply_span.attr("ops", ops.len() as u64);
        let mut w = lock_writer(&self.writer);
        // State and validation checks live under the writer lock so a
        // degrading batch and its successor cannot interleave.
        match (self.state(), replicated) {
            (EngineState::Serving, _) | (EngineState::Follower, true) => {}
            (EngineState::Follower | EngineState::Diverged, false) => {
                return Err(EngineError::Readonly {
                    primary: self.primary_addr(),
                });
            }
            _ => {
                return Err(EngineError::Degraded {
                    reason: lock_reason(&self.degraded_reason).clone(),
                });
            }
        }
        self.validate(ops, &w)?;
        let wal_start = Instant::now();
        let mut wal_span = SpanGuard::child("engine.wal_append");
        let append = match w.wal.append_with(ops) {
            Ok(info) => info,
            Err(e) => {
                self.enter_degraded(e.to_string());
                return Err(e.into());
            }
        };
        wal_span.attr("bytes", append.bytes);
        // The fsync happened inside append_with; back-date it as a child
        // of the still-open WAL span from its measured duration.
        tkc_obs::span::record_manual("engine.wal_fsync", append.fsync);
        drop(wal_span);
        m.wal_append_seconds.record_duration(wal_start.elapsed());
        m.wal_fsync_seconds.record_duration(append.fsync);
        m.wal_appends.inc();
        m.wal_bytes.add(append.bytes);
        let mut report = ApplyReport::default();
        // One relaxed load: the disabled-tracing hot path never touches
        // the clock or builds records.
        let trace = TraceBuffer::global();
        let tracing = trace.enabled();
        let mut cascade_span = SpanGuard::child("engine.cascade");
        let mut prev = w.core.stats();
        for &op in ops {
            let op_start = if tracing { Some(Instant::now()) } else { None };
            apply_to_core(&mut w.core, op, &mut report);
            let cur = w.core.stats();
            let triangles = (cur.triangles_added - prev.triangles_added)
                + (cur.triangles_removed - prev.triangles_removed);
            m.triangles_per_op.record(triangles);
            if let Some(start) = op_start {
                let (kind, u, v) = match op {
                    WalOp::Insert(u, v) => ("insert", u, v),
                    WalOp::Remove(u, v) => ("remove", u, v),
                    WalOp::AddVertices(n) => ("add_vertices", n, 0),
                };
                trace.record(TraceRecord {
                    at_unix_ms: tkc_obs::unix_millis(),
                    kind,
                    u,
                    v,
                    triangles,
                    levels: (cur.promotions - prev.promotions) + (cur.demotions - prev.demotions),
                    duration_nanos: start.elapsed().as_nanos() as u64,
                });
            }
            prev = cur;
        }
        let stats = w.core.stats();
        cascade_span.attr("triangles", stats.triangles_added + stats.triangles_removed);
        cascade_span.attr("levels", stats.promotions + stats.demotions);
        drop(cascade_span);
        w.core.reset_stats();
        w.cumulative.absorb(stats);
        w.ops_applied += ops.len() as u64;
        w.since_epoch += ops.len();
        // Written under the writer lock; readers only display it, so a
        // relaxed store is all the ordering the watermark needs.
        let seq = self.applied_seq.load(Ordering::Relaxed) + ops.len() as u64;
        self.applied_seq.store(seq, Ordering::Relaxed);
        if let Some(h) = self.repl.get() {
            h.on_apply(ops, seq, &w.core, self.term());
        }
        m.ops_applied.add(ops.len() as u64);
        m.ops_skipped.add(report.skipped as u64);
        m.inserted.add(report.inserted as u64);
        m.removed.add(report.removed as u64);
        if self.config.epoch_ops > 0 && w.since_epoch >= self.config.epoch_ops {
            self.publish_locked(&mut w);
        }
        if self.config.compact_bytes > 0 && w.wal.len_bytes() > self.config.compact_bytes {
            // The batch itself is durable and applied; a failed background
            // compaction degrades the engine but must not un-acknowledge
            // the write that merely triggered it.
            if let Err(e) = self.compact_locked(&mut w) {
                self.enter_degraded(format!("compaction: {e}"));
            }
        }
        m.apply_seconds.record_duration(apply_start.elapsed());
        Ok(report)
    }

    /// Rejects ops that name (or grow to) vertex ids past the configured
    /// cap before anything reaches the WAL. `u32` ids make this the only
    /// unbounded-allocation hazard in the op vocabulary.
    fn validate(&self, ops: &[WalOp], w: &Writer) -> Result<(), EngineError> {
        let cap = self.config.max_vertices;
        let mut projected = w.core.graph().num_vertices() as u64;
        for &op in ops {
            match op {
                WalOp::Insert(u, v) | WalOp::Remove(u, v) => {
                    let top = u.max(v);
                    if top >= cap {
                        return Err(EngineError::InvalidOp {
                            reason: format!("vertex id {top} exceeds max_vertices {cap}"),
                        });
                    }
                    projected = projected.max(u64::from(top) + 1);
                }
                WalOp::AddVertices(n) => {
                    projected += u64::from(n);
                }
            }
            if projected > u64::from(cap) {
                return Err(EngineError::InvalidOp {
                    reason: format!("vertex count {projected} exceeds max_vertices {cap}"),
                });
            }
        }
        Ok(())
    }

    /// Durably inserts edge `{u, v}`, returning its κ right after the
    /// update (read-your-write, without waiting for an epoch), or `None`
    /// when the insert was a no-op (self loop or duplicate).
    pub fn insert(&self, u: u32, v: u32) -> Result<Option<u32>, EngineError> {
        let report = self.apply(&[WalOp::Insert(u, v)])?;
        if report.inserted == 0 {
            return Ok(None);
        }
        let w = lock_writer(&self.writer);
        let kappa = w
            .core
            .graph()
            .edge_between(VertexId(u), VertexId(v))
            .map(|e| w.core.kappa(e));
        Ok(kappa)
    }

    /// Durably removes edge `{u, v}`; `false` when it wasn't there.
    pub fn remove(&self, u: u32, v: u32) -> Result<bool, EngineError> {
        Ok(self.apply(&[WalOp::Remove(u, v)])?.removed == 1)
    }

    /// Publishes the writer's current state as a fresh epoch snapshot and
    /// returns the new epoch number.
    pub fn publish(&self) -> u64 {
        let mut w = lock_writer(&self.writer);
        self.publish_locked(&mut w);
        w.epoch
    }

    /// Compacts the WAL: writes the graph + κ snapshot file atomically,
    /// then resets the log.
    pub fn compact(&self) -> Result<(), EngineError> {
        let mut w = lock_writer(&self.writer);
        self.compact_locked(&mut w)
    }

    /// Current epoch number without taking a snapshot.
    pub fn epoch(&self) -> u64 {
        lock_read(&self.published).epoch()
    }

    /// Renders every counter as a plain-text `key value` block — the
    /// `STATS` wire response and the operator-facing metrics surface.
    pub fn metrics_text(&self) -> String {
        let m = &self.metrics;
        let snap = self.snapshot();
        let stats = {
            let w = lock_writer(&self.writer);
            w.cumulative
        };
        let mut out = String::new();
        for (key, value) in [
            ("epoch", snap.epoch()),
            ("vertices", snap.num_vertices() as u64),
            ("edges", snap.num_edges() as u64),
            ("max_kappa", u64::from(snap.max_kappa())),
            ("ops_applied", m.ops_applied.get()),
            ("ops_skipped", m.ops_skipped.get()),
            ("inserted", m.inserted.get()),
            ("removed", m.removed.get()),
            ("epochs_published", m.epochs_published.get()),
            ("compactions", m.compactions.get()),
            ("recovery_replays", m.recovery_replays.get()),
            ("recovery_torn_bytes", m.recovery_torn_bytes.get()),
            ("queries_served", m.queries_served.get()),
            ("connections", m.connections.get()),
            ("batches_enqueued", m.batches_enqueued.get()),
            ("triangles_added", stats.triangles_added),
            ("triangles_removed", stats.triangles_removed),
            ("promotions", stats.promotions),
            ("demotions", stats.demotions),
            ("edges_examined", stats.edges_examined),
            ("degraded", u64::from(self.state() != EngineState::Serving)),
            ("recoveries", m.recoveries.get()),
            ("seq", self.applied_seq()),
            ("term", self.term()),
        ] {
            out.push_str(key);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out.push_str("role ");
        out.push_str(self.role().as_str());
        out.push('\n');
        if let Some(h) = self.repl.get() {
            for (key, value) in h.stats_keys() {
                out.push_str(key);
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the full Prometheus text exposition: the engine's registry
    /// (graph gauges refreshed from the current snapshot) followed by the
    /// process-global registry (kernel phase timers, worker pool).
    pub fn prometheus_text(&self) -> String {
        let snap = self.snapshot();
        let reg = &self.registry;
        reg.gauge("tkc_engine_epoch", "Current epoch number")
            .set(snap.epoch() as f64);
        reg.gauge("tkc_graph_vertices", "Vertices in the current snapshot")
            .set(snap.num_vertices() as f64);
        reg.gauge("tkc_graph_edges", "Live edges in the current snapshot")
            .set(snap.num_edges() as f64);
        reg.gauge(
            "tkc_graph_max_kappa",
            "Largest kappa in the current snapshot",
        )
        .set(f64::from(snap.max_kappa()));
        let age = tkc_obs::process_nanos()
            .saturating_sub(self.last_publish_nanos.load(Ordering::Relaxed));
        self.metrics.snapshot_age_seconds.set(age as f64 / 1e9);
        if let Some(plan) = &self.config.fault_plan {
            self.metrics.faults_injected.set(plan.injected_total());
        }
        let mut out = self.registry.render();
        out.push_str(&MetricsRegistry::global().render());
        out
    }

    fn publish_locked(&self, w: &mut Writer) {
        let _publish_span = SpanGuard::child("engine.publish");
        let start = Instant::now();
        let snap = Arc::new(snapshot_of(w, &self.metrics));
        *lock_write(&self.published) = snap;
        w.since_epoch = 0;
        self.last_publish_nanos
            .store(tkc_obs::process_nanos(), Ordering::Relaxed);
        self.metrics
            .epoch_publish_seconds
            .record_duration(start.elapsed());
    }

    fn compact_locked(&self, w: &mut Writer) -> Result<(), EngineError> {
        let store_tmp = self.config.dir.join("state.tkcstor.tmp");
        let store_path = self.config.dir.join(STORE_FILE);
        let tmp = self.config.dir.join("state.tkc.tmp");
        let final_path = self.config.dir.join(STATE_FILE);

        // Pack the store first: its identity stamp goes into the snapshot
        // header so the next open can trust the binary sections.
        let g = w.core.graph();
        let supports = edge_supports_csr(g);
        let parts = pack_graph(g, &supports, Some(w.core.kappa_slice())).map_err(store_err)?;
        let stamp = parts.stamp();
        parts.write_path(&store_tmp)?;
        std::fs::File::open(&store_tmp)?.sync_all()?;
        {
            let file = std::fs::File::create(&tmp)?;
            write_state_tagged(
                g,
                w.core.kappa_slice(),
                Some(&stamp),
                self.applied_seq.load(Ordering::Relaxed),
                self.term(),
                &file,
            )?;
            file.sync_all()?;
        }
        // Store before state. A crash between the renames leaves a
        // snapshot whose stamp disagrees with the store on disk — the
        // next open fails with the structured `StoreMismatch` (repaired
        // by `tkc store pack`) rather than trusting either side.
        std::fs::rename(&store_tmp, &store_path)?;
        std::fs::rename(&tmp, &final_path)?;
        w.wal.reset()?;
        self.metrics.compactions.inc();
        Ok(())
    }

    /// Replaces the engine's entire state with a packed-store snapshot
    /// streamed from the primary (a follower bootstrap): persists the
    /// store + tagged state atomically, rebuilds the maintainer from it,
    /// resets the local WAL, and publishes the result as a fresh epoch.
    ///
    /// A crash after the state rename but before the WAL reset leaves a
    /// stale log next to a newer snapshot; replay over it is idempotent
    /// (apply-to-core skips duplicates), so the watermark can only move
    /// forward.
    pub(crate) fn install_snapshot(
        &self,
        store_bytes: &[u8],
        seq: u64,
        term: u64,
    ) -> Result<(), EngineError> {
        let mut w = lock_writer(&self.writer);
        let store_tmp = self.config.dir.join("state.tkcstor.tmp");
        let store_path = self.config.dir.join(STORE_FILE);
        let tmp = self.config.dir.join("state.tkc.tmp");
        let final_path = self.config.dir.join(STATE_FILE);
        std::fs::write(&store_tmp, store_bytes)?;
        std::fs::File::open(&store_tmp)?.sync_all()?;
        let stamp = file_stamp(&store_tmp).map_err(store_err)?;
        let (g, kappa) = {
            let reader =
                StoreReader::open(&store_tmp, PageCacheConfig::default()).map_err(store_err)?;
            let g = reader.load_graph().map_err(store_err)?;
            let kappa = reader.read_kappa().map_err(store_err)?;
            (g, kappa)
        };
        {
            let file = std::fs::File::create(&tmp)?;
            write_state_tagged(&g, &kappa, Some(&stamp), seq, term, &file)?;
            file.sync_all()?;
        }
        // Store before state, same crash ordering as compaction.
        std::fs::rename(&store_tmp, &store_path)?;
        std::fs::rename(&tmp, &final_path)?;
        w.core = DynamicTriangleKCore::from_parts(g, kappa);
        w.cumulative = UpdateStats::default();
        w.wal.reset()?;
        self.applied_seq.store(seq, Ordering::Relaxed);
        self.set_term(term);
        self.publish_locked(&mut w);
        Ok(())
    }

    /// Captures the writer's current state as packed-store bytes plus
    /// the watermark (seq, term) they represent — what a bootstrapping
    /// follower receives over the wire.
    pub(crate) fn snapshot_for_replication(&self) -> Result<(Vec<u8>, u64, u64), EngineError> {
        let w = lock_writer(&self.writer);
        let g = w.core.graph();
        let supports = edge_supports_csr(g);
        let parts = pack_graph(g, &supports, Some(w.core.kappa_slice())).map_err(store_err)?;
        let mut mem = crate::repl::MemStorage::default();
        parts.write_to_storage(&mut mem)?;
        Ok((
            mem.into_bytes(),
            self.applied_seq.load(Ordering::Relaxed),
            self.term(),
        ))
    }

    /// The κ-stamp of the writer's current state — the follower side of
    /// the divergence probe (compared against the primary's per-interval
    /// [`tkc_verify::kappa_stamp`] checkpoints).
    pub(crate) fn kappa_stamp_now(&self) -> u64 {
        let w = lock_writer(&self.writer);
        tkc_verify::kappa_stamp(w.core.graph(), w.core.kappa_slice())
    }

    /// One-line replication detail for `HEALTH` on follower nodes
    /// (`None` on standalone/primary nodes).
    pub fn replication_health(&self) -> Option<String> {
        let h = self.repl.get()?;
        let addr = h.primary_addr()?;
        let (lag_seq, lag_seconds) = h.lag();
        Some(format!(
            "following {addr} lag_seq={lag_seq} lag_seconds={lag_seconds}"
        ))
    }

    /// Promotes a follower to writable: bumps the fencing term, fences
    /// the old primary (best-effort `FENCE` upstream, stop tailing), and
    /// reopens for writes. Returns the new term.
    pub fn promote(&self) -> Result<u64, EngineError> {
        if self.role() != Role::Follower {
            return Err(EngineError::InvalidOp {
                reason: format!("not a follower (role {})", self.role().as_str()),
            });
        }
        let new_term = self.term() + 1;
        let becomes_primary = match self.repl.get() {
            Some(h) => h.promote(new_term),
            None => false,
        };
        self.set_term(new_term);
        self.set_role(if becomes_primary {
            Role::Primary
        } else {
            Role::Standalone
        });
        self.set_state(EngineState::Serving);
        // Persist the term so a restart cannot come back believing the
        // fenced primary's old term.
        self.compact()?;
        Ok(new_term)
    }
}

/// Maps a packed-store failure into the engine's persistence error space
/// (raw I/O errors pass through so injected-crash detection still sees
/// them).
fn store_err(e: StoreError) -> EngineError {
    match e {
        StoreError::Io(io) => EngineError::Persist(PersistError::Io(io)),
        other => EngineError::Persist(PersistError::Io(std::io::Error::other(format!(
            "packed store: {other}"
        )))),
    }
}

/// Builds the next epoch snapshot from the writer state (bumps the epoch).
fn snapshot_of(w: &mut Writer, metrics: &EngineMetrics) -> EpochSnapshot {
    w.epoch += 1;
    metrics.epochs_published.inc();
    let graph = w.core.graph().clone();
    let decomp = Decomposition::from_kappa(&graph, w.core.kappa_slice().to_vec());
    let csr = CsrGraph::freeze(&graph);
    EpochSnapshot {
        epoch: w.epoch,
        graph,
        decomp,
        csr,
        stats: w.cumulative,
        ops_applied: w.ops_applied,
    }
}

/// Applies one op to the maintainer with the WAL's idempotent semantics:
/// endpoints are created on demand, duplicate inserts / self loops /
/// missing removes are skipped. Replay of any log prefix is therefore
/// deterministic regardless of how often the process died in between.
fn apply_to_core(core: &mut DynamicTriangleKCore, op: WalOp, report: &mut ApplyReport) {
    match op {
        WalOp::Insert(u, v) => {
            if u == v {
                report.skipped += 1;
                return;
            }
            let need = (u.max(v) as usize) + 1;
            if need > core.graph().num_vertices() {
                core.add_vertices(need - core.graph().num_vertices());
            }
            let (uv, vv) = (VertexId(u), VertexId(v));
            if core.graph().has_edge(uv, vv) || core.insert_edge(uv, vv).is_err() {
                report.skipped += 1;
            } else {
                report.inserted += 1;
            }
        }
        WalOp::Remove(u, v) => {
            if core.remove_edge_between(VertexId(u), VertexId(v)).is_ok() {
                report.removed += 1;
            } else {
                report.skipped += 1;
            }
        }
        WalOp::AddVertices(n) => {
            core.add_vertices(n as usize);
        }
    }
}

/// Lock helpers that survive poisoning: a panicked writer thread must not
/// wedge every reader, and the state it guards is rebuilt from the WAL on
/// restart anyway.
fn lock_writer<'a>(m: &'a Mutex<Writer>) -> std::sync::MutexGuard<'a, Writer> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_reason<'a>(m: &'a Mutex<String>) -> std::sync::MutexGuard<'a, String> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_read<'a>(
    l: &'a RwLock<Arc<EpochSnapshot>>,
) -> std::sync::RwLockReadGuard<'a, Arc<EpochSnapshot>> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn lock_write<'a>(
    l: &'a RwLock<Arc<EpochSnapshot>>,
) -> std::sync::RwLockWriteGuard<'a, Arc<EpochSnapshot>> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tkc_engine_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn manual_config(dir: &std::path::Path) -> EngineConfig {
        EngineConfig {
            fsync: false,
            epoch_ops: 0,
            compact_bytes: 0,
            ..EngineConfig::new(dir)
        }
    }

    /// Inserts every edge of K5 on vertices `base..base+5`.
    fn clique_ops(base: u32) -> Vec<WalOp> {
        let mut ops = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                ops.push(WalOp::Insert(base + i, base + j));
            }
        }
        ops
    }

    #[test]
    fn fresh_engine_serves_empty_snapshot_then_grows() {
        let dir = temp_dir("grow");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        assert_eq!(engine.snapshot().num_edges(), 0);
        assert_eq!(engine.snapshot().epoch(), 1);

        let report = engine.apply(&clique_ops(0)).unwrap();
        assert_eq!(report.inserted, 10);
        // Not yet published: readers still see epoch 1.
        assert_eq!(engine.snapshot().num_edges(), 0);
        let epoch = engine.publish();
        assert_eq!(epoch, 2);
        let snap = engine.snapshot();
        assert_eq!(snap.num_edges(), 10);
        assert_eq!(snap.max_kappa(), 3);
        assert_eq!(snap.kappa(0, 1), Some(3));
        assert_eq!(snap.kappa(0, 9), None);
        assert_eq!(snap.triangle_count(), 10);
        let t = snap.truss(3);
        assert_eq!((t.cores, t.edges, t.vertices), (1, 10, 5));
    }

    #[test]
    fn insert_returns_read_your_write_kappa() {
        let dir = temp_dir("ryw");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        for &op in &clique_ops(0)[..9] {
            engine.apply(&[op]).unwrap();
        }
        // The 10th K5 edge closes the clique: κ = 3 immediately.
        assert_eq!(engine.insert(3, 4).unwrap(), Some(3));
        assert_eq!(engine.insert(3, 4).unwrap(), None); // duplicate
        assert_eq!(engine.insert(7, 7).unwrap(), None); // self loop
        assert!(engine.remove(3, 4).unwrap());
        assert!(!engine.remove(3, 4).unwrap());
    }

    #[test]
    fn old_snapshots_survive_new_epochs() {
        let dir = temp_dir("epochs");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        engine.apply(&clique_ops(0)).unwrap();
        engine.publish();
        let old = engine.snapshot();
        engine.apply(&[WalOp::Remove(0, 1)]).unwrap();
        engine.publish();
        let new = engine.snapshot();
        // The old Arc still answers with its frozen state.
        assert_eq!(old.kappa(0, 1), Some(3));
        assert_eq!(new.kappa(0, 1), None);
        assert!(new.epoch() > old.epoch());
    }

    #[test]
    fn kill_and_reopen_replays_the_wal() {
        let dir = temp_dir("replay");
        {
            let engine = Engine::open(manual_config(&dir)).unwrap();
            engine.apply(&clique_ops(0)).unwrap();
            engine
                .apply(&[WalOp::Remove(1, 2), WalOp::Insert(0, 5)])
                .unwrap();
            // No compact, no graceful anything: simulate SIGKILL by drop.
        }
        let engine = Engine::open(manual_config(&dir)).unwrap();
        let m = engine.metrics();
        assert_eq!(m.recovery_replays.get(), 12);
        let snap = engine.snapshot();
        assert_eq!(snap.num_edges(), 10); // 10 − 1 + 1
        assert_eq!(snap.kappa(1, 2), None);
        assert_eq!(snap.kappa(0, 5), Some(0));
        // Replayed κ equals a from-scratch decomposition.
        let fresh = Decomposition::compute_with(snap.graph(), 1);
        for e in snap.graph().edge_ids() {
            assert_eq!(snap.decomposition().kappa(e), fresh.kappa(e));
        }
    }

    #[test]
    fn compaction_snapshots_state_and_truncates_log() {
        let dir = temp_dir("compact");
        {
            let engine = Engine::open(manual_config(&dir)).unwrap();
            engine.apply(&clique_ops(0)).unwrap();
            engine.compact().unwrap();
            engine.apply(&[WalOp::Insert(0, 5)]).unwrap();
        }
        let engine = Engine::open(manual_config(&dir)).unwrap();
        // Only the post-compaction op is replayed; the rest came from the
        // snapshot file.
        assert_eq!(engine.metrics().recovery_replays.get(), 1);
        let snap = engine.snapshot();
        assert_eq!(snap.num_edges(), 11);
        assert_eq!(snap.kappa(0, 1), Some(3));
    }

    #[test]
    fn applied_seq_survives_compaction_and_reopen() {
        let dir = temp_dir("seqfloor");
        {
            let engine = Engine::open(manual_config(&dir)).unwrap();
            engine.apply(&clique_ops(0)).unwrap();
            assert_eq!(engine.applied_seq(), 10);
            // Compaction truncates the log but the watermark keeps
            // counting from the persisted floor.
            engine.compact().unwrap();
            engine.apply(&[WalOp::Insert(0, 5)]).unwrap();
            assert_eq!(engine.applied_seq(), 11);
        }
        let engine = Engine::open(manual_config(&dir)).unwrap();
        assert_eq!(engine.applied_seq(), 11);
        assert_eq!(engine.term(), 0);
        let text = engine.metrics_text();
        assert!(text.contains("seq 11"), "{text}");
        assert!(text.contains("role standalone"), "{text}");
    }

    #[test]
    fn auto_epoch_and_auto_compaction_trigger() {
        let dir = temp_dir("auto");
        let config = EngineConfig {
            epoch_ops: 4,
            compact_bytes: 64,
            ..manual_config(&dir)
        };
        let engine = Engine::open(config).unwrap();
        engine.apply(&clique_ops(0)).unwrap();
        // 10 ops ≥ 4: at least one automatic epoch beyond the initial one.
        assert!(engine.epoch() >= 2);
        assert_eq!(engine.snapshot().num_edges(), 10);
        // 10 records × 17 bytes > 64: compaction ran and reset the log.
        assert!(engine.metrics().compactions.get() >= 1);
        assert!(dir.join(STATE_FILE).exists());
    }

    #[test]
    fn prometheus_text_exposes_engine_series() {
        let dir = temp_dir("prom");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        engine.apply(&clique_ops(0)).unwrap();
        engine.publish();
        let text = engine.prometheus_text();
        for series in [
            "tkc_engine_ops_applied_total 10",
            "tkc_engine_inserted_total 10",
            "tkc_engine_wal_appends_total 1",
            "tkc_engine_wal_bytes_total 170", // 10 ops x 17 bytes
            "tkc_engine_apply_seconds_count 1",
            "tkc_engine_triangles_per_op_count 10",
            "tkc_engine_epoch_publish_seconds_count",
            "tkc_engine_snapshot_age_seconds",
            "tkc_engine_epoch 2",
            "tkc_graph_edges 10",
            "tkc_graph_max_kappa 3",
            "# TYPE tkc_engine_apply_seconds histogram",
        ] {
            assert!(text.contains(series), "missing {series:?} in:\n{text}");
        }
        // K5 has 10 triangles; each one is reported exactly once across
        // the per-op records, so the histogram sum is the triangle count.
        assert_eq!(engine.metrics().triangles_per_op.snapshot().sum, 10);
    }

    #[test]
    fn tracing_captures_per_op_records_when_enabled() {
        let _guard = crate::global_trace_test_guard();
        let dir = temp_dir("trace");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        let trace = TraceBuffer::global();
        trace.set_enabled(true);
        engine.apply(&clique_ops(0)).unwrap();
        trace.set_enabled(false);
        let records = trace.drain_ordered();
        let inserts: Vec<_> = records.iter().filter(|r| r.kind == "insert").collect();
        assert!(inserts.len() >= 10, "expected >=10 insert records");
        // Closing edges of the growing clique touch triangles.
        assert!(inserts.iter().any(|r| r.triangles > 0));
        trace.clear();
    }

    #[test]
    fn apply_records_a_nested_span_tree() {
        let _guard = crate::global_trace_test_guard();
        let dir = temp_dir("spans");
        let mut config = manual_config(&dir);
        config.epoch_ops = 10; // force an auto-publish inside the batch
        let engine = Engine::open(config).unwrap();
        let trace = TraceBuffer::global();
        trace.set_enabled(true);
        let trace_id;
        {
            let root = SpanGuard::root("INSERT");
            trace_id = root.trace_id().unwrap();
            engine.apply(&clique_ops(0)).unwrap();
        }
        trace.set_enabled(false);
        let spans = trace.spans_for_trace(trace_id);
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span {name}: {spans:?}"))
        };
        let root = find("INSERT");
        let apply = find("engine.apply");
        let wal = find("engine.wal_append");
        let fsync = find("engine.wal_fsync");
        let cascade = find("engine.cascade");
        let publish = find("engine.publish");
        assert_eq!(root.parent_id, 0);
        assert_eq!(apply.parent_id, root.span_id);
        assert_eq!(wal.parent_id, apply.span_id);
        assert_eq!(fsync.parent_id, wal.span_id);
        assert_eq!(cascade.parent_id, apply.span_id);
        assert_eq!(publish.parent_id, apply.span_id);
        assert!(apply.attrs.contains(&("ops", 10)));
        assert!(cascade.attrs.contains(&("triangles", 10)));
        // Guard-created children nest within the apply span's bounds.
        for s in [wal, cascade, publish] {
            assert!(
                s.start_nanos >= apply.start_nanos,
                "{} starts early",
                s.name
            );
            assert!(
                s.start_nanos + s.duration_nanos <= apply.start_nanos + apply.duration_nanos,
                "{} escapes apply bounds",
                s.name
            );
        }
        trace.clear();
    }

    #[test]
    fn metrics_text_lists_every_counter() {
        let dir = temp_dir("metrics");
        let engine = Engine::open(manual_config(&dir)).unwrap();
        engine.apply(&clique_ops(0)).unwrap();
        engine.publish();
        let text = engine.metrics_text();
        for key in [
            "epoch ",
            "ops_applied 10",
            "inserted 10",
            "promotions",
            "edges_examined",
            "recovery_replays 0",
        ] {
            assert!(text.contains(key), "missing {key:?} in:\n{text}");
        }
    }
}
