//! Chaos harness: drive the differential-suite op corpus through a real
//! [`Engine`] while a seeded [`FaultPlan`] injects disk failures, and
//! prove the engine never lies about κ.
//!
//! Each case is **fully determined by its seed**: the initial graph, the
//! op stream (both borrowed from [`tkc_verify::differential`]), and the
//! fault schedule ([`FaultPlan::seeded`]) all derive from it, so any
//! failing seed is a one-integer reproduction.
//!
//! The harness reacts to failures exactly the way production does:
//!
//! * **Degraded** (`ENOSPC`, `EIO`, short write, fsync failure) — the
//!   batch was not acknowledged; call [`Engine::recover`] like the serve
//!   supervisor would and retry the same batch (idempotent ops make the
//!   at-least-once retry safe).
//! * **Injected crash** — the simulated process is dead. Drop the engine,
//!   clear the crash latch (the "restarted process" gets a working disk),
//!   reopen from the same directory, and let WAL replay rebuild state.
//!
//! After every recovery/restart and again at the end, the **oracle** is
//! [`kappa_matches_recompute`]: the engine's maintained κ must equal a
//! from-scratch decomposition of its own graph. Divergence means silent
//! corruption slipped through — the thing this harness exists to catch.
//! Finally the engine is closed cleanly (faults disarmed), reopened, and
//! the surviving edge set + κ must round-trip unchanged.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tkc_faults::FaultPlan;
use tkc_verify::differential::{generate_ops, GraphKind, StreamConfig, StreamOp};

use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use crate::repl::{self, ReplOptions, ReplServer};
use crate::wal::WalOp;

/// How many times a single batch may bounce through recover/restart
/// before the case is declared wedged. Seeded plans carry at most 3
/// failpoints, so a healthy engine always gets through well before this.
const MAX_BATCH_RETRIES: usize = 32;

/// One seeded chaos case.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Master seed: graph + ops + fault schedule.
    pub seed: u64,
    /// Initial graph shape and op stream (differential-suite corpus).
    pub stream: StreamConfig,
    /// Ops per `apply` batch.
    pub batch: usize,
    /// fsync on every append (slower, exercises the fsync failpoints).
    pub fsync: bool,
}

impl ChaosCase {
    /// The standard corpus case for `seed`: cycles the differential
    /// suite's graph shapes and keeps batches small so fault triggers
    /// land between acks.
    pub fn from_seed(seed: u64) -> ChaosCase {
        let kinds = [
            GraphKind::Empty { n: 10 },
            GraphKind::Gnp { n: 12, p: 0.18 },
            GraphKind::Gnp { n: 9, p: 0.35 },
            GraphKind::HolmeKim {
                n: 14,
                m: 2,
                p: 0.7,
            },
            GraphKind::PlantedPartition { groups: 2, size: 6 },
            GraphKind::Caveman { groups: 3, size: 4 },
        ];
        // analyze: allow(panic-surface): index is seed mod the non-empty const array's length
        #[allow(clippy::indexing_slicing)]
        let kind = kinds[(seed % kinds.len() as u64) as usize];
        ChaosCase {
            seed,
            stream: StreamConfig::quick(kind, seed, 30),
            batch: 1 + (seed % 5) as usize,
            fsync: seed % 3 == 0,
        }
    }
}

/// What one chaos case survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Batches acknowledged by the engine.
    pub batches_acked: u64,
    /// Faults the plan actually injected.
    pub faults_injected: u64,
    /// Successful in-process recoveries (degraded → serving).
    pub recoveries: u64,
    /// Simulated process crashes followed by reopen + WAL replay.
    pub crash_restarts: u64,
    /// Oracle checkpoints passed (κ ≡ recompute).
    pub oracle_checks: u64,
    /// Live edges at the end of the run.
    pub final_edges: u64,
}

/// Why a chaos case failed. Every variant is a real bug, not noise.
#[derive(Debug)]
pub enum ChaosFailure {
    /// κ diverged from a from-scratch recompute (silent corruption).
    Divergence(String),
    /// A batch could not be applied within [`MAX_BATCH_RETRIES`]
    /// recover/restart rounds.
    Wedged(String),
    /// The engine could not be reopened at all.
    Unrecoverable(String),
    /// Clean close + reopen did not round-trip the final state.
    DurabilityLoss(String),
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::Divergence(d) => write!(f, "kappa divergence: {d}"),
            ChaosFailure::Wedged(d) => write!(f, "engine wedged: {d}"),
            ChaosFailure::Unrecoverable(d) => write!(f, "reopen failed: {d}"),
            ChaosFailure::DurabilityLoss(d) => write!(f, "durability loss: {d}"),
        }
    }
}

/// Converts a differential-stream op into its WAL form.
fn to_wal(op: StreamOp) -> WalOp {
    match op {
        StreamOp::Insert(u, v) => WalOp::Insert(u, v),
        StreamOp::Remove(u, v) => WalOp::Remove(u, v),
    }
}

/// κ ≡ recompute on the engine's own graph; the chaos oracle.
fn check_oracle(engine: &Engine, when: &str) -> Result<(), ChaosFailure> {
    engine.publish();
    let snap = engine.snapshot();
    tkc_verify::differential::kappa_matches_recompute(
        snap.graph(),
        snap.decomposition().kappa_slice(),
    )
    .map_err(|m| ChaosFailure::Divergence(format!("{when}: {m:?}")))
}

/// Opens (or reopens) the engine over `dir` with the case's fault plan.
fn open_engine(dir: &Path, case: &ChaosCase, plan: &Arc<FaultPlan>) -> Result<Engine, EngineError> {
    let config = EngineConfig {
        fsync: case.fsync,
        epoch_ops: 0,
        compact_bytes: 0,
        fault_plan: Some(Arc::clone(plan)),
        ..EngineConfig::new(dir)
    };
    Engine::open(config)
}

/// Reopen after an injected crash or a failed open: clear the latch (the
/// restarted process gets a working disk again) and replay the WAL.
fn restart(
    dir: &Path,
    case: &ChaosCase,
    plan: &Arc<FaultPlan>,
    report: &mut ChaosReport,
) -> Result<Engine, ChaosFailure> {
    plan.clear_crash();
    report.crash_restarts += 1;
    open_engine(dir, case, plan)
        .map_err(|e| ChaosFailure::Unrecoverable(format!("after crash: {e}")))
}

/// Runs one seeded chaos case in `dir` (which must be empty or fresh).
///
/// Returns the survival report, or the first real failure. Panics never:
/// a panic anywhere under this call is itself a harness-caught bug (the
/// chaos tests run cases bare so a panic fails them loudly).
pub fn run_case(dir: &Path, case: &ChaosCase) -> Result<ChaosReport, ChaosFailure> {
    let mut report = ChaosReport::default();
    let plan = Arc::new(FaultPlan::seeded(case.seed, 64, 2048));

    // Build the deterministic workload: seed graph edges first, then the
    // generated op stream, chunked into batches.
    let g = case.stream.kind.build(case.seed);
    let n = g.num_vertices();
    let mut ops: Vec<WalOp> = Vec::with_capacity(n + g.num_edges() + case.stream.ops);
    ops.push(WalOp::AddVertices(n as u32));
    ops.extend(g.edges().map(|(_, u, v)| WalOp::Insert(u.0, v.0)));
    ops.extend(generate_ops(&case.stream, n).into_iter().map(to_wal));

    let mut engine = match open_engine(dir, case, &plan) {
        Ok(e) => e,
        Err(e) if e.is_injected_crash() => restart(dir, case, &plan, &mut report)?,
        Err(e) => return Err(ChaosFailure::Unrecoverable(format!("initial open: {e}"))),
    };

    for batch in ops.chunks(case.batch.max(1)) {
        let mut retries = 0;
        loop {
            match engine.apply(batch) {
                Ok(_) => {
                    report.batches_acked += 1;
                    break;
                }
                Err(e) => {
                    retries += 1;
                    if retries > MAX_BATCH_RETRIES {
                        return Err(ChaosFailure::Wedged(format!(
                            "batch stuck after {MAX_BATCH_RETRIES} retries: {e}"
                        )));
                    }
                    if e.is_injected_crash() || plan.crashed() {
                        // Simulated process death: reopen + WAL replay,
                        // then check replay reconstructed a sane κ.
                        drop(engine);
                        engine = restart(dir, case, &plan, &mut report)?;
                        check_oracle(&engine, "after crash replay")?;
                    } else {
                        // Degraded (ENOSPC/EIO/short write): recover in
                        // place, as the serve supervisor would.
                        match engine.recover() {
                            Ok(()) => {
                                report.recoveries += 1;
                                check_oracle(&engine, "after recovery")?;
                            }
                            Err(re) if re.is_injected_crash() || plan.crashed() => {
                                drop(engine);
                                engine = restart(dir, case, &plan, &mut report)?;
                                check_oracle(&engine, "after crash replay")?;
                            }
                            Err(_) => {
                                // Recovery can keep failing while its own
                                // failpoints fire; loop and retry.
                            }
                        }
                    }
                    report.oracle_checks += 1;
                }
            }
        }
    }

    // Final oracle over the surviving state.
    check_oracle(&engine, "end of stream")?;
    report.oracle_checks += 1;

    // Durability epilogue: disarm the harness, compact cleanly, and the
    // state must round-trip through a cold reopen bit-for-bit (same edge
    // set, same κ).
    plan.disarm();
    if engine.state() != crate::error::EngineState::Serving {
        engine
            .recover()
            .map_err(|e| ChaosFailure::Unrecoverable(format!("final recovery: {e}")))?;
        report.recoveries += 1;
    }
    engine
        .compact()
        .map_err(|e| ChaosFailure::Unrecoverable(format!("final compaction: {e}")))?;
    engine.publish();
    let before = engine.snapshot();
    report.final_edges = before.num_edges() as u64;
    report.faults_injected = plan.injected_total();
    drop(engine);

    let reopened = Engine::open(EngineConfig {
        fsync: case.fsync,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    })
    .map_err(|e| ChaosFailure::Unrecoverable(format!("clean reopen: {e}")))?;
    reopened.publish();
    let after = reopened.snapshot();
    if after.num_edges() != before.num_edges() || after.num_vertices() != before.num_vertices() {
        return Err(ChaosFailure::DurabilityLoss(format!(
            "reopen saw {}v/{}e, expected {}v/{}e",
            after.num_vertices(),
            after.num_edges(),
            before.num_vertices(),
            before.num_edges()
        )));
    }
    for (_, u, v) in before.graph().edges() {
        if after.kappa(u.0, v.0) != before.kappa(u.0, v.0) {
            return Err(ChaosFailure::DurabilityLoss(format!(
                "κ({}, {}) changed across clean reopen",
                u.0, v.0
            )));
        }
    }
    check_oracle(&reopened, "after clean reopen")?;
    report.oracle_checks += 1;
    Ok(report)
}

/// Runs seeds `[first, first + count)`, each in its own subdirectory of
/// `root`, stopping at the first failure. Returns the aggregate report.
pub fn run_seed_range(
    root: &Path,
    first: u64,
    count: u64,
) -> Result<ChaosReport, (u64, ChaosFailure)> {
    let mut total = ChaosReport::default();
    for seed in first..first + count {
        let dir = root.join(format!("seed-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let case = ChaosCase::from_seed(seed);
        let r = run_case(&dir, &case).map_err(|f| (seed, f))?;
        total.batches_acked += r.batches_acked;
        total.faults_injected += r.faults_injected;
        total.recoveries += r.recoveries;
        total.crash_restarts += r.crash_restarts;
        total.oracle_checks += r.oracle_checks;
        total.final_edges += r.final_edges;
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(total)
}

// ---------------------------------------------------------------------
// Replication chaos
// ---------------------------------------------------------------------

/// One seeded replication chaos case: a primary/follower pair under
/// link faults ([`FaultPlan::seeded_repl`]) and seeded node
/// kill/restarts, converging to identical κ after every disruption.
#[derive(Debug, Clone)]
pub struct ReplChaosCase {
    /// Master seed: graph + ops + link-fault schedule + restart script.
    pub seed: u64,
    /// Initial graph shape and op stream (differential-suite corpus).
    pub stream: StreamConfig,
    /// Ops per primary `apply` batch.
    pub batch: usize,
}

impl ReplChaosCase {
    /// The standard corpus case for `seed`. The hub ring is kept tiny
    /// (16 entries) so a follower that misses a restart window is
    /// trimmed past and must exercise the snapshot-bootstrap path.
    pub fn from_seed(seed: u64) -> ReplChaosCase {
        let kinds = [
            GraphKind::Empty { n: 10 },
            GraphKind::Gnp { n: 12, p: 0.18 },
            GraphKind::Gnp { n: 9, p: 0.35 },
            GraphKind::HolmeKim {
                n: 14,
                m: 2,
                p: 0.7,
            },
            GraphKind::PlantedPartition { groups: 2, size: 6 },
            GraphKind::Caveman { groups: 3, size: 4 },
        ];
        // analyze: allow(panic-surface): index is seed mod the non-empty const array's length
        #[allow(clippy::indexing_slicing)]
        let kind = kinds[(seed % kinds.len() as u64) as usize];
        ReplChaosCase {
            seed,
            stream: StreamConfig::quick(kind, seed, 30),
            batch: 1 + (seed % 4) as usize,
        }
    }
}

/// What one replication chaos case survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplChaosReport {
    /// Batches acknowledged by the primary.
    pub batches_acked: u64,
    /// Convergence checkpoints passed (follower κ ≡ primary κ ≡
    /// recompute).
    pub convergences: u64,
    /// Node kill/restart events executed by the seeded script.
    pub restarts: u64,
    /// Link faults the plan actually injected.
    pub faults_injected: u64,
    /// Live edges at the end of the run.
    pub final_edges: u64,
}

/// Why a replication chaos case failed. Every variant is a real bug.
#[derive(Debug)]
pub enum ReplChaosFailure {
    /// Converged seq but follower κ differs from the primary's (or
    /// either side differs from a from-scratch recompute).
    Divergence(String),
    /// The follower never caught up to the primary's seq.
    Stalled(String),
    /// A node could not be (re)opened or written at all.
    Node(String),
}

impl std::fmt::Display for ReplChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplChaosFailure::Divergence(d) => write!(f, "replica divergence: {d}"),
            ReplChaosFailure::Stalled(d) => write!(f, "follower stalled: {d}"),
            ReplChaosFailure::Node(d) => write!(f, "node failure: {d}"),
        }
    }
}

/// A live node: its engine plus the attached replication subsystem.
struct ReplNode {
    engine: Arc<Engine>,
    repl: ReplServer,
}

impl ReplNode {
    fn kill(self) {
        self.repl.shutdown();
        // Dropping the Arc simulates process death; durable state stays
        // in the node's directory for the restart.
    }
}

fn open_repl_engine(dir: &Path) -> Result<Arc<Engine>, ReplChaosFailure> {
    let config = EngineConfig {
        fsync: false,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    };
    Engine::open(config)
        .map(Arc::new)
        .map_err(|e| ReplChaosFailure::Node(format!("open {}: {e}", dir.display())))
}

fn boot_primary(
    dir: &Path,
    plan: &Arc<FaultPlan>,
) -> Result<(ReplNode, SocketAddr), ReplChaosFailure> {
    let engine = open_repl_engine(dir)?;
    let repl = repl::start(
        &engine,
        ReplOptions {
            repl_addr: Some("127.0.0.1:0".to_string()),
            stamp_interval_ops: 1,
            hub_buffer: 16,
            fault_plan: Some(Arc::clone(plan)),
            ..Default::default()
        },
    )
    .map_err(|e| ReplChaosFailure::Node(format!("primary repl start: {e}")))?;
    let addr = repl
        .repl_addr()
        .ok_or_else(|| ReplChaosFailure::Node("primary bound no repl addr".to_string()))?;
    Ok((ReplNode { engine, repl }, addr))
}

fn boot_follower(
    dir: &Path,
    plan: &Arc<FaultPlan>,
    primary: SocketAddr,
) -> Result<ReplNode, ReplChaosFailure> {
    let engine = open_repl_engine(dir)?;
    let repl = repl::start(
        &engine,
        ReplOptions {
            follow: Some(primary.to_string()),
            stamp_interval_ops: 1,
            fault_plan: Some(Arc::clone(plan)),
            ..Default::default()
        },
    )
    .map_err(|e| ReplChaosFailure::Node(format!("follower repl start: {e}")))?;
    Ok(ReplNode { engine, repl })
}

/// Waits until the follower's applied seq matches the primary's, then
/// proves κ ≡ κ ≡ recompute. The deadline is generous: link faults are
/// finite (seeded plans carry bounded counts) and reconnect backoff
/// caps at 2s, so a healthy pair always converges well inside it.
fn converge(
    primary: &ReplNode,
    follower: &ReplNode,
    when: &str,
    report: &mut ReplChaosReport,
) -> Result<(), ReplChaosFailure> {
    let target = primary.engine.applied_seq();
    let deadline = Instant::now() + Duration::from_secs(30);
    while follower.engine.applied_seq() != target {
        if Instant::now() > deadline {
            return Err(ReplChaosFailure::Stalled(format!(
                "{when}: follower at seq {} vs primary {target}",
                follower.engine.applied_seq()
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let p_stamp = primary.engine.kappa_stamp_now();
    let f_stamp = follower.engine.kappa_stamp_now();
    if p_stamp != f_stamp {
        return Err(ReplChaosFailure::Divergence(format!(
            "{when}: at seq {target} follower stamp {f_stamp:#018x} != primary {p_stamp:#018x}"
        )));
    }
    for (name, node) in [("primary", primary), ("follower", follower)] {
        node.engine.publish();
        let snap = node.engine.snapshot();
        tkc_verify::differential::kappa_matches_recompute(
            snap.graph(),
            snap.decomposition().kappa_slice(),
        )
        .map_err(|m| ReplChaosFailure::Divergence(format!("{when}: {name} vs recompute: {m:?}")))?;
    }
    report.convergences += 1;
    Ok(())
}

/// Runs one seeded replication chaos case under `root` (two node
/// directories are created inside it).
///
/// The seeded script interleaves three disruption modes with the op
/// stream — follower kill/restart, primary kill/restart (the follower
/// re-points at the new listener, as an operator would), or link
/// faults only — and requires full convergence (follower κ ≡ primary κ
/// ≡ from-scratch recompute) after every disruption and at the end.
pub fn run_repl_case(
    root: &Path,
    case: &ReplChaosCase,
) -> Result<ReplChaosReport, ReplChaosFailure> {
    let mut report = ReplChaosReport::default();
    let plan = Arc::new(FaultPlan::seeded_repl(case.seed, 48));
    let primary_dir = root.join("primary");
    let follower_dir = root.join("follower");

    // Deterministic workload, same corpus as the disk-chaos harness.
    let g = case.stream.kind.build(case.seed);
    let n = g.num_vertices();
    let mut ops: Vec<WalOp> = Vec::with_capacity(n + g.num_edges() + case.stream.ops);
    ops.push(WalOp::AddVertices(n as u32));
    ops.extend(g.edges().map(|(_, u, v)| WalOp::Insert(u.0, v.0)));
    ops.extend(generate_ops(&case.stream, n).into_iter().map(to_wal));
    let batches: Vec<&[WalOp]> = ops.chunks(case.batch.max(1)).collect();

    let (mut primary, mut addr) = boot_primary(&primary_dir, &plan)?;
    let mut follower = Some(boot_follower(&follower_dir, &plan, addr)?);

    // Disruption script: 0 = follower restart, 1 = primary restart,
    // 2 = both (staggered), 3 = link faults only.
    let mode = case.seed % 4;
    let third = (batches.len() / 3).max(1);
    let kill_follower_at = (mode == 0 || mode == 2).then_some(third);
    let restart_primary_at = (mode == 1 || mode == 2).then_some(2 * third);

    for (i, batch) in batches.iter().enumerate() {
        primary
            .engine
            .apply(batch)
            .map_err(|e| ReplChaosFailure::Node(format!("primary apply: {e}")))?;
        report.batches_acked += 1;

        if kill_follower_at == Some(i) {
            if let Some(f) = follower.take() {
                f.kill();
                report.restarts += 1;
            }
        }
        // Bring a downed follower back a few batches later — by then
        // the tiny hub ring has usually been trimmed past its seq, so
        // this is the compaction/bootstrap path under live writes.
        if kill_follower_at == Some(i.wrapping_sub(2)) && follower.is_none() {
            let f = boot_follower(&follower_dir, &plan, addr)?;
            converge(&primary, &f, "after follower restart", &mut report)?;
            follower = Some(f);
        }
        if restart_primary_at == Some(i) {
            if let Some(f) = follower.take() {
                f.kill();
            }
            primary.kill();
            report.restarts += 1;
            let (p, new_addr) = boot_primary(&primary_dir, &plan)?;
            primary = p;
            addr = new_addr;
            let f = boot_follower(&follower_dir, &plan, addr)?;
            converge(&primary, &f, "after primary restart", &mut report)?;
            follower = Some(f);
        }
    }

    // A follower still down at end-of-stream comes back for the final
    // convergence.
    let follower = match follower {
        Some(f) => f,
        None => boot_follower(&follower_dir, &plan, addr)?,
    };
    converge(&primary, &follower, "end of stream", &mut report)?;
    report.faults_injected = plan.injected_total();
    primary.engine.publish();
    report.final_edges = primary.engine.snapshot().num_edges() as u64;
    follower.kill();
    primary.kill();
    Ok(report)
}

/// Runs replication chaos seeds `[first, first + count)`, each in its
/// own subdirectory of `root`, stopping at the first failure.
pub fn run_repl_seed_range(
    root: &Path,
    first: u64,
    count: u64,
) -> Result<ReplChaosReport, (u64, ReplChaosFailure)> {
    let mut total = ReplChaosReport::default();
    for seed in first..first + count {
        let dir = root.join(format!("repl-seed-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let case = ReplChaosCase::from_seed(seed);
        let r = run_repl_case(&dir, &case).map_err(|f| (seed, f))?;
        total.batches_acked += r.batches_acked;
        total.convergences += r.convergences;
        total.restarts += r.restarts;
        total.faults_injected += r.faults_injected;
        total.final_edges += r.final_edges;
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn temp_root(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_chaos_unit").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn cases_are_deterministic_in_their_seed() {
        let a = ChaosCase::from_seed(42);
        let b = ChaosCase::from_seed(42);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.fsync, b.fsync);
    }

    #[test]
    fn a_small_seed_range_survives() {
        let root = temp_root("small_range");
        let total = run_seed_range(&root, 0, 8).unwrap_or_else(|(s, f)| panic!("seed {s}: {f}"));
        assert!(total.batches_acked > 0);
        assert!(total.oracle_checks >= 16, "oracle barely ran: {total:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn a_small_repl_seed_range_converges() {
        let root = temp_root("repl_small_range");
        let total =
            run_repl_seed_range(&root, 0, 4).unwrap_or_else(|(s, f)| panic!("repl seed {s}: {f}"));
        assert!(total.batches_acked > 0);
        assert!(total.convergences >= 4, "barely converged: {total:?}");
        assert!(total.restarts > 0, "no node was ever killed: {total:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn divergence_probe_demotes_and_rebootstraps() {
        let root = temp_root("repl_divergence");
        let plan = Arc::new(FaultPlan::with_points(vec![], 0));
        let (primary, addr) = boot_primary(&root.join("primary"), &plan).unwrap();
        let follower = boot_follower(&root.join("follower"), &plan, addr).unwrap();
        let mut report = ReplChaosReport::default();
        let seed: Vec<WalOp> = vec![
            WalOp::AddVertices(6),
            WalOp::Insert(0, 1),
            WalOp::Insert(1, 2),
            WalOp::Insert(2, 0),
        ];
        primary.engine.apply(&seed).unwrap();
        converge(&primary, &follower, "setup", &mut report).unwrap();

        // Corrupt the follower behind replication's back: a local write
        // the primary never saw. Its κ (and seq) now silently disagree.
        follower
            .engine
            .set_state(crate::error::EngineState::Serving);
        follower.engine.apply(&[WalOp::Insert(0, 3)]).unwrap();
        follower
            .engine
            .set_state(crate::error::EngineState::Follower);

        // Keep writing on the primary; the stamp probe must catch the
        // lie, demote the follower to Diverged, and re-bootstrap it.
        primary
            .engine
            .apply(&[
                WalOp::Insert(3, 4),
                WalOp::Insert(4, 5),
                WalOp::Insert(5, 3),
            ])
            .unwrap();
        // Wait for the probe to fire and the re-bootstrap to land before
        // checking convergence (seq alone can transiently match while
        // the content is still wrong).
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = follower.engine.metrics_text();
            if stats.contains("repl_divergences 1") && stats.contains("repl_bootstraps 1") {
                break;
            }
            assert!(Instant::now() < deadline, "probe never fired:\n{stats}");
            std::thread::sleep(Duration::from_millis(20));
        }
        converge(&primary, &follower, "after divergence", &mut report).unwrap();
        follower.kill();
        primary.kill();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn injected_faults_actually_fire_across_a_range() {
        // Not every seed's schedule triggers within its stream, but across
        // a range some must — otherwise the harness is a no-op.
        let root = temp_root("faults_fire");
        let total = run_seed_range(&root, 100, 12).unwrap_or_else(|(s, f)| panic!("seed {s}: {f}"));
        assert!(
            total.faults_injected > 0,
            "no faults fired across 12 seeds: {total:?}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
