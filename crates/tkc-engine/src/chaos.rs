//! Chaos harness: drive the differential-suite op corpus through a real
//! [`Engine`] while a seeded [`FaultPlan`] injects disk failures, and
//! prove the engine never lies about κ.
//!
//! Each case is **fully determined by its seed**: the initial graph, the
//! op stream (both borrowed from [`tkc_verify::differential`]), and the
//! fault schedule ([`FaultPlan::seeded`]) all derive from it, so any
//! failing seed is a one-integer reproduction.
//!
//! The harness reacts to failures exactly the way production does:
//!
//! * **Degraded** (`ENOSPC`, `EIO`, short write, fsync failure) — the
//!   batch was not acknowledged; call [`Engine::recover`] like the serve
//!   supervisor would and retry the same batch (idempotent ops make the
//!   at-least-once retry safe).
//! * **Injected crash** — the simulated process is dead. Drop the engine,
//!   clear the crash latch (the "restarted process" gets a working disk),
//!   reopen from the same directory, and let WAL replay rebuild state.
//!
//! After every recovery/restart and again at the end, the **oracle** is
//! [`kappa_matches_recompute`]: the engine's maintained κ must equal a
//! from-scratch decomposition of its own graph. Divergence means silent
//! corruption slipped through — the thing this harness exists to catch.
//! Finally the engine is closed cleanly (faults disarmed), reopened, and
//! the surviving edge set + κ must round-trip unchanged.

use std::path::Path;
use std::sync::Arc;

use tkc_faults::FaultPlan;
use tkc_verify::differential::{generate_ops, GraphKind, StreamConfig, StreamOp};

use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use crate::wal::WalOp;

/// How many times a single batch may bounce through recover/restart
/// before the case is declared wedged. Seeded plans carry at most 3
/// failpoints, so a healthy engine always gets through well before this.
const MAX_BATCH_RETRIES: usize = 32;

/// One seeded chaos case.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Master seed: graph + ops + fault schedule.
    pub seed: u64,
    /// Initial graph shape and op stream (differential-suite corpus).
    pub stream: StreamConfig,
    /// Ops per `apply` batch.
    pub batch: usize,
    /// fsync on every append (slower, exercises the fsync failpoints).
    pub fsync: bool,
}

impl ChaosCase {
    /// The standard corpus case for `seed`: cycles the differential
    /// suite's graph shapes and keeps batches small so fault triggers
    /// land between acks.
    pub fn from_seed(seed: u64) -> ChaosCase {
        let kinds = [
            GraphKind::Empty { n: 10 },
            GraphKind::Gnp { n: 12, p: 0.18 },
            GraphKind::Gnp { n: 9, p: 0.35 },
            GraphKind::HolmeKim {
                n: 14,
                m: 2,
                p: 0.7,
            },
            GraphKind::PlantedPartition { groups: 2, size: 6 },
            GraphKind::Caveman { groups: 3, size: 4 },
        ];
        // analyze: allow(panic-surface): index is seed mod the non-empty const array's length
        #[allow(clippy::indexing_slicing)]
        let kind = kinds[(seed % kinds.len() as u64) as usize];
        ChaosCase {
            seed,
            stream: StreamConfig::quick(kind, seed, 30),
            batch: 1 + (seed % 5) as usize,
            fsync: seed % 3 == 0,
        }
    }
}

/// What one chaos case survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Batches acknowledged by the engine.
    pub batches_acked: u64,
    /// Faults the plan actually injected.
    pub faults_injected: u64,
    /// Successful in-process recoveries (degraded → serving).
    pub recoveries: u64,
    /// Simulated process crashes followed by reopen + WAL replay.
    pub crash_restarts: u64,
    /// Oracle checkpoints passed (κ ≡ recompute).
    pub oracle_checks: u64,
    /// Live edges at the end of the run.
    pub final_edges: u64,
}

/// Why a chaos case failed. Every variant is a real bug, not noise.
#[derive(Debug)]
pub enum ChaosFailure {
    /// κ diverged from a from-scratch recompute (silent corruption).
    Divergence(String),
    /// A batch could not be applied within [`MAX_BATCH_RETRIES`]
    /// recover/restart rounds.
    Wedged(String),
    /// The engine could not be reopened at all.
    Unrecoverable(String),
    /// Clean close + reopen did not round-trip the final state.
    DurabilityLoss(String),
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::Divergence(d) => write!(f, "kappa divergence: {d}"),
            ChaosFailure::Wedged(d) => write!(f, "engine wedged: {d}"),
            ChaosFailure::Unrecoverable(d) => write!(f, "reopen failed: {d}"),
            ChaosFailure::DurabilityLoss(d) => write!(f, "durability loss: {d}"),
        }
    }
}

/// Converts a differential-stream op into its WAL form.
fn to_wal(op: StreamOp) -> WalOp {
    match op {
        StreamOp::Insert(u, v) => WalOp::Insert(u, v),
        StreamOp::Remove(u, v) => WalOp::Remove(u, v),
    }
}

/// κ ≡ recompute on the engine's own graph; the chaos oracle.
fn check_oracle(engine: &Engine, when: &str) -> Result<(), ChaosFailure> {
    engine.publish();
    let snap = engine.snapshot();
    tkc_verify::differential::kappa_matches_recompute(
        snap.graph(),
        snap.decomposition().kappa_slice(),
    )
    .map_err(|m| ChaosFailure::Divergence(format!("{when}: {m:?}")))
}

/// Opens (or reopens) the engine over `dir` with the case's fault plan.
fn open_engine(dir: &Path, case: &ChaosCase, plan: &Arc<FaultPlan>) -> Result<Engine, EngineError> {
    let config = EngineConfig {
        fsync: case.fsync,
        epoch_ops: 0,
        compact_bytes: 0,
        fault_plan: Some(Arc::clone(plan)),
        ..EngineConfig::new(dir)
    };
    Engine::open(config)
}

/// Reopen after an injected crash or a failed open: clear the latch (the
/// restarted process gets a working disk again) and replay the WAL.
fn restart(
    dir: &Path,
    case: &ChaosCase,
    plan: &Arc<FaultPlan>,
    report: &mut ChaosReport,
) -> Result<Engine, ChaosFailure> {
    plan.clear_crash();
    report.crash_restarts += 1;
    open_engine(dir, case, plan)
        .map_err(|e| ChaosFailure::Unrecoverable(format!("after crash: {e}")))
}

/// Runs one seeded chaos case in `dir` (which must be empty or fresh).
///
/// Returns the survival report, or the first real failure. Panics never:
/// a panic anywhere under this call is itself a harness-caught bug (the
/// chaos tests run cases bare so a panic fails them loudly).
pub fn run_case(dir: &Path, case: &ChaosCase) -> Result<ChaosReport, ChaosFailure> {
    let mut report = ChaosReport::default();
    let plan = Arc::new(FaultPlan::seeded(case.seed, 64, 2048));

    // Build the deterministic workload: seed graph edges first, then the
    // generated op stream, chunked into batches.
    let g = case.stream.kind.build(case.seed);
    let n = g.num_vertices();
    let mut ops: Vec<WalOp> = Vec::with_capacity(n + g.num_edges() + case.stream.ops);
    ops.push(WalOp::AddVertices(n as u32));
    ops.extend(g.edges().map(|(_, u, v)| WalOp::Insert(u.0, v.0)));
    ops.extend(generate_ops(&case.stream, n).into_iter().map(to_wal));

    let mut engine = match open_engine(dir, case, &plan) {
        Ok(e) => e,
        Err(e) if e.is_injected_crash() => restart(dir, case, &plan, &mut report)?,
        Err(e) => return Err(ChaosFailure::Unrecoverable(format!("initial open: {e}"))),
    };

    for batch in ops.chunks(case.batch.max(1)) {
        let mut retries = 0;
        loop {
            match engine.apply(batch) {
                Ok(_) => {
                    report.batches_acked += 1;
                    break;
                }
                Err(e) => {
                    retries += 1;
                    if retries > MAX_BATCH_RETRIES {
                        return Err(ChaosFailure::Wedged(format!(
                            "batch stuck after {MAX_BATCH_RETRIES} retries: {e}"
                        )));
                    }
                    if e.is_injected_crash() || plan.crashed() {
                        // Simulated process death: reopen + WAL replay,
                        // then check replay reconstructed a sane κ.
                        drop(engine);
                        engine = restart(dir, case, &plan, &mut report)?;
                        check_oracle(&engine, "after crash replay")?;
                    } else {
                        // Degraded (ENOSPC/EIO/short write): recover in
                        // place, as the serve supervisor would.
                        match engine.recover() {
                            Ok(()) => {
                                report.recoveries += 1;
                                check_oracle(&engine, "after recovery")?;
                            }
                            Err(re) if re.is_injected_crash() || plan.crashed() => {
                                drop(engine);
                                engine = restart(dir, case, &plan, &mut report)?;
                                check_oracle(&engine, "after crash replay")?;
                            }
                            Err(_) => {
                                // Recovery can keep failing while its own
                                // failpoints fire; loop and retry.
                            }
                        }
                    }
                    report.oracle_checks += 1;
                }
            }
        }
    }

    // Final oracle over the surviving state.
    check_oracle(&engine, "end of stream")?;
    report.oracle_checks += 1;

    // Durability epilogue: disarm the harness, compact cleanly, and the
    // state must round-trip through a cold reopen bit-for-bit (same edge
    // set, same κ).
    plan.disarm();
    if engine.state() != crate::error::EngineState::Serving {
        engine
            .recover()
            .map_err(|e| ChaosFailure::Unrecoverable(format!("final recovery: {e}")))?;
        report.recoveries += 1;
    }
    engine
        .compact()
        .map_err(|e| ChaosFailure::Unrecoverable(format!("final compaction: {e}")))?;
    engine.publish();
    let before = engine.snapshot();
    report.final_edges = before.num_edges() as u64;
    report.faults_injected = plan.injected_total();
    drop(engine);

    let reopened = Engine::open(EngineConfig {
        fsync: case.fsync,
        epoch_ops: 0,
        compact_bytes: 0,
        ..EngineConfig::new(dir)
    })
    .map_err(|e| ChaosFailure::Unrecoverable(format!("clean reopen: {e}")))?;
    reopened.publish();
    let after = reopened.snapshot();
    if after.num_edges() != before.num_edges() || after.num_vertices() != before.num_vertices() {
        return Err(ChaosFailure::DurabilityLoss(format!(
            "reopen saw {}v/{}e, expected {}v/{}e",
            after.num_vertices(),
            after.num_edges(),
            before.num_vertices(),
            before.num_edges()
        )));
    }
    for (_, u, v) in before.graph().edges() {
        if after.kappa(u.0, v.0) != before.kappa(u.0, v.0) {
            return Err(ChaosFailure::DurabilityLoss(format!(
                "κ({}, {}) changed across clean reopen",
                u.0, v.0
            )));
        }
    }
    check_oracle(&reopened, "after clean reopen")?;
    report.oracle_checks += 1;
    Ok(report)
}

/// Runs seeds `[first, first + count)`, each in its own subdirectory of
/// `root`, stopping at the first failure. Returns the aggregate report.
pub fn run_seed_range(
    root: &Path,
    first: u64,
    count: u64,
) -> Result<ChaosReport, (u64, ChaosFailure)> {
    let mut total = ChaosReport::default();
    for seed in first..first + count {
        let dir = root.join(format!("seed-{seed}"));
        std::fs::remove_dir_all(&dir).ok();
        let case = ChaosCase::from_seed(seed);
        let r = run_case(&dir, &case).map_err(|f| (seed, f))?;
        total.batches_acked += r.batches_acked;
        total.faults_injected += r.faults_injected;
        total.recoveries += r.recoveries;
        total.crash_restarts += r.crash_restarts;
        total.oracle_checks += r.oracle_checks;
        total.final_edges += r.final_edges;
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn temp_root(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tkc_chaos_unit").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn cases_are_deterministic_in_their_seed() {
        let a = ChaosCase::from_seed(42);
        let b = ChaosCase::from_seed(42);
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.batch, b.batch);
        assert_eq!(a.fsync, b.fsync);
    }

    #[test]
    fn a_small_seed_range_survives() {
        let root = temp_root("small_range");
        let total = run_seed_range(&root, 0, 8).unwrap_or_else(|(s, f)| panic!("seed {s}: {f}"));
        assert!(total.batches_acked > 0);
        assert!(total.oracle_checks >= 16, "oracle barely ran: {total:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn injected_faults_actually_fire_across_a_range() {
        // Not every seed's schedule triggers within its stream, but across
        // a range some must — otherwise the harness is a no-op.
        let root = temp_root("faults_fire");
        let total = run_seed_range(&root, 100, 12).unwrap_or_else(|(s, f)| panic!("seed {s}: {f}"));
        assert!(
            total.faults_injected > 0,
            "no faults fired across 12 seeds: {total:?}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
