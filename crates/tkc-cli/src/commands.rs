//! The `tkc` subcommands.

use tkc_core::decompose::{
    triangle_kcore_decomposition, triangle_kcore_decomposition_stored,
    triangle_kcore_decomposition_timed, Decomposition,
};
use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore};
use tkc_core::extract::densest_cliques;
use tkc_graph::{io, Graph, VertexId};
use tkc_patterns::{detect_template, AttributedGraph, Template};
use tkc_viz::ordering::kappa_density_plot;
use tkc_viz::plot::{ascii_sparkline, density_plot_tsv, render_density_plot, PlotStyle};

use crate::args::parse;

/// Usage text printed on errors.
pub const USAGE: &str = "usage:
  tkc decompose <edges.txt> [--stored] [--top K] [--threads N] [--timings]
  tkc plot      <edges.txt> [--svg out.svg] [--tsv out.tsv] [--width N]
  tkc cliques   <edges.txt> [--top K]
  tkc update    <edges.txt> --ops <ops.txt> [--verify]
  tkc patterns  <old.txt> <new.txt> --template new-form|bridge|new-join [--top K]
                (or: <edges.txt> --labels <labels.txt> for the static variant)
  tkc events    <old.txt> <new.txt> [--level K]
  tkc dual-view <old.txt> <new.txt> [--svg out.svg] [--top K]
  tkc stats     <edges.txt> [--svg hist.svg] [--tsv dist.tsv]
  tkc community <edges.txt> <vertex> [--level K]
  tkc dataset   <name> [--scale F] [--seed S] [--out file]
                (name `streamed`: block-streamed ~150k-vertex/~1.3M-edge
                 synthetic, written as SNAP lines without materializing)
  tkc store     pack <edges.txt | state-dir> [--out file.tkcstor]
  tkc store     info <file.tkcstor>
  tkc store     decompose <file.tkcstor> [--budget N[k|m|g]]
  tkc verify    <edges.txt> [--stored] [--ops <ops.txt>] [--threads N]
  tkc verify    --suite [--cases N]
  tkc serve     <state-dir> [--addr host:port] [--epoch-ops N]
                [--compact-bytes N] [--queue-cap N]
                [--idle-timeout-ms N] [--max-conns N]
                [--max-line-bytes N] [--request-budget N]
                [--recover-backoff-ms N] [--no-fsync]
                [--failpoint site=kind@trigger[xN],...]
                [--repl-addr host:port | --follow host:port]
                [--metrics-addr host:port] [--trace-out file.jsonl]
                [--trace-cap N] [--slow-op-ms N] [--slo SPEC]
  tkc obs       report [--trace file.jsonl] [--metrics-url host:port]
                [--top N]
  tkc chaos     [--seeds N] [--start-seed S] [--dir root] [--repl]
  tkc analyze   [--root dir] [--policy analyze.toml] [--format text|json]

(--threads 0 = all cores; the support stage of Algorithm 1 runs on the
 wedge-balanced worker pool; TKC_LOG=error|warn|info|debug tunes
 diagnostics on stderr)

serve speaks a line protocol on --addr (default 127.0.0.1:7007):
  KAPPA u v | MAXK | TRUSS k | INSERT u v | REMOVE u v | BATCH n
  STATS | METRICS | SLO | TRACE n | HEALTH | PROMOTE | EPOCH | PING
  QUIT | SHUTDOWN

--metrics-addr additionally serves Prometheus text at GET /metrics;
--trace-out enables the structured op trace and request spans (last
--trace-cap records each, default 4096) and writes both as JSONL on
shutdown; --slow-op-ms logs any request slower than N ms with its full
span tree; --slo arms per-verb latency objectives (SPEC is
`VERB=ms[@objective],...`, e.g. `INSERT=5,KAPPA=0.5@0.999`) reported by
the SLO verb and tkc_slo_* gauges; `tkc obs report` renders a trace
JSONL and/or a /metrics scrape as a human-readable snapshot

--failpoint arms deterministic fault injection on the WAL and the
replication link (sites wal.open|wal.append|wal.fsync|wal.truncate|
repl.connect|repl.send|repl.recv; kinds short|enospc|eio|bitflip|crash|
stall), e.g. wal.append=enospc@100 — a failed append degrades the
server to read-only serving (writes answer ERR DEGRADED) until the
recovery supervisor brings it back; HEALTH and /metrics expose the state

--repl-addr starts WAL-shipping replication: followers started with
--follow <that addr> stream the primary's log, serve reads, and answer
writes with ERR READONLY <primary>; PROMOTE on a follower fences the
old primary and makes the follower writable at a higher term

chaos replays seeded fault schedules (graph, ops, and failures all
derived from the seed) through a real engine and fails on any panic,
κ divergence from recompute, or durability loss across reopen; with
--repl it runs primary/follower pairs under link faults and node
kill/restarts instead, requiring follower κ ≡ primary κ ≡ recompute
after every convergence";

/// Dispatches a full argv (without the program name).
pub fn run(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &[
            "top",
            "svg",
            "tsv",
            "width",
            "ops",
            "template",
            "scale",
            "seed",
            "out",
            "level",
            "labels",
            "cases",
            "threads",
            "addr",
            "epoch-ops",
            "compact-bytes",
            "queue-cap",
            "read-timeout-ms",
            "idle-timeout-ms",
            "max-conns",
            "max-line-bytes",
            "request-budget",
            "recover-backoff-ms",
            "failpoint",
            "repl-addr",
            "follow",
            "metrics-addr",
            "trace-out",
            "trace-cap",
            "slow-op-ms",
            "slo",
            "trace",
            "metrics-url",
            "seeds",
            "start-seed",
            "dir",
            "root",
            "policy",
            "format",
            "budget",
        ],
    )?;
    match p.positional(0, "subcommand")? {
        "decompose" => decompose(&p),
        "plot" => plot(&p),
        "cliques" => cliques(&p),
        "update" => update(&p),
        "patterns" => patterns(&p),
        "events" => events(&p),
        "dual-view" => dual_view_cmd(&p),
        "stats" => stats(&p),
        "community" => community(&p),
        "dataset" => dataset(&p),
        "store" => store(&p),
        "verify" => verify(&p),
        "serve" => serve(&p),
        "obs" => obs(&p),
        "chaos" => chaos(&p),
        "analyze" => analyze(&p),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load(path: &str) -> Result<Graph, String> {
    io::load_edge_list(path).map_err(|e| format!("{path}: {e}"))
}

fn summarize(g: &Graph, d: &Decomposition) {
    println!(
        "{} vertices, {} edges, max κ = {} (≈ {}-clique structure)",
        g.num_vertices(),
        g.num_edges(),
        d.max_kappa(),
        d.max_kappa() + 2
    );
    let hist = d.histogram();
    println!("κ histogram:");
    for (k, count) in hist.iter().enumerate() {
        if *count > 0 {
            println!("  κ = {k:>3}: {count}");
        }
    }
}

fn decompose(p: &crate::args::Parsed) -> Result<(), String> {
    let g = load(p.positional(1, "edge list path")?)?;
    let threads: usize = p.flag_parse("threads", 1)?;
    if p.switch("timings") && p.switch("stored") {
        return Err("--timings requires the CSR path (drop --stored)".into());
    }
    let d = if p.switch("stored") {
        triangle_kcore_decomposition_stored(&g)
    } else if p.switch("timings") {
        let (d, t) = triangle_kcore_decomposition_timed(&g, threads);
        println!(
            "phase timings: freeze {:?}, supports {:?}, peel {:?} (total {:?})",
            t.freeze,
            t.supports,
            t.peel,
            t.total()
        );
        d
    } else {
        Decomposition::compute_with(&g, threads)
    };
    summarize(&g, &d);
    let top: usize = p.flag_parse("top", 0)?;
    if top > 0 {
        let mut edges: Vec<_> = g.edge_ids().collect();
        edges.sort_by_key(|&e| std::cmp::Reverse(d.kappa(e)));
        println!("densest edges:");
        for &e in edges.iter().take(top) {
            let (u, v) = g.endpoints(e);
            println!("  ({u}, {v})  κ = {}", d.kappa(e));
        }
    }
    Ok(())
}

fn plot(p: &crate::args::Parsed) -> Result<(), String> {
    let g = load(p.positional(1, "edge list path")?)?;
    let d = triangle_kcore_decomposition(&g);
    let plot = kappa_density_plot(&g, &d);
    let width: usize = p.flag_parse("width", 80usize)?;
    println!("{}", ascii_sparkline(&plot, width));
    if let Some(path) = p.flag("svg") {
        let svg = render_density_plot(
            &plot,
            &PlotStyle {
                title: format!("Triangle K-Core density ({} vertices)", plot.len()),
                ..PlotStyle::default()
            },
        );
        std::fs::write(path, svg).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = p.flag("tsv") {
        std::fs::write(path, density_plot_tsv(&plot)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cliques(p: &crate::args::Parsed) -> Result<(), String> {
    let g = load(p.positional(1, "edge list path")?)?;
    let d = triangle_kcore_decomposition(&g);
    let top: usize = p.flag_parse("top", 5usize)?;
    let found = densest_cliques(&g, &d, top);
    if found.is_empty() {
        println!("no exact cliques of size ≥ 3 found");
        return Ok(());
    }
    for c in found.iter().take(top) {
        println!(
            "{}-clique at level {}: {:?}",
            c.vertices.len(),
            c.level,
            c.vertices.iter().map(|v| v.0).collect::<Vec<_>>()
        );
    }
    Ok(())
}

/// Parses an ops file: `+ u v` inserts, `- u v` deletes.
pub fn parse_ops(text: &str) -> Result<Vec<BatchOp>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let (sign, u, v) = (parts.next(), parts.next(), parts.next());
        let parse_v = |s: Option<&str>| -> Result<VertexId, String> {
            s.and_then(|x| x.parse::<u32>().ok())
                .map(VertexId)
                .ok_or_else(|| format!("ops line {}: bad vertex", lineno + 1))
        };
        match sign {
            Some("+") => ops.push(BatchOp::Insert(parse_v(u)?, parse_v(v)?)),
            Some("-") => ops.push(BatchOp::Remove(parse_v(u)?, parse_v(v)?)),
            _ => {
                return Err(format!(
                    "ops line {}: expected '+ u v' or '- u v'",
                    lineno + 1
                ))
            }
        }
    }
    Ok(ops)
}

fn update(p: &crate::args::Parsed) -> Result<(), String> {
    let g = load(p.positional(1, "edge list path")?)?;
    let ops_path = p.flag("ops").ok_or("update requires --ops <file>")?;
    let text = std::fs::read_to_string(ops_path).map_err(|e| format!("{ops_path}: {e}"))?;
    let ops = parse_ops(&text)?;

    let mut m = DynamicTriangleKCore::new(g);
    // Grow the vertex set if ops reference unseen ids.
    let max_v = ops
        .iter()
        .map(|op| match op {
            BatchOp::Insert(u, v) | BatchOp::Remove(u, v) => u.0.max(v.0),
        })
        .max()
        .unwrap_or(0) as usize;
    if max_v >= m.graph().num_vertices() {
        m.add_vertices(max_v + 1 - m.graph().num_vertices());
    }
    let start = std::time::Instant::now();
    let (ins, del) = m.apply_batch(ops);
    let took = start.elapsed();
    println!("applied {ins} insertions and {del} deletions in {took:?}");
    let stats = m.stats();
    println!(
        "{} promotions, {} demotions, {} edges examined",
        stats.promotions, stats.demotions, stats.edges_examined
    );
    if p.switch("verify") {
        let fresh = triangle_kcore_decomposition(m.graph());
        let ok = m.graph().edge_ids().all(|e| m.kappa(e) == fresh.kappa(e));
        println!(
            "verification against recompute: {}",
            if ok { "OK" } else { "MISMATCH" }
        );
        if !ok {
            return Err("maintained κ diverged from recompute".into());
        }
    }
    let d = Decomposition::from_kappa_for_display(m);
    println!("{}", d);
    Ok(())
}

/// Parses a vertex-label file: one `vertex label` pair per line (`#`
/// comments allowed); labels default to 0 for unlisted vertices.
fn parse_labels(text: &str, n: usize) -> Result<Vec<u32>, String> {
    let mut labels = vec![0u32; n];
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let bad = || format!("labels line {}: expected 'vertex label'", lineno + 1);
        let v: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let l: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        if v >= n {
            return Err(format!(
                "labels line {}: vertex {v} out of range",
                lineno + 1
            ));
        }
        labels[v] = l;
    }
    Ok(labels)
}

fn patterns(p: &crate::args::Parsed) -> Result<(), String> {
    let name = p.flag("template").ok_or("patterns requires --template")?;
    let template: Box<dyn Template> = match name {
        "new-form" => Box::new(tkc_patterns::NewFormClique),
        "bridge" => Box::new(tkc_patterns::BridgeClique),
        "new-join" => Box::new(tkc_patterns::NewJoinClique),
        other => return Err(format!("unknown template {other:?}")),
    };
    // Two modes: evolving snapshots (two edge lists) or the §VII-F static
    // labeled variant (one edge list + --labels, "new" = label-crossing).
    let ag = if let Some(label_path) = p.flag("labels") {
        let g = load(p.positional(1, "edge list path")?)?;
        let text = std::fs::read_to_string(label_path).map_err(|e| format!("{label_path}: {e}"))?;
        let labels = parse_labels(&text, g.num_vertices())?;
        AttributedGraph::from_vertex_labels(g, &labels)
    } else {
        let old = load(p.positional(1, "old edge list")?)?;
        let mut new = load(p.positional(2, "new edge list")?)?;
        if new.num_vertices() < old.num_vertices() {
            new.add_vertices(old.num_vertices() - new.num_vertices());
        }
        AttributedGraph::from_snapshots(&old, &new)
    };
    let res = detect_template(&ag, template.as_ref());
    println!(
        "{}: {} special edges over {} special vertices",
        template.name(),
        res.special_edge_count(),
        res.special_vertices.len()
    );
    let top: usize = p.flag_parse("top", 3usize)?;
    for c in res.top_structures(top) {
        println!(
            "  {} vertices at level {} ({}): {:?}",
            c.vertices.len(),
            c.level,
            if c.is_clique() {
                "exact clique"
            } else {
                "clique-like"
            },
            c.vertices.iter().map(|v| v.0).collect::<Vec<_>>()
        );
    }
    Ok(())
}

fn stats(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_core::extract::kappa_stats;
    use tkc_viz::distribution::{distribution_tsv, render_kappa_histogram};
    let g = load(p.positional(1, "edge list path")?)?;
    let d = triangle_kcore_decomposition(&g);
    let s = kappa_stats(&g, &d);
    println!("edges:                  {}", s.edges);
    println!(
        "max κ:                  {} (≈ {}-clique)",
        s.max_kappa,
        s.max_kappa + 2
    );
    println!("mean κ:                 {:.3}", s.mean_kappa);
    println!(
        "triangle-free edges:    {:.1}%",
        100.0 * s.triangle_free_fraction
    );
    println!("top-level cores:        {}", s.top_level_cores);
    let hist = d.histogram();
    if let Some(path) = p.flag("svg") {
        std::fs::write(
            path,
            render_kappa_histogram(&hist, "κ distribution", 600, 260),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = p.flag("tsv") {
        std::fs::write(path, distribution_tsv(&hist)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn community(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_core::extract::communities_of_vertex;
    let g = load(p.positional(1, "edge list path")?)?;
    let v: u32 = p
        .positional(2, "query vertex id")?
        .parse()
        .map_err(|_| "query vertex must be a number".to_string())?;
    let v = VertexId(v);
    if !g.contains_vertex(v) {
        return Err(format!("vertex {v} not in graph"));
    }
    let d = triangle_kcore_decomposition(&g);
    let default_level = g
        .neighbors(v)
        .map(|(_, e)| d.kappa(e))
        .max()
        .unwrap_or(0)
        .max(1);
    let level: u32 = p.flag_parse("level", default_level)?;
    let comms = communities_of_vertex(&g, &d, v, level);
    if comms.is_empty() {
        println!("vertex {v} is in no Triangle {level}-Core community");
        return Ok(());
    }
    for (i, c) in comms.iter().enumerate() {
        println!(
            "community {} at level {level}: {} vertices, {} edges{}",
            i + 1,
            c.vertices.len(),
            c.edges.len(),
            if c.is_clique() { " (exact clique)" } else { "" }
        );
        if c.vertices.len() <= 30 {
            println!("  {:?}", c.vertices.iter().map(|x| x.0).collect::<Vec<_>>());
        }
    }
    Ok(())
}

fn events(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_patterns::events::{detect_events, Event, EventOptions};
    let old = load(p.positional(1, "old edge list")?)?;
    let new = load(p.positional(2, "new edge list")?)?;
    let level: u32 = p.flag_parse("level", 2u32)?;
    let rep = detect_events(&old, &new, level, &EventOptions::default());
    println!(
        "level-{level} cores: {} before, {} after",
        rep.old_cores.len(),
        rep.new_cores.len()
    );
    let size = |cores: &[tkc_core::extract::Core], i: usize| cores[i].vertices.len();
    for ev in &rep.events {
        match ev {
            Event::Continue {
                before,
                after,
                jaccard,
            } => println!(
                "  CONTINUE  {}v → {}v (jaccard {jaccard:.2})",
                size(&rep.old_cores, *before),
                size(&rep.new_cores, *after)
            ),
            Event::Grow {
                before,
                after,
                gained,
            } => println!(
                "  GROW      {}v → {}v (+{gained})",
                size(&rep.old_cores, *before),
                size(&rep.new_cores, *after)
            ),
            Event::Shrink {
                before,
                after,
                lost,
            } => println!(
                "  SHRINK    {}v → {}v (-{lost})",
                size(&rep.old_cores, *before),
                size(&rep.new_cores, *after)
            ),
            Event::Merge { before, after } => println!(
                "  MERGE     {} cores → {}v",
                before.len(),
                size(&rep.new_cores, *after)
            ),
            Event::Split { before, after } => println!(
                "  SPLIT     {}v → {} cores",
                size(&rep.old_cores, *before),
                after.len()
            ),
            Event::Form { after } => println!("  FORM      → {}v", size(&rep.new_cores, *after)),
            Event::Dissolve { before } => {
                println!("  DISSOLVE  {}v", size(&rep.old_cores, *before))
            }
        }
    }
    Ok(())
}

fn dual_view_cmd(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_viz::dual_view::{dual_view, marker_table_tsv, render_dual_view};
    let old = load(p.positional(1, "old edge list")?)?;
    let mut new = load(p.positional(2, "new edge list")?)?;
    if new.num_vertices() < old.num_vertices() {
        new.add_vertices(old.num_vertices() - new.num_vertices());
    }
    // Additions = edges of `new` absent from `old`. Vertices beyond the
    // old snapshot's range are appended as isolated vertices first.
    let mut base = old.clone();
    if base.num_vertices() < new.num_vertices() {
        base.add_vertices(new.num_vertices() - base.num_vertices());
    }
    let additions: Vec<(VertexId, VertexId)> = new
        .edges()
        .filter(|&(_, u, v)| !base.has_edge(u, v))
        .map(|(_, u, v)| (u, v))
        .collect();
    let top: usize = p.flag_parse("top", 3usize)?;
    let view = dual_view(&base, &additions, top);
    println!(
        "{} added edges; {} changed structures marked",
        view.added_edges.len(),
        view.markers.len()
    );
    for (i, m) in view.markers.iter().enumerate() {
        println!(
            "  marker {}: κ = {} over {} vertices",
            i + 1,
            m.level,
            m.vertices.len()
        );
    }
    if let Some(path) = p.flag("svg") {
        std::fs::write(path, render_dual_view(&view, 900, 230)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = p.flag("tsv") {
        std::fs::write(path, marker_table_tsv(&view)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn dataset(p: &crate::args::Parsed) -> Result<(), String> {
    let name = p.positional(1, "dataset name (see Table I)")?;
    if name == "streamed" {
        return dataset_streamed(p);
    }
    let id = tkc_datasets::DatasetId::from_name(name)
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale: f64 = p.flag_parse("scale", id.info().default_scale)?;
    let seed: u64 = p.flag_parse("seed", 42u64)?;
    let g = tkc_datasets::build(id, scale, seed);
    println!(
        "{}: built {} vertices / {} edges (paper: {} / {})",
        id.info().name,
        g.num_vertices(),
        g.num_edges(),
        id.info().paper_vertices,
        id.info().paper_edges
    );
    if let Some(path) = p.flag("out") {
        io::save_edge_list(&g, path).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The block-streamed synthetic (satellite of the out-of-core store):
/// SNAP `u v` lines emitted block-by-block, never holding the graph —
/// `--scale` multiplies the ~150k-vertex bench size.
fn dataset_streamed(p: &crate::args::Parsed) -> Result<(), String> {
    let scale: f64 = p.flag_parse("scale", 1.0)?;
    let seed: u64 = p.flag_parse("seed", 42u64)?;
    let mut cfg = tkc_datasets::StreamedConfig::bench(seed);
    let scaled = (f64::from(cfg.vertices) * scale) as u32;
    cfg.vertices = scaled.max(2 * cfg.max_ring() + 2);
    match p.flag("out") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let edges = tkc_datasets::write_snap(&cfg, file).map_err(|e| e.to_string())?;
            println!(
                "streamed: wrote {} vertices / {edges} edges to {path} (seed {seed})",
                cfg.vertices
            );
        }
        None => {
            let edges = tkc_datasets::streamed::stream_edges(&cfg, |_, _| Ok::<(), String>(()))?;
            println!(
                "streamed: {} vertices / {edges} edges (pass --out to write SNAP lines)",
                cfg.vertices
            );
        }
    }
    Ok(())
}

/// Parses a byte count with an optional k/m/g (×1024ⁿ) suffix.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(head) => {
            let mult = match t.as_bytes().last() {
                Some(b'k') => 1u64 << 10,
                Some(b'm') => 1 << 20,
                _ => 1 << 30,
            };
            (head, mult)
        }
        None => (t.as_str(), 1),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad byte count {s:?} (use N, Nk, Nm, or Ng)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte count {s:?} overflows"))
}

fn store(p: &crate::args::Parsed) -> Result<(), String> {
    match p.positional(1, "store action (pack, info, decompose)")? {
        "pack" => store_pack(p),
        "info" => store_info(p),
        "decompose" => store_decompose(p),
        other => Err(format!("unknown store action {other:?}")),
    }
}

/// Packs a `TKCSTOR` file. Two input shapes:
///
/// * an **edge list** — decomposes it and writes graph + supports + κ to
///   `--out` (default `<input>.tkcstor`);
/// * an **engine state directory** — re-packs `state.tkc` into the
///   directory's store and rewrites the snapshot header with the new
///   stamp. This is the recovery documented on `StoreMismatch`: it
///   repairs a stale/missing store and upgrades pre-store (v1)
///   snapshots to the stamped v2 pair.
fn store_pack(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_graph::csr::edge_supports_csr;

    let target = p.positional(2, "edge list path or engine state dir")?;
    let path = std::path::Path::new(target);
    if path.is_dir() {
        let state_path = path.join(tkc_engine::STATE_FILE);
        let file = std::fs::File::open(&state_path)
            .map_err(|e| format!("{}: {e}", state_path.display()))?;
        let (g, kappa) = tkc_core::persist::read_state(file).map_err(|e| e.to_string())?;
        let supports = edge_supports_csr(&g);
        let parts =
            tkc_store::pack_graph(&g, &supports, Some(&kappa)).map_err(|e| e.to_string())?;
        let stamp = parts.stamp();

        // Same crash discipline as the engine's compaction: tmp writes,
        // store renamed before the stamped snapshot.
        let store_tmp = path.join("state.tkcstor.tmp");
        let state_tmp = path.join("state.tkc.tmp");
        let bytes = parts.write_path(&store_tmp).map_err(|e| e.to_string())?;
        let out = std::fs::File::create(&state_tmp).map_err(|e| e.to_string())?;
        tkc_core::persist::write_state_with_store(&g, &kappa, Some(&stamp), &out)
            .map_err(|e| e.to_string())?;
        out.sync_all().map_err(|e| e.to_string())?;
        std::fs::rename(&store_tmp, path.join(tkc_engine::STORE_FILE))
            .map_err(|e| e.to_string())?;
        std::fs::rename(&state_tmp, &state_path).map_err(|e| e.to_string())?;
        println!(
            "packed {} vertices / {} edges → {} ({bytes} bytes, stamp {stamp}); snapshot upgraded",
            g.num_vertices(),
            g.num_edges(),
            path.join(tkc_engine::STORE_FILE).display()
        );
        return Ok(());
    }

    let g = load(target)?;
    let d = triangle_kcore_decomposition(&g);
    let supports = edge_supports_csr(&g);
    let parts =
        tkc_store::pack_graph(&g, &supports, Some(d.kappa_slice())).map_err(|e| e.to_string())?;
    let default_out = format!("{target}.tkcstor");
    let out = p.flag("out").unwrap_or(&default_out);
    let bytes = parts
        .write_path(std::path::Path::new(out))
        .map_err(|e| e.to_string())?;
    let info = parts.info();
    println!(
        "packed {} vertices / {} edges → {out} ({bytes} bytes, {:.2}× vs raw CSR, stamp {})",
        g.num_vertices(),
        g.num_edges(),
        info.raw_csr_bytes() as f64 / bytes as f64,
        parts.stamp()
    );
    Ok(())
}

fn store_info(p: &crate::args::Parsed) -> Result<(), String> {
    let target = p.positional(2, "store path")?;
    let path = std::path::Path::new(target);
    let reader = tkc_store::StoreReader::open(path, tkc_store::PageCacheConfig::default())
        .map_err(|e| format!("{target}: {e}"))?;
    let info = reader.info();
    reader
        .verify_checksums()
        .map_err(|e| format!("{target}: checksum verification failed: {e}"))?;
    let stamp = tkc_store::file_stamp(path).map_err(|e| e.to_string())?;
    println!(
        "{target}: {} vertices, {} live edges ({} slots), κ section: {}",
        info.num_vertices,
        info.num_edges,
        info.edge_bound,
        if info.has_kappa { "yes" } else { "no" }
    );
    println!(
        "  {} bytes on disk, raw CSR {} bytes ({:.2}× compression), stamp {stamp}, checksums OK",
        info.file_bytes,
        info.raw_csr_bytes(),
        info.raw_csr_bytes() as f64 / info.file_bytes as f64
    );
    for (tag, len) in &info.sections {
        println!("  section {tag:?}: {len} bytes");
    }
    Ok(())
}

fn store_decompose(p: &crate::args::Parsed) -> Result<(), String> {
    let target = p.positional(2, "store path")?;
    let budget = parse_bytes(p.flag("budget").unwrap_or("64m"))?;
    let config = tkc_core::ooc::OocConfig::with_budget(budget);
    let start = std::time::Instant::now();
    let out = tkc_core::ooc::decompose_ooc(std::path::Path::new(target), &config)
        .map_err(|e| e.to_string())?;
    let s = &out.stats;
    println!(
        "out-of-core peel: {} live edges, max κ = {} in {:?}",
        s.peeled_edges,
        out.max_kappa,
        start.elapsed()
    );
    println!(
        "  {} strata, {} cascade pulls, {} triangles; peak resident {} of {budget} budget bytes",
        s.strata,
        s.pulled_edges,
        s.triangles,
        s.peak_resident_bytes()
    );
    println!(
        "  page cache {}/{} hits, scratch cache {}/{} hits, {} bytes spilled",
        s.reader_cache.hits,
        s.reader_cache.hits + s.reader_cache.misses,
        s.scratch_cache.hits,
        s.scratch_cache.hits + s.scratch_cache.misses,
        s.spilled_bytes
    );
    Ok(())
}

fn verify(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_verify::certificate::KappaCertificate;
    use tkc_verify::differential::{default_suite, run_suite};

    // Suite mode: seeded random op streams through the dynamic maintainer,
    // cross-checked against recompute + the definitional oracle.
    if p.switch("suite") {
        let cases: usize = p.flag_parse("cases", 216usize)?;
        let configs = default_suite(cases);
        let start = std::time::Instant::now();
        match run_suite(&configs) {
            Ok(stats) => {
                println!(
                    "differential suite OK: {} streams, {} ops, {} checkpoints in {:?}",
                    cases,
                    stats.ops,
                    stats.checks,
                    start.elapsed()
                );
                Ok(())
            }
            Err(dump) => Err(format!("differential suite FAILED\n{dump}")),
        }
    } else {
        // Certificate mode: decompose (or replay ops), then have the
        // independent checker audit the claimed κ vector.
        let g = load(p.positional(1, "edge list path")?)?;
        let (g, kappa, what) = if let Some(ops_path) = p.flag("ops") {
            let text = std::fs::read_to_string(ops_path).map_err(|e| format!("{ops_path}: {e}"))?;
            let ops = parse_ops(&text)?;
            let mut m = DynamicTriangleKCore::new(g);
            let max_v = ops
                .iter()
                .map(|op| match op {
                    BatchOp::Insert(u, v) | BatchOp::Remove(u, v) => u.0.max(v.0),
                })
                .max()
                .unwrap_or(0) as usize;
            if max_v >= m.graph().num_vertices() {
                m.add_vertices(max_v + 1 - m.graph().num_vertices());
            }
            let (ins, del) = m.apply_batch(ops);
            println!("replayed {ins} insertions and {del} deletions");
            let (g, kappa) = m.into_parts();
            (g, kappa, "maintained κ after op replay")
        } else if p.switch("stored") {
            let d = triangle_kcore_decomposition_stored(&g);
            let kappa = d.into_kappa();
            (g, kappa, "stored-triangle decomposition")
        } else {
            let threads: usize = p.flag_parse("threads", 1)?;
            let d = Decomposition::compute_with(&g, threads);
            let kappa = d.into_kappa();
            (g, kappa, "decomposition")
        };
        let report = KappaCertificate::new(&g, &kappa).report();
        println!("{what}: {report}");
        if report.is_valid() {
            Ok(())
        } else {
            Err(format!(
                "{} certificate violation(s)",
                report.violations.len()
            ))
        }
    }
}

fn serve(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_engine::{Engine, EngineConfig, ServeOptions, Server};
    use tkc_obs::TraceBuffer;

    let dir = p.positional(1, "state directory")?;
    let addr = p.flag("addr").unwrap_or("127.0.0.1:7007");
    // Trace setup first: the global ring's capacity is fixed at its first
    // use, so --trace-cap must land before anything can record.
    let trace_out = p.flag("trace-out").map(str::to_string);
    if let Some(cap) = p.flag("trace-cap") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("--trace-cap: cannot parse {cap:?}"))?;
        tkc_obs::trace::set_global_capacity(cap);
    }
    // --slow-op-ms needs span recording on even without --trace-out:
    // the slow-op log renders the completed span tree from the ring.
    let slow_op_ms: Option<u64> = match p.flag("slow-op-ms") {
        Some(s) => Some(
            s.parse()
                .map_err(|_| format!("--slow-op-ms: cannot parse {s:?}"))?,
        ),
        None => None,
    };
    if trace_out.is_some() || slow_op_ms.is_some() {
        TraceBuffer::global().set_enabled(true);
    }
    let slo_targets = match p.flag("slo") {
        Some(spec) => tkc_obs::slo::parse_slo_spec(spec).map_err(|e| format!("--slo: {e}"))?,
        None => Vec::new(),
    };
    let fault_plan = match p.flag("failpoint") {
        Some(spec) => {
            let plan =
                tkc_faults::FaultPlan::parse_spec(spec).map_err(|e| format!("--failpoint: {e}"))?;
            println!("fault injection armed: {}", plan.describe());
            Some(std::sync::Arc::new(plan))
        }
        None => None,
    };
    if p.flag("repl-addr").is_some() && p.flag("follow").is_some() {
        return Err("--repl-addr and --follow are mutually exclusive".into());
    }
    let config = EngineConfig {
        fsync: !p.switch("no-fsync"),
        epoch_ops: p.flag_parse("epoch-ops", 256usize)?,
        compact_bytes: p.flag_parse("compact-bytes", 4u64 << 20)?,
        fault_plan: fault_plan.clone(),
        ..EngineConfig::new(dir)
    };
    let engine = std::sync::Arc::new(Engine::open(config).map_err(|e| format!("{dir}: {e}"))?);
    {
        let snap = engine.snapshot();
        println!(
            "recovered {} vertices / {} edges (max κ = {})",
            snap.num_vertices(),
            snap.num_edges(),
            snap.max_kappa()
        );
    }
    let metrics_server = match p.flag("metrics-addr") {
        Some(maddr) => {
            let render_engine = std::sync::Arc::clone(&engine);
            let render: tkc_obs::http::RenderFn =
                std::sync::Arc::new(move || render_engine.prometheus_text());
            let ms = tkc_obs::http::serve(maddr, render)
                .map_err(|e| format!("metrics bind {maddr}: {e}"))?;
            println!("metrics listening on http://{}/metrics", ms.local_addr());
            Some(ms)
        }
        None => None,
    };
    // --idle-timeout-ms is the idle-connection reaper; --read-timeout-ms
    // is its older spelling and keeps working.
    let idle_ms = match p.flag("idle-timeout-ms") {
        Some(_) => p.flag_parse("idle-timeout-ms", 60_000u64)?,
        None => p.flag_parse("read-timeout-ms", 60_000u64)?,
    };
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        read_timeout: std::time::Duration::from_millis(idle_ms),
        queue_cap: p.flag_parse("queue-cap", 128usize)?,
        max_conns: p.flag_parse("max-conns", defaults.max_conns)?,
        max_line_bytes: p.flag_parse("max-line-bytes", defaults.max_line_bytes)?,
        request_budget: p.flag_parse("request-budget", defaults.request_budget)?,
        recover_backoff: std::time::Duration::from_millis(p.flag_parse(
            "recover-backoff-ms",
            defaults.recover_backoff.as_millis() as u64,
        )?),
        slow_op: slow_op_ms.map(std::time::Duration::from_millis),
        slo: slo_targets,
        ..defaults
    };
    // Replication attaches before the client listener accepts traffic,
    // so a follower is already read-only by its first request.
    let repl_server = if p.flag("repl-addr").is_some() || p.flag("follow").is_some() {
        let ropts = tkc_engine::ReplOptions {
            repl_addr: p.flag("repl-addr").map(str::to_string),
            follow: p.flag("follow").map(str::to_string),
            fault_plan,
            ..Default::default()
        };
        let rs = tkc_engine::start_replication(&engine, ropts)
            .map_err(|e| format!("replication: {e}"))?;
        match (rs.repl_addr(), p.flag("follow")) {
            (Some(a), _) => println!("replication listening on {a}"),
            (None, Some(up)) => println!("following {up} (read-only; writes go to the primary)"),
            (None, None) => {}
        }
        Some(rs)
    } else {
        None
    };
    let server = Server::start(std::sync::Arc::clone(&engine), addr, opts)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("tkc-engine listening on {}", server.local_addr());
    // Blocks until a client sends SHUTDOWN; the engine compacts on exit.
    server.join();
    if let Some(rs) = repl_server {
        rs.shutdown();
    }
    if let Some(ms) = metrics_server {
        ms.stop();
    }
    if let Some(path) = trace_out {
        // Ops and spans interleaved by timestamp — the same stream
        // `TRACE n` serves live and `tkc obs report` renders offline.
        std::fs::write(&path, TraceBuffer::global().export_all_jsonl())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote op/span trace to {path}");
    }
    println!("shut down cleanly (state compacted to {dir})");
    Ok(())
}

/// `tkc obs report` — renders a trace JSONL file and/or a live
/// `/metrics` scrape into the human-readable snapshot documented in
/// [`crate::obs_report`].
fn obs(p: &crate::args::Parsed) -> Result<(), String> {
    use std::net::ToSocketAddrs;

    let action = p.positional(1, "obs action (report)")?;
    if action != "report" {
        return Err(format!("unknown obs action {action:?} (expected report)"));
    }
    let trace = p.flag("trace");
    let metrics_url = p.flag("metrics-url");
    if trace.is_none() && metrics_url.is_none() {
        return Err("obs report needs --trace file.jsonl and/or --metrics-url host:port".into());
    }
    let top: usize = p.flag_parse("top", 10usize)?;
    if let Some(path) = trace {
        let jsonl = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        println!("== top spans by self-time ({path}) ==");
        print!("{}", crate::obs_report::render_top_spans(&jsonl, top));
    }
    if let Some(url) = metrics_url {
        // Accept both a bare host:port and the printed
        // http://host:port/metrics form.
        let hostport = url
            .trim_start_matches("http://")
            .split('/')
            .next()
            .unwrap_or_default();
        let addr = hostport
            .to_socket_addrs()
            .map_err(|e| format!("--metrics-url {url}: {e}"))?
            .next()
            .ok_or_else(|| format!("--metrics-url {url}: no address"))?;
        let (status, body) = tkc_obs::http::get(addr, "/metrics")
            .map_err(|e| format!("--metrics-url {url}: {e}"))?;
        if status != 200 {
            return Err(format!("--metrics-url {url}: HTTP {status}"));
        }
        println!("== slo status ({hostport}) ==");
        print!("{}", crate::obs_report::render_slo_status(&body));
        println!("== latency histograms ==");
        print!("{}", crate::obs_report::render_histograms(&body));
    }
    Ok(())
}

fn chaos(p: &crate::args::Parsed) -> Result<(), String> {
    use tkc_engine::chaos::{run_repl_seed_range, run_seed_range};

    let repl = p.switch("repl");
    let seeds: u64 = p.flag_parse("seeds", if repl { 72u64 } else { 216u64 })?;
    let start: u64 = p.flag_parse("start-seed", 0u64)?;
    let root = match p.flag("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join("tkc_chaos_cli"),
    };
    if repl {
        println!(
            "repl chaos: {seeds} seeded primary/follower schedules (seeds {start}..{}) under {}",
            start + seeds,
            root.display()
        );
        let started = std::time::Instant::now();
        return match run_repl_seed_range(&root, start, seeds) {
            Ok(total) => {
                println!(
                    "repl chaos OK in {:?}: {} batches acked, {} convergence checkpoints, \
                     {} node restarts, {} link faults injected",
                    started.elapsed(),
                    total.batches_acked,
                    total.convergences,
                    total.restarts,
                    total.faults_injected
                );
                Ok(())
            }
            Err((seed, failure)) => Err(format!(
                "repl chaos FAILED at seed {seed}: {failure}\n\
                 reproduce with: tkc chaos --repl --seeds 1 --start-seed {seed}"
            )),
        };
    }
    println!(
        "chaos: {seeds} seeded fault schedules (seeds {start}..{}) under {}",
        start + seeds,
        root.display()
    );
    let started = std::time::Instant::now();
    match run_seed_range(&root, start, seeds) {
        Ok(total) => {
            println!(
                "chaos OK in {:?}: {} batches acked, {} faults injected, \
                 {} recoveries, {} crash restarts, {} oracle checks",
                started.elapsed(),
                total.batches_acked,
                total.faults_injected,
                total.recoveries,
                total.crash_restarts,
                total.oracle_checks
            );
            Ok(())
        }
        Err((seed, failure)) => Err(format!(
            "chaos FAILED at seed {seed}: {failure}\n\
             reproduce with: tkc chaos --seeds 1 --start-seed {seed}"
        )),
    }
}

fn analyze(p: &crate::args::Parsed) -> Result<(), String> {
    let root = std::path::PathBuf::from(p.flag("root").unwrap_or("."));
    let policy = match p.flag("policy") {
        Some(path) => std::path::PathBuf::from(path),
        None => root.join("analyze.toml"),
    };
    let format = match p.flag("format").unwrap_or("text") {
        "text" => tkc_analyze::Format::Text,
        "json" => tkc_analyze::Format::Json,
        other => return Err(format!("--format must be text or json, got {other:?}")),
    };
    let mut out = std::io::stdout();
    match tkc_analyze::run_cli(&root, &policy, format, &mut out) {
        0 => Ok(()),
        // Findings (1) and setup errors (2) are already on stdout; exit
        // with the analyzer's code without dumping the tkc usage text.
        code => std::process::exit(code),
    }
}

/// Small display helper so `update` can print a histogram without exposing
/// internals.
trait DisplayExt {
    fn from_kappa_for_display(m: DynamicTriangleKCore) -> String;
}

impl DisplayExt for Decomposition {
    fn from_kappa_for_display(m: DynamicTriangleKCore) -> String {
        let mut hist: Vec<usize> = Vec::new();
        for e in m.graph().edge_ids() {
            let k = m.kappa(e) as usize;
            if hist.len() <= k {
                hist.resize(k + 1, 0);
            }
            hist[k] += 1;
        }
        let mut out = String::from("κ histogram after update:\n");
        for (k, count) in hist.iter().enumerate() {
            if *count > 0 {
                out.push_str(&format!("  κ = {k:>3}: {count}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn ops_parser_accepts_both_signs_and_comments() {
        let ops = parse_ops("# header\n+ 1 2\n- 3 4\n\n+ 5 6\n").unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], BatchOp::Insert(VertexId(1), VertexId(2)));
        assert_eq!(ops[1], BatchOp::Remove(VertexId(3), VertexId(4)));
    }

    #[test]
    fn ops_parser_rejects_malformed_lines() {
        assert!(parse_ops("* 1 2\n").unwrap_err().contains("line 1"));
        assert!(parse_ops("+ 1\n").unwrap_err().contains("bad vertex"));
    }

    #[test]
    fn run_reports_unknown_subcommand() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn end_to_end_new_subcommands_via_tempfiles() {
        let dir = std::env::temp_dir().join("tkc_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old.txt");
        let new = dir.join("new.txt");
        // Old: K4 on 0..4. New: K5 on 0..5 (the core grows).
        std::fs::write(&old, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
        std::fs::write(&new, "0 1\n0 2\n0 3\n0 4\n1 2\n1 3\n1 4\n2 3\n2 4\n3 4\n").unwrap();
        let (o, n) = (old.to_str().unwrap(), new.to_str().unwrap());
        run(&[
            "events".into(),
            o.into(),
            n.into(),
            "--level".into(),
            "2".into(),
        ])
        .unwrap();
        let svg = dir.join("dv.svg");
        run(&[
            "dual-view".into(),
            o.into(),
            n.into(),
            "--svg".into(),
            svg.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(svg.exists());
        let hist = dir.join("hist.svg");
        run(&[
            "stats".into(),
            n.into(),
            "--svg".into(),
            hist.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(hist.exists());
        run(&["community".into(), n.into(), "0".into()]).unwrap();
        // Error paths report instead of panicking.
        assert!(run(&["community".into(), n.into(), "99".into()]).is_err());
        assert!(run(&["events".into(), o.into()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_parser_and_static_patterns_mode() {
        assert_eq!(parse_labels("# c\n0 7\n2 9\n", 3).unwrap(), vec![7, 0, 9]);
        assert!(parse_labels("9 1\n", 3)
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_labels("x\n", 3).unwrap_err().contains("expected"));

        let dir = std::env::temp_dir().join("tkc_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let labels = dir.join("l.txt");
        // Two labeled triangles welded into a 4-clique across labels.
        std::fs::write(&edges, "0 1\n0 2\n1 2\n2 3\n1 3\n0 3\n").unwrap();
        std::fs::write(&labels, "0 1\n1 1\n2 2\n3 2\n").unwrap();
        run(&[
            "patterns".into(),
            edges.to_str().unwrap().into(),
            "--labels".into(),
            labels.to_str().unwrap().into(),
            "--template".into(),
            "bridge".into(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_subcommand_modes() {
        let dir = std::env::temp_dir().join("tkc_cli_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let ops = dir.join("ops.txt");
        std::fs::write(&edges, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
        std::fs::write(&ops, "+ 0 4\n+ 1 4\n+ 2 4\n- 0 1\n").unwrap();
        let e: String = edges.to_str().unwrap().into();
        run(&["verify".into(), e.clone()]).unwrap();
        run(&["verify".into(), e.clone(), "--stored".into()]).unwrap();
        run(&[
            "verify".into(),
            e,
            "--ops".into(),
            ops.to_str().unwrap().into(),
        ])
        .unwrap();
        run(&[
            "verify".into(),
            "--suite".into(),
            "--cases".into(),
            "6".into(),
        ])
        .unwrap();
        // Missing edge list is an error, not a panic.
        assert!(run(&["verify".into()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_decompose_and_update_via_tempfiles() {
        let dir = std::env::temp_dir().join("tkc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let ops = dir.join("ops.txt");
        std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n").unwrap();
        std::fs::write(&ops, "+ 0 3\n- 1 2\n").unwrap();

        run(&[
            "decompose".into(),
            edges.to_str().unwrap().into(),
            "--top".into(),
            "2".into(),
        ])
        .unwrap();
        // --threads plumbs through to the parallel support stage (0 = all
        // cores) and must not change the result summary path.
        run(&[
            "decompose".into(),
            edges.to_str().unwrap().into(),
            "--threads".into(),
            "0".into(),
        ])
        .unwrap();
        run(&[
            "verify".into(),
            edges.to_str().unwrap().into(),
            "--threads".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(run(&[
            "decompose".into(),
            edges.to_str().unwrap().into(),
            "--threads".into(),
            "nope".into(),
        ])
        .is_err());
        run(&[
            "update".into(),
            edges.to_str().unwrap().into(),
            "--ops".into(),
            ops.to_str().unwrap().into(),
            "--verify".into(),
        ])
        .unwrap();
        run(&["cliques".into(), edges.to_str().unwrap().into()]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
