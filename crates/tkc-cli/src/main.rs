//! `tkc` — command line front end for the Triangle K-Core suite.
//!
//! ```text
//! tkc decompose <edges.txt> [--stored] [--top K]
//! tkc plot      <edges.txt> [--svg out.svg] [--tsv out.tsv] [--width N]
//! tkc cliques   <edges.txt> [--top K]
//! tkc update    <edges.txt> --ops <ops.txt> [--verify]
//! tkc patterns  <old.txt> <new.txt> --template new-form|bridge|new-join [--top K]
//! tkc dataset   <name> [--scale F] [--seed S] [--out file]
//! ```
//!
//! Edge lists are whitespace-separated `u v` pairs with `#` comments (the
//! SNAP format). Ops files contain one operation per line: `+ u v` to
//! insert, `- u v` to delete.

#![forbid(unsafe_code)]
// CLI frontend: argument/report plumbing over already-validated data; the
// strict panic-surface wall (deny) applies to tkc-engine. See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]

use std::process::ExitCode;

mod args;
mod commands;
mod obs_report;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            // Diagnostics go through the leveled logger (TKC_LOG) so they
            // carry the same uptime/level prefix as engine output; the
            // usage text stays raw for readability.
            tkc_obs::error!("{msg}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
