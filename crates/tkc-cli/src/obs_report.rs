//! `tkc obs report` — offline rendering of observability artifacts.
//!
//! Turns the two machine-facing outputs of a serve run into a short
//! human-readable snapshot:
//!
//! - the trace JSONL written by `--trace-out` (op records and span
//!   records interleaved; span lines carry `"kind":"span"`), folded
//!   into a **top spans by self-time** table, where self-time is a
//!   span's duration minus the duration of its direct children — the
//!   time actually spent *in* that phase rather than below it;
//! - a Prometheus `/metrics` scrape (live via `--metrics-url` or a
//!   saved file), folded into SLO gauge lines and per-family latency
//!   histogram summaries with bucket-upper-bound p50/p90/p99.
//!
//! Everything here is pure text → text so it unit-tests without a
//! server; the network fetch lives in `commands::obs`.

use std::collections::BTreeMap;

/// One span record parsed back out of a trace JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    pub name: String,
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub start_nanos: u64,
    pub duration_nanos: u64,
}

/// Extracts a JSON string field from a single-line record. The trace
/// writer emits flat objects with known keys, so a scan for
/// `"key":"..."` is exact for the fields we read (span names are static
/// identifiers, never escaped).
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// Extracts a JSON unsigned-number field from a single-line record.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses one trace JSONL line into a [`SpanRow`]; op records (no
/// `"kind":"span"`) and malformed lines yield `None`.
pub fn parse_span_line(line: &str) -> Option<SpanRow> {
    if !line.contains("\"kind\":\"span\"") {
        return None;
    }
    Some(SpanRow {
        name: json_str(line, "name")?.to_string(),
        trace_id: u64::from_str_radix(json_str(line, "trace_id")?, 16).ok()?,
        span_id: u64::from_str_radix(json_str(line, "span_id")?, 16).ok()?,
        parent_id: u64::from_str_radix(json_str(line, "parent_id")?, 16).ok()?,
        start_nanos: json_u64(line, "start_nanos")?,
        duration_nanos: json_u64(line, "duration_nanos")?,
    })
}

/// Per-name aggregate over a set of spans.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpanAgg {
    pub count: u64,
    pub total_nanos: u64,
    pub self_nanos: u64,
}

/// Aggregates spans by name with self-time attribution: each span
/// starts with `self = duration`, and every child subtracts its own
/// duration from its parent's self-time (parents are matched within
/// the same trace; a child recorded after its parent fell off the ring
/// simply attributes nothing).
pub fn aggregate_self_time(rows: &[SpanRow]) -> Vec<(String, SpanAgg)> {
    let mut self_of: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for r in rows {
        self_of.insert((r.trace_id, r.span_id), r.duration_nanos);
    }
    for r in rows {
        if r.parent_id != 0 {
            if let Some(parent_self) = self_of.get_mut(&(r.trace_id, r.parent_id)) {
                *parent_self = parent_self.saturating_sub(r.duration_nanos);
            }
        }
    }
    let mut by_name: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for r in rows {
        let a = by_name.entry(r.name.as_str()).or_default();
        a.count += 1;
        a.total_nanos += r.duration_nanos;
        a.self_nanos += self_of
            .get(&(r.trace_id, r.span_id))
            .copied()
            .unwrap_or(r.duration_nanos);
    }
    let mut out: Vec<(String, SpanAgg)> = by_name
        .into_iter()
        .map(|(n, a)| (n.to_string(), a))
        .collect();
    out.sort_by(|a, b| b.1.self_nanos.cmp(&a.1.self_nanos).then(a.0.cmp(&b.0)));
    out
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Renders the "top spans by self-time" table from raw JSONL text.
pub fn render_top_spans(jsonl: &str, top: usize) -> String {
    let rows: Vec<SpanRow> = jsonl.lines().filter_map(parse_span_line).collect();
    if rows.is_empty() {
        return "no span records in trace (run serve with --trace-out and \
                --slow-op-ms or --trace-out alone to record spans)\n"
            .to_string();
    }
    let traces: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.trace_id).collect();
    let mut out = format!(
        "{} spans across {} traces; top {} by self-time:\n",
        rows.len(),
        traces.len(),
        top.min(aggregate_self_time(&rows).len())
    );
    out.push_str(&format!(
        "{:<24} {:>7} {:>12} {:>12} {:>12}\n",
        "span", "count", "self_ms", "total_ms", "mean_us"
    ));
    for (name, a) in aggregate_self_time(&rows).into_iter().take(top) {
        out.push_str(&format!(
            "{:<24} {:>7} {:>12.3} {:>12.3} {:>12.1}\n",
            name,
            a.count,
            ms(a.self_nanos),
            ms(a.total_nanos),
            a.total_nanos as f64 / 1e3 / a.count.max(1) as f64,
        ));
    }
    out
}

/// Splits a metrics sample line into `(name, labels, value)`;
/// `labels` keeps its braces and is empty for bare samples.
fn split_sample(line: &str) -> Option<(&str, &str, f64)> {
    if line.starts_with('#') || line.trim().is_empty() {
        return None;
    }
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = value.trim().parse().ok()?;
    match series.find('{') {
        Some(b) => Some((series.get(..b)?, series.get(b..)?, value)),
        None => Some((series, "", value)),
    }
}

/// Renders the SLO gauge lines (`tkc_slo_*`) from a metrics scrape.
pub fn render_slo_status(metrics: &str) -> String {
    let mut lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("tkc_slo_"))
        .collect();
    if lines.is_empty() {
        return "no slo metrics in scrape (serve with --slo SPEC)\n".to_string();
    }
    lines.sort_unstable();
    let mut out = String::new();
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Pulls the `le` bound out of a bucket label set.
fn le_of(labels: &str) -> Option<f64> {
    let pat = "le=\"";
    let start = labels.find(pat)? + pat.len();
    let rest = labels.get(start..)?;
    let end = rest.find('"')?;
    let raw = rest.get(..end)?;
    if raw == "+Inf" {
        Some(f64::INFINITY)
    } else {
        raw.parse().ok()
    }
}

/// Drops the `le="..."` pair from a bucket label set so bucket series
/// group under their family key.
fn strip_le(labels: &str) -> String {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let kept: Vec<&str> = inner
        .split(',')
        .filter(|kv| !kv.starts_with("le=") && !kv.is_empty())
        .collect();
    if kept.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", kept.join(","))
    }
}

/// Bucket-upper-bound quantile: the `le` of the first cumulative bucket
/// covering `q * total` observations. Conservative (never understates)
/// and exact enough to cross-check client-side percentiles.
fn bucket_quantile(buckets: &[(f64, f64)], total: f64, q: f64) -> f64 {
    let want = q * total;
    for &(le, cum) in buckets {
        if cum >= want {
            return le;
        }
    }
    f64::INFINITY
}

/// Summarizes every `*_seconds` histogram family in a metrics scrape:
/// count, mean, and bucket-bound p50/p90/p99 in milliseconds.
pub fn render_histograms(metrics: &str) -> String {
    // family key = (metric base name, labels without le)
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    for line in metrics.lines() {
        let Some((name, labels, value)) = split_sample(line) else {
            continue;
        };
        if let Some(base) = name.strip_suffix("_seconds_bucket") {
            if let Some(le) = le_of(labels) {
                buckets
                    .entry((base.to_string(), strip_le(labels)))
                    .or_default()
                    .push((le, value));
            }
        } else if let Some(base) = name.strip_suffix("_seconds_count") {
            counts.insert((base.to_string(), labels.to_string()), value);
        } else if let Some(base) = name.strip_suffix("_seconds_sum") {
            sums.insert((base.to_string(), labels.to_string()), value);
        }
    }
    if buckets.is_empty() {
        return "no latency histograms in scrape\n".to_string();
    }
    let mut out = String::new();
    for (key, mut bs) in buckets {
        bs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = counts.get(&key).copied().unwrap_or_else(|| {
            bs.iter().map(|b| b.1).fold(0.0_f64, f64::max) // +Inf bucket is cumulative total
        });
        if total <= 0.0 {
            continue;
        }
        let mean_ms = sums.get(&key).copied().unwrap_or(0.0) / total * 1e3;
        let fmt_q = |q: f64| {
            let v = bucket_quantile(&bs, total, q);
            if v.is_infinite() {
                ">max".to_string()
            } else {
                format!("{:.3}", v * 1e3)
            }
        };
        out.push_str(&format!(
            "{}_seconds{} count={} mean_ms={:.3} p50_ms<={} p90_ms<={} p99_ms<={}\n",
            key.0,
            key.1,
            total as u64,
            mean_ms,
            fmt_q(0.50),
            fmt_q(0.90),
            fmt_q(0.99),
        ));
    }
    if out.is_empty() {
        "no populated latency histograms in scrape\n".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn span_line(name: &str, trace: u64, span: u64, parent: u64, start: u64, dur: u64) -> String {
        format!(
            "{{\"at_unix_ms\":1,\"kind\":\"span\",\"name\":\"{name}\",\
             \"trace_id\":\"{trace:016x}\",\"span_id\":\"{span:016x}\",\
             \"parent_id\":\"{parent:016x}\",\"start_nanos\":{start},\
             \"duration_nanos\":{dur},\"attrs\":{{}}}}"
        )
    }

    #[test]
    fn parses_span_lines_and_skips_op_records() {
        let line = span_line("engine.apply", 1, 2, 1, 100, 50);
        let row = parse_span_line(&line).unwrap();
        assert_eq!(row.name, "engine.apply");
        assert_eq!((row.trace_id, row.span_id, row.parent_id), (1, 2, 1));
        assert_eq!((row.start_nanos, row.duration_nanos), (100, 50));
        let op = "{\"at_unix_ms\":1,\"op\":\"insert\",\"u\":1,\"v\":2}";
        assert!(parse_span_line(op).is_none());
        assert!(parse_span_line("not json").is_none());
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // root (100ns) -> apply (80ns) -> {wal (30ns), publish (10ns)}
        let rows: Vec<SpanRow> = [
            span_line("INSERT", 7, 1, 0, 0, 100),
            span_line("engine.apply", 7, 2, 1, 5, 80),
            span_line("engine.wal_append", 7, 3, 2, 6, 30),
            span_line("engine.publish", 7, 4, 2, 40, 10),
        ]
        .iter()
        .map(|l| parse_span_line(l).unwrap())
        .collect();
        let agg = aggregate_self_time(&rows);
        let get = |n: &str| agg.iter().find(|(name, _)| name == n).unwrap().1;
        assert_eq!(get("INSERT").self_nanos, 20); // 100 - 80
        assert_eq!(get("engine.apply").self_nanos, 40); // 80 - 30 - 10
        assert_eq!(get("engine.wal_append").self_nanos, 30);
        // Sorted by self-time descending.
        assert_eq!(agg[0].0, "engine.apply");
    }

    #[test]
    fn orphan_parent_keeps_full_duration() {
        let rows: Vec<SpanRow> = [span_line("parse", 9, 5, 4, 0, 25)]
            .iter()
            .map(|l| parse_span_line(l).unwrap())
            .collect();
        let agg = aggregate_self_time(&rows);
        assert_eq!(agg[0].1.self_nanos, 25);
    }

    #[test]
    fn top_spans_renders_table_or_empty_notice() {
        let jsonl = [
            span_line("INSERT", 1, 1, 0, 0, 100),
            span_line("engine.apply", 1, 2, 1, 5, 80),
        ]
        .join("\n");
        let table = render_top_spans(&jsonl, 10);
        assert!(table.contains("2 spans across 1 traces"));
        assert!(table.contains("engine.apply"));
        assert!(render_top_spans("", 10).contains("no span records"));
    }

    #[test]
    fn histogram_summary_reads_buckets_counts_and_sums() {
        let metrics = "\
# TYPE tkc_server_cmd_seconds histogram
tkc_server_cmd_seconds_bucket{cmd=\"INSERT\",le=\"0.001\"} 90
tkc_server_cmd_seconds_bucket{cmd=\"INSERT\",le=\"0.01\"} 99
tkc_server_cmd_seconds_bucket{cmd=\"INSERT\",le=\"+Inf\"} 100
tkc_server_cmd_seconds_sum{cmd=\"INSERT\"} 0.2
tkc_server_cmd_seconds_count{cmd=\"INSERT\"} 100
";
        let out = render_histograms(metrics);
        assert!(out.contains("tkc_server_cmd_seconds{cmd=\"INSERT\"} count=100"));
        assert!(out.contains("mean_ms=2.000"));
        assert!(out.contains("p50_ms<=1.000"));
        assert!(out.contains("p99_ms<=10.000"));
        assert!(render_histograms("").contains("no latency histograms"));
    }

    #[test]
    fn slo_status_filters_and_sorts_gauges() {
        let metrics = "\
tkc_slo_violation_ratio{cmd=\"INSERT\"} 0
tkc_slo_burn_rate{cmd=\"INSERT\"} 0
other_metric 5
";
        let out = render_slo_status(metrics);
        assert!(out.starts_with("tkc_slo_burn_rate"));
        assert!(!out.contains("other_metric"));
        assert!(render_slo_status("x 1").contains("no slo metrics"));
    }
}
