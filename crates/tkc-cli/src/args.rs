//! Minimal flag parsing: positionals plus `--key value` / `--switch`.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, flags by name.
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    pub positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Parses `argv` given the set of value-taking flags; everything else with
/// a `--` prefix is a boolean switch.
pub fn parse(argv: &[String], value_flags: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            if value_flags.contains(&name) {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                out.flags.insert(name.to_string(), v.clone());
                i += 2;
            } else {
                out.switches.push(name.to_string());
                i += 1;
            }
        } else {
            out.positionals.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}

impl Parsed {
    /// A `--key value` flag, if present.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A parsed numeric flag with default.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {s:?}")),
        }
    }

    /// True when the boolean switch appeared.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The n-th positional or an error mentioning what it should be.
    pub fn positional(&self, n: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {what}"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_flags_switches() {
        let p = parse(
            &v(&["decompose", "g.txt", "--top", "5", "--stored"]),
            &["top"],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["decompose", "g.txt"]);
        assert_eq!(p.flag("top"), Some("5"));
        assert_eq!(p.flag_parse::<usize>("top", 1).unwrap(), 5);
        assert!(p.switch("stored"));
        assert!(!p.switch("verify"));
    }

    #[test]
    fn missing_value_errors() {
        let err = parse(&v(&["plot", "--svg"]), &["svg"]).unwrap_err();
        assert!(err.contains("--svg"));
    }

    #[test]
    fn flag_parse_defaults_and_rejects_junk() {
        let p = parse(&v(&["x", "--scale", "abc"]), &["scale"]).unwrap();
        assert!(p.flag_parse::<f64>("scale", 1.0).is_err());
        let p = parse(&v(&["x"]), &["scale"]).unwrap();
        assert_eq!(p.flag_parse::<f64>("scale", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn positional_error_message() {
        let p = parse(&v(&["decompose"]), &[]).unwrap();
        assert!(p
            .positional(1, "edge list path")
            .unwrap_err()
            .contains("edge list"));
    }
}
