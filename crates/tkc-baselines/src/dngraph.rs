//! DN-Graph baselines (Wang et al. \[3\]): iterative estimation of the
//! *valid λ(e)* upper bound on the densest DN-Graph an edge participates
//! in.
//!
//! `λ(u,v)` is *valid* when at least `λ(u,v)` common neighbors `w` of `u`
//! and `v` *support* it, i.e. `min(λ(u,w), λ(v,w)) ≥ λ(u,v)` (paper
//! Definition 5). Starting from the triangle-support upper bound, the
//! iterative algorithms repeatedly shrink each edge's λ to the largest
//! value its neighborhood can support — an h-index computation over the
//! mins of the two side-edges — until a fixpoint.
//!
//! * [`tridn`] mirrors **TriDN**: full Jacobi sweeps (every edge updated
//!   from the *previous* sweep's values), the semi-streaming-friendly
//!   formulation of \[3\];
//! * [`bitridn`] mirrors **BiTriDN**: in-place Gauss–Seidel sweeps, which
//!   propagate shrinkage within a sweep and converge in fewer iterations.
//!
//! The paper's §VI (Claim 3) proves the fixpoint equals κ(e); the tests
//! and `tests/` property suites verify that against `tkc-core`.

use tkc_graph::triangles::edge_supports;
use tkc_graph::{EdgeId, Graph};

/// Result of an iterative λ estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LambdaEstimate {
    /// Converged λ per raw edge id (dead slots read 0).
    pub lambda: Vec<u32>,
    /// Number of full sweeps executed (including the final no-change one).
    pub sweeps: u32,
    /// Total single-edge recomputations performed.
    pub edge_updates: u64,
}

impl LambdaEstimate {
    /// λ of one edge.
    #[inline]
    pub fn lambda(&self, e: EdgeId) -> u32 {
        self.lambda[e.index()]
    }
}

/// Largest `k` such that at least `k` of the values in `vals` are ≥ `k`
/// (the h-index), computed without sorting via counting.
fn h_index(vals: &[u32]) -> u32 {
    let n = vals.len() as u32;
    if n == 0 {
        return 0;
    }
    // counts[c] = number of values == c (clamped at n).
    let mut counts = vec![0u32; n as usize + 1];
    for &v in vals.iter() {
        counts[v.min(n) as usize] += 1;
    }
    let mut at_least = 0u32;
    for k in (1..=n).rev() {
        at_least += counts[k as usize];
        if at_least >= k {
            return k;
        }
    }
    0
}

/// One edge's supported λ: the h-index of `min(λ(u,w), λ(v,w))` over the
/// triangles `(u, v, w)`, additionally capped by the current `λ(u,v)`
/// (λ never grows during the iteration).
fn supported_lambda(g: &Graph, lambda: &[u32], e: EdgeId, scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    g.for_each_triangle_on_edge(e, |_, e1, e2| {
        scratch.push(lambda[e1.index()].min(lambda[e2.index()]));
    });
    h_index(scratch).min(lambda[e.index()])
}

/// TriDN-style estimation: Jacobi sweeps from the support upper bound.
pub fn tridn(g: &Graph) -> LambdaEstimate {
    let mut lambda = edge_supports(g);
    let mut sweeps = 0;
    let mut edge_updates = 0u64;
    let mut scratch = Vec::new();
    loop {
        sweeps += 1;
        let prev = lambda.clone();
        let mut changed = false;
        for e in g.edge_ids() {
            edge_updates += 1;
            let nv = supported_lambda(g, &prev, e, &mut scratch);
            if nv != lambda[e.index()] {
                lambda[e.index()] = nv;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    LambdaEstimate {
        lambda,
        sweeps,
        edge_updates,
    }
}

/// BiTriDN-style estimation: in-place Gauss–Seidel sweeps (each update
/// sees shrinkage from earlier in the same sweep), converging in fewer
/// sweeps than [`tridn`] at identical fixpoint.
pub fn bitridn(g: &Graph) -> LambdaEstimate {
    let mut lambda = edge_supports(g);
    let mut sweeps = 0;
    let mut edge_updates = 0u64;
    let mut scratch = Vec::new();
    loop {
        sweeps += 1;
        let mut changed = false;
        for e in g.edge_ids() {
            edge_updates += 1;
            let nv = supported_lambda(g, &lambda, e, &mut scratch);
            if nv != lambda[e.index()] {
                lambda[e.index()] = nv;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    LambdaEstimate {
        lambda,
        sweeps,
        edge_updates,
    }
}

/// Checks Definition 5 directly: is the given λ assignment *valid* (every
/// edge supported by at least λ(e) common neighbors)?
pub fn is_valid_lambda(g: &Graph, lambda: &[u32]) -> bool {
    let mut scratch = Vec::new();
    g.edge_ids().all(|e| {
        scratch.clear();
        g.for_each_triangle_on_edge(e, |_, e1, e2| {
            scratch.push(lambda[e1.index()].min(lambda[e2.index()]));
        });
        let le = lambda[e.index()];
        let supporters = scratch.iter().filter(|&&m| m >= le).count() as u32;
        supporters >= le
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    #[test]
    fn h_index_basics() {
        assert_eq!(h_index(&[]), 0);
        assert_eq!(h_index(&[0, 0]), 0);
        assert_eq!(h_index(&[5]), 1);
        assert_eq!(h_index(&[1, 1, 1]), 1);
        assert_eq!(h_index(&[3, 3, 3]), 3);
        assert_eq!(h_index(&[4, 2, 4, 1]), 2);
        assert_eq!(h_index(&[10, 9, 8, 7, 6, 5]), 5);
    }

    #[test]
    fn fixpoints_agree_between_variants() {
        for seed in 0..4 {
            let g = generators::gnp(35, 0.2, seed);
            let a = tridn(&g);
            let b = bitridn(&g);
            assert_eq!(a.lambda, b.lambda, "seed {seed}");
            assert!(b.sweeps <= a.sweeps, "gauss-seidel should not be slower");
        }
    }

    #[test]
    fn fixpoint_is_valid_lambda() {
        let g = generators::planted_partition(3, 8, 0.7, 0.1, 6);
        let est = bitridn(&g);
        assert!(is_valid_lambda(&g, &est.lambda));
    }

    #[test]
    fn clique_lambda_is_n_minus_2() {
        let g = generators::complete(6);
        let est = tridn(&g);
        for e in g.edge_ids() {
            assert_eq!(est.lambda(e), 4);
        }
    }

    #[test]
    fn figure_5_coverage_example() {
        // Figure 5: A=0 attached to B=1, C=2 of the K4 {B,C,D,E}={1,2,3,4}.
        // BCDE is the only DN-Graph; A's edges still get a λ estimate (1),
        // which is the per-edge density DN-Graph itself cannot provide.
        let g = Graph::from_edges(
            5,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        let est = bitridn(&g);
        let ab = g
            .edge_between(tkc_graph::VertexId(0), tkc_graph::VertexId(1))
            .unwrap();
        let bc = g
            .edge_between(tkc_graph::VertexId(1), tkc_graph::VertexId(2))
            .unwrap();
        assert_eq!(est.lambda(ab), 1);
        assert_eq!(est.lambda(bc), 2);
    }

    #[test]
    fn triangle_free_graph_converges_to_zero_fast() {
        let g = generators::path(20);
        let est = tridn(&g);
        assert!(est.lambda.iter().all(|&l| l == 0));
        assert!(est.sweeps <= 2);
    }
}
