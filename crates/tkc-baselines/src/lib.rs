//! # tkc-baselines — the competitors the paper measures against
//!
//! * [`csv`] — CSV (Wang et al. \[1\]): per-edge co-clique size via budgeted
//!   exact max-clique search, the expensive estimation the Triangle K-Core
//!   proxy replaces;
//! * [`dngraph`] — DN-Graph (Wang et al. \[3\]): TriDN / BiTriDN iterative
//!   λ(e) estimation, whose fixpoint the paper proves equals κ(e)
//!   (Claim 3).
//!
//! The "Re-Compute" column of Table III is simply a fresh run of
//! `tkc_core::decompose::triangle_kcore_decomposition`; no separate
//! implementation is needed here.
//!
//! ```
//! use tkc_graph::generators;
//! use tkc_baselines::dngraph::bitridn;
//!
//! let g = generators::complete(5);
//! let est = bitridn(&g);
//! assert!(g.edge_ids().all(|e| est.lambda(e) == 3)); // = κ(e)
//! ```

// Baseline reimplementations (CSV, DN-Graph): mirrors the indexing idiom
// of the kernels they are compared against; offline benchmark path. See
// DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod dngraph;
