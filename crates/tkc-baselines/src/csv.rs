//! CSV baseline (Wang et al. \[1\]): estimate each edge's
//! **co-clique size** — the size of the largest clique the edge
//! participates in — and plot vertices by it.
//!
//! The published CSV spends most of its time on this estimation (paper
//! §V); our stand-in reproduces that cost profile with a *budgeted exact*
//! branch-and-bound maximum-clique search inside each edge's common
//! neighborhood. When an edge's search exceeds the node budget the search
//! returns the best clique found so far plus a flag; the Table II and
//! Figure 6 harnesses report how often that happens (never, at the paper's
//! dataset densities, for the default budget).

use tkc_graph::{EdgeId, Graph, VertexId};

/// Tuning for the co-clique estimation.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Maximum branch-and-bound nodes explored per edge before giving up
    /// and keeping the incumbent (a lower bound).
    pub node_budget: u64,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            node_budget: 200_000,
        }
    }
}

/// Result of the CSV estimation pass.
#[derive(Debug, Clone)]
pub struct CsvResult {
    /// `co_clique_size` per raw edge id (≥ 2 for live edges in any
    /// triangle-free graph the two endpoints count themselves).
    pub co_clique: Vec<u32>,
    /// Edges whose search hit the node budget (their value is a lower
    /// bound rather than exact).
    pub budget_exhausted: usize,
    /// Total branch-and-bound nodes explored.
    pub nodes_explored: u64,
}

impl CsvResult {
    /// co-clique size of one edge.
    #[inline]
    pub fn co_clique_size(&self, e: EdgeId) -> u32 {
        self.co_clique[e.index()]
    }
}

/// Budgeted branch and bound for the max clique within `cands` (mutual
/// adjacency in `g`); returns the best clique size found.
fn bounded_max_clique(g: &Graph, cands: &[VertexId], budget: &mut u64, nodes: &mut u64) -> u32 {
    // Order candidates by descending degree-within-candidates: stronger
    // early incumbents tighten the bound sooner.
    let score = |w: VertexId| cands.iter().filter(|&&x| g.has_edge(w, x)).count();
    let mut scored: Vec<(usize, VertexId)> = cands.iter().map(|&w| (score(w), w)).collect();
    scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let ordered: Vec<VertexId> = scored.into_iter().map(|(_, w)| w).collect();

    fn bb(
        g: &Graph,
        chosen: u32,
        cands: &[VertexId],
        best: &mut u32,
        budget: &mut u64,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        if chosen + cands.len() as u32 <= *best {
            return;
        }
        if cands.is_empty() {
            *best = (*best).max(chosen);
            return;
        }
        let head = cands[0];
        let next: Vec<VertexId> = cands[1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(head, w))
            .collect();
        bb(g, chosen + 1, &next, best, budget, nodes);
        bb(g, chosen, &cands[1..], best, budget, nodes);
    }

    let mut best = 0;
    bb(g, 0, &ordered, &mut best, budget, nodes);
    best
}

/// CSV's estimation phase: co-clique size for every live edge.
pub fn csv_co_clique_sizes(g: &Graph, opts: &CsvOptions) -> CsvResult {
    let mut co = vec![0u32; g.edge_bound()];
    let mut exhausted = 0usize;
    let mut total_nodes = 0u64;
    let mut cands: Vec<VertexId> = Vec::new();
    for e in g.edge_ids() {
        cands.clear();
        g.for_each_triangle_on_edge(e, |w, _, _| cands.push(w));
        let mut budget = opts.node_budget;
        let inner = bounded_max_clique(g, &cands, &mut budget, &mut total_nodes);
        if budget == 0 {
            exhausted += 1;
        }
        co[e.index()] = 2 + inner;
    }
    CsvResult {
        co_clique: co,
        budget_exhausted: exhausted,
        nodes_explored: total_nodes,
    }
}

/// The Triangle K-Core replacement the paper proposes (§V): reinterpret a
/// κ vector as co-clique sizes, `co_clique_size(e) = κ(e) + 2`.
pub fn co_clique_from_kappa(kappa: &[u32]) -> Vec<u32> {
    kappa.iter().map(|&k| k + 2).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    #[test]
    fn exact_on_cliques() {
        let g = generators::complete(6);
        let res = csv_co_clique_sizes(&g, &CsvOptions::default());
        for e in g.edge_ids() {
            assert_eq!(res.co_clique_size(e), 6);
        }
        assert_eq!(res.budget_exhausted, 0);
    }

    #[test]
    fn triangle_free_edges_get_two() {
        let g = generators::path(5);
        let res = csv_co_clique_sizes(&g, &CsvOptions::default());
        for e in g.edge_ids() {
            assert_eq!(res.co_clique_size(e), 2);
        }
    }

    #[test]
    fn planted_clique_is_found_through_noise() {
        let mut g = generators::gnp(30, 0.1, 17);
        let members: Vec<VertexId> = [2u32, 9, 14, 21, 27].iter().map(|&i| VertexId(i)).collect();
        generators::plant_clique(&mut g, &members);
        let res = csv_co_clique_sizes(&g, &CsvOptions::default());
        let e = g.edge_between(members[0], members[1]).unwrap();
        assert!(res.co_clique_size(e) >= 5);
    }

    #[test]
    fn budget_exhaustion_is_reported_and_lower_bounds() {
        // A dense graph with a 1-node budget: values become incumbents
        // found before the budget died, still >= 2.
        let g = generators::complete(10);
        let res = csv_co_clique_sizes(&g, &CsvOptions { node_budget: 1 });
        assert!(res.budget_exhausted > 0);
        for e in g.edge_ids() {
            assert!(res.co_clique_size(e) >= 2);
            assert!(res.co_clique_size(e) <= 10);
        }
    }

    #[test]
    fn kappa_conversion_adds_two() {
        assert_eq!(co_clique_from_kappa(&[0, 1, 3]), vec![2, 3, 5]);
    }

    #[test]
    fn nodes_explored_grows_with_density() {
        let sparse = csv_co_clique_sizes(&generators::gnp(40, 0.05, 1), &CsvOptions::default());
        let dense = csv_co_clique_sizes(&generators::gnp(40, 0.4, 1), &CsvOptions::default());
        assert!(dense.nodes_explored > sparse.nodes_explored);
    }
}
