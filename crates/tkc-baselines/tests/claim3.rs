#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! §VI of the paper: the DN-Graph iterative estimates converge to exactly
//! the Triangle K-Core numbers (Claim 3), and CSV's exact co-clique sizes
//! are bounded above by the κ+2 proxy.

use proptest::prelude::*;
use tkc_baselines::csv::{csv_co_clique_sizes, CsvOptions};
use tkc_baselines::dngraph::{bitridn, is_valid_lambda, tridn};
use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_graph::{generators, Graph, VertexId};

fn random_graph(n: u32) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..(n as usize * 3)).prop_map(move |pairs| {
        let mut g = Graph::with_capacity(n as usize, pairs.len());
        for (a, b) in pairs {
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn claim3_tridn_fixpoint_equals_kappa(g in random_graph(16)) {
        let d = triangle_kcore_decomposition(&g);
        let est = tridn(&g);
        for e in g.edge_ids() {
            prop_assert_eq!(est.lambda(e), d.kappa(e));
        }
        prop_assert!(is_valid_lambda(&g, &est.lambda));
    }

    #[test]
    fn claim3_bitridn_fixpoint_equals_kappa(g in random_graph(16)) {
        let d = triangle_kcore_decomposition(&g);
        let est = bitridn(&g);
        for e in g.edge_ids() {
            prop_assert_eq!(est.lambda(e), d.kappa(e));
        }
    }

    #[test]
    fn csv_exact_is_bounded_by_kappa_proxy(g in random_graph(12)) {
        // co_clique_size(e) (exact) <= κ(e) + 2: the proxy is an upper
        // bound on the biggest clique through the edge.
        let d = triangle_kcore_decomposition(&g);
        let res = csv_co_clique_sizes(&g, &CsvOptions::default());
        for e in g.edge_ids() {
            prop_assert!(res.co_clique_size(e) <= d.kappa(e) + 2);
            prop_assert!(res.co_clique_size(e) >= 2);
        }
    }
}

#[test]
fn proxy_is_tight_on_clique_dominated_graphs() {
    // On graphs whose dense regions are literal cliques, the proxy and the
    // exact sizes coincide — the "near identical plots" case of Figure 6.
    let mut g = generators::gnp(40, 0.03, 3);
    generators::plant_fresh_cliques(&mut g, 3, 6, 2, 9);
    let d = triangle_kcore_decomposition(&g);
    let res = csv_co_clique_sizes(&g, &CsvOptions::default());
    let mut agree = 0usize;
    let mut total = 0usize;
    for e in g.edge_ids() {
        total += 1;
        if res.co_clique_size(e) == d.kappa(e) + 2 {
            agree += 1;
        }
    }
    assert!(
        agree as f64 >= 0.9 * total as f64,
        "only {agree}/{total} edges agree"
    );
}

#[test]
fn dn_graph_iteration_cost_exceeds_single_peel_work() {
    // The computational story of Table II: the iterative baselines sweep
    // all edges several times; the peel touches each triangle once.
    let g = generators::planted_partition(5, 12, 0.6, 0.03, 21);
    let est = tridn(&g);
    assert!(est.sweeps >= 2);
    assert!(est.edge_updates >= g.num_edges() as u64 * est.sweeps as u64 / 2);
}
