//! # triangle-kcore — the full suite behind one import
//!
//! A production-quality reproduction of *"Extracting Analyzing and
//! Visualizing Triangle K-Core Motifs within Networks"* (Zhang &
//! Parthasarathy, ICDE 2012). A **Triangle K-Core** is a subgraph in which
//! every edge participates in at least `k` triangles — a tractable proxy
//! for clique structure (in modern terminology, the `k`-truss with an
//! off-by-two naming). The suite provides:
//!
//! * [`graph`] — the dynamic graph substrate (stable edge ids, triangle
//!   enumeration, generators, I/O);
//! * [`core`] — Algorithm 1 (static decomposition), Algorithms 2/5/6/7
//!   (incremental maintenance), core extraction, vertex K-Core;
//! * [`baselines`] — CSV and DN-Graph (TriDN/BiTriDN) competitors;
//! * [`viz`] — CSV-style density plots, dual-view plots, SVG/TSV output;
//! * [`patterns`] — template pattern cliques (New Form / Bridge /
//!   New Join / custom) over attributed evolving or labeled graphs;
//! * [`datasets`] — deterministic synthetic stand-ins for the paper's ten
//!   evaluation graphs and its case-study scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use triangle_kcore::prelude::*;
//!
//! // Build a graph, decompose it, and read off the clique proxy.
//! let g = generators::connected_caveman(3, 6); // three welded 6-cliques
//! let decomp = triangle_kcore_decomposition(&g);
//! assert_eq!(decomp.max_kappa(), 4); // 6-clique → κ = 6 - 2
//!
//! // Maintain κ under change instead of recomputing.
//! let mut live = DynamicTriangleKCore::new(g);
//! let e = live.insert_edge(VertexId(0), VertexId(8)).unwrap();
//! assert_eq!(live.kappa(e), 1); // one triangle across the weld
//! ```

// Facade crate: re-exports plus doctest-heavy examples where a panic is
// the example failing. See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tkc_baselines as baselines;
pub use tkc_core as core;
pub use tkc_datasets as datasets;
pub use tkc_graph as graph;
pub use tkc_patterns as patterns;
pub use tkc_viz as viz;

/// One-stop import for the common API surface.
pub mod prelude {
    pub use tkc_core::decompose::{
        triangle_kcore_decomposition, triangle_kcore_decomposition_stored, Decomposition,
    };
    pub use tkc_core::dynamic::{BatchOp, DynamicTriangleKCore, UpdateStats};
    pub use tkc_core::extract::{
        communities_of_vertex, core_hierarchy, cores_at_level, densest_cliques, kappa_stats,
        maximum_core_of_edge, Core, KappaStats,
    };
    pub use tkc_core::kcore::core_numbers;
    pub use tkc_core::persist::{read_kappa, write_kappa};
    pub use tkc_graph::{generators, io, triangles, EdgeId, Graph, VertexId};
    pub use tkc_patterns::{
        detect_events, detect_template, AttributedGraph, BridgeClique, CustomTemplate, Event,
        EventOptions, NewFormClique, NewJoinClique, Template,
    };
    pub use tkc_viz::{
        ascii_sparkline, density_order, dual_view, kappa_density_plot, render_density_plot,
        DensityPlot, PlotStyle,
    };
}
