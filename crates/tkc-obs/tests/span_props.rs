#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property coverage for the span layer (ISSUE 9 satellite): id
//! encoding round-trips on arbitrary 64-bit values, and randomly shaped
//! guard trees always produce records whose parent links resolve within
//! the same trace and whose time intervals nest inside their parents.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use tkc_obs::span::{encode_id, parse_id};
use tkc_obs::{SpanGuard, TraceBuffer};

/// Serializes tests touching the process-global `TraceBuffer` (the test
/// harness runs `#[test]` fns on parallel threads).
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

#[test]
fn parse_rejects_non_canonical_encodings() {
    assert_eq!(parse_id(""), None);
    assert_eq!(parse_id("0"), None); // too short
    assert_eq!(parse_id("00000000000000001"), None); // too long
    assert_eq!(parse_id("000000000000000G"), None); // non-hex
    assert_eq!(parse_id("000000000000000A"), None); // uppercase
    assert_eq!(parse_id(" 000000000000001"), None); // whitespace
    assert_eq!(parse_id("0000000000000001"), Some(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `encode_id` always yields exactly 16 lowercase hex digits and
    /// `parse_id` inverts it bit-exactly, over the full u64 range.
    #[test]
    fn ids_round_trip(id in any::<u64>()) {
        let text = encode_id(id);
        prop_assert_eq!(text.len(), 16);
        prop_assert!(text
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        prop_assert_eq!(parse_id(&text), Some(id));
    }

    /// Random open/close/leaf sequences through the guard API: every
    /// recorded non-root span's parent must exist in the same trace,
    /// span ids are unique, and each child's `[start, start+duration]`
    /// interval lies inside its parent's.
    #[test]
    fn guard_trees_link_and_nest(shape in collection::vec(0u8..3, 1..24)) {
        let _serial = global_guard();
        let buf = TraceBuffer::global();
        buf.set_enabled(true);
        let _ = buf.drain_spans();

        // Fixed names per depth: the API takes `&'static str` on
        // purpose (no per-request allocation on the hot path).
        const NAMES: [&str; 8] = ["d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8"];
        let root = SpanGuard::root("root");
        let trace_id = root.trace_id().unwrap();
        let mut stack = vec![root];
        for &op in &shape {
            match op {
                0 if stack.len() < NAMES.len() => {
                    stack.push(SpanGuard::child(NAMES[stack.len() - 1]));
                }
                1 if stack.len() > 1 => {
                    stack.pop();
                }
                _ => drop(SpanGuard::child("leaf")),
            }
        }
        // Close innermost-first, the only order guard nesting allows.
        while let Some(guard) = stack.pop() {
            drop(guard);
        }

        buf.set_enabled(false);
        let spans: Vec<_> = buf
            .drain_spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        prop_assert!(!spans.is_empty());

        let by_id: BTreeMap<u64, _> = spans.iter().map(|s| (s.span_id, s)).collect();
        prop_assert_eq!(by_id.len(), spans.len(), "span ids must be unique");
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        prop_assert_eq!(roots.len(), 1);
        prop_assert_eq!(roots[0].name, "root");
        for s in &spans {
            if s.parent_id == 0 {
                continue;
            }
            let parent = by_id.get(&s.parent_id);
            prop_assert!(
                parent.is_some(),
                "span {} has dangling parent {}",
                s.name,
                s.parent_id
            );
            let parent = parent.unwrap();
            prop_assert!(s.start_nanos >= parent.start_nanos);
            prop_assert!(
                s.start_nanos + s.duration_nanos
                    <= parent.start_nanos + parent.duration_nanos,
                "span {} [{} +{}] escapes parent {} [{} +{}]",
                s.name,
                s.start_nanos,
                s.duration_nanos,
                parent.name,
                parent.start_nanos,
                parent.duration_nanos
            );
        }
    }
}
