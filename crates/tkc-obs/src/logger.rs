//! Leveled stderr logger controlled by the `TKC_LOG` environment
//! variable (`error`, `warn`, `info`, `debug`, `trace`; default `info`).
//!
//! Replaces the unconditional `eprintln!` diagnostics that used to be
//! scattered across `tkc-engine` and `tkc-cli`: call sites use the
//! [`crate::error!`]/[`crate::warn!`]/[`crate::info!`]/[`crate::debug!`]
//! macros, a below-threshold message is one enum comparison, and output
//! goes through one mutex so interleaved threads don't shear lines.
//! Tests can divert output with [`set_sink`].

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// Lifecycle events (startup, shutdown, recovery, drain summaries).
    Info = 3,
    /// Per-operation detail.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            "off" | "none" | "0" => Some(Level::Error), // errors always surface
            _ => None,
        }
    }
}

/// 0 = uninitialised (read `TKC_LOG` on first use).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn init_from_env() -> u8 {
    let level = std::env::var("TKC_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    let v = level as u8;
    MAX_LEVEL.store(v, Ordering::Relaxed);
    v
}

/// The current threshold (messages above it are dropped).
pub fn max_level() -> Level {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    let v = if v == 0 { init_from_env() } else { v };
    match v {
        1 => Level::Error,
        2 => Level::Warn,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Info,
    }
}

/// Overrides the threshold (wins over `TKC_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

type Sink = Box<dyn FnMut(&str) + Send>;

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Diverts formatted log lines to `f` instead of stderr (tests); pass
/// `None` to restore stderr.
pub fn set_sink(f: Option<Sink>) {
    *sink().lock().unwrap_or_else(|p| p.into_inner()) = f;
}

/// Emits one log line (used by the macros; callable directly too).
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let uptime = crate::process_nanos() as f64 / 1e9;
    let line = format!("[{uptime:10.3}s {} {target}] {args}", level.as_str());
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    match guard.as_mut() {
        Some(f) => f(&line),
        None => {
            // analyze: allow(lock-order): stderr handle lock, not a synchronization mutex
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Level::parse("off"), Some(Level::Error));
    }

    #[test]
    fn threshold_filters_and_sink_captures() {
        let lines = Arc::new(StdMutex::new(Vec::<String>::new()));
        let captured = Arc::clone(&lines);
        set_sink(Some(Box::new(move |l| {
            captured.lock().unwrap().push(l.to_string())
        })));
        set_max_level(Level::Warn);
        log(Level::Info, "test", format_args!("dropped"));
        log(Level::Warn, "test", format_args!("kept {}", 42));
        set_max_level(Level::Info);
        set_sink(None);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("WARN test] kept 42"), "{}", lines[0]);
    }
}
