//! The metrics registry: named atomic counters, gauges, and log2-bucketed
//! histograms, rendered in Prometheus text exposition format (version
//! 0.0.4 — `# HELP` / `# TYPE` comments, `name{label="v"} value` lines).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! registered once and recorded into lock-free afterwards. Registration
//! is idempotent: asking for the same `(name, labels)` pair returns the
//! existing handle, so call sites never need to coordinate.
//!
//! ## Histogram layout
//!
//! Histograms bucket raw `u64` observations by bit width: bucket `i`
//! holds values in `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly 0). A
//! latency histogram records integer nanoseconds and renders scaled to
//! seconds (`unit_scale = 1e-9`); unit-less histograms (triangles per
//! op) use scale 1. Quantiles (p50/p90/p99) are estimated by linear
//! interpolation inside the covering bucket — error is bounded by the
//! bucket width, i.e. at most a factor of 2 — and the maximum is tracked
//! exactly via `fetch_max`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of bit-width buckets (u64 values need at most 64, plus the
/// dedicated zero bucket).
const BUCKETS: usize = 65;

/// A monotonically increasing counter (rendered as `TYPE counter`, or
/// `TYPE gauge` when registered via [`MetricsRegistry::int_gauge`]).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `by` (relaxed).
    #[inline]
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Adds 1 (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value — for recovery-style "last run" figures that
    /// are set once rather than accumulated.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float gauge (stored as `f64` bits in an atomic; `add` uses a CAS
/// loop, fine for the low-frequency paths gauges live on).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Multiplier applied when rendering raw u64 observations (1e-9 turns
    /// recorded nanoseconds into exported seconds).
    unit_scale: f64,
}

/// A lock-free log2-bucketed histogram. Recording is four relaxed
/// atomic RMW operations; no allocation, no locks.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// A point-in-time copy of a histogram, used for quantile math, tests,
/// and timing reports.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` = observations of bit width `i`).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of raw observations.
    pub sum: u64,
    /// Largest raw observation.
    pub max: u64,
    /// Render multiplier (see [`Histogram`]).
    pub unit_scale: f64,
}

/// Bucket index of a raw observation: 0 for 0, otherwise the value's bit
/// width (so bucket `i` covers `[2^(i-1), 2^i - 1]`).
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive raw upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    fn new(unit_scale: f64) -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            unit_scale,
        }))
    }

    /// Records one raw observation (nanoseconds for latency histograms).
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        if let Some(bucket) = inner.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a wall-clock duration into a seconds-scaled histogram.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in exported units (e.g. seconds).
    pub fn sum_scaled(&self) -> f64 {
        self.0.sum.load(Ordering::Relaxed) as f64 * self.0.unit_scale
    }

    /// Largest observation in exported units.
    pub fn max_scaled(&self) -> f64 {
        self.0.max.load(Ordering::Relaxed) as f64 * self.0.unit_scale
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
            unit_scale: self.0.unit_scale,
        }
    }

    /// Estimated `q`-quantile (`0 < q <= 1`) in exported units, by linear
    /// interpolation within the covering bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = if i <= 1 { 0 } else { 1u64 << (i - 1) };
                let hi = bucket_upper(i).min(self.max);
                let within = (rank - cum) as f64 / c as f64;
                let raw = lo as f64 + within * (hi.saturating_sub(lo)) as f64;
                return raw * self.unit_scale;
            }
            cum += c;
        }
        self.max as f64 * self.unit_scale
    }

    /// Largest observation in exported units.
    pub fn max_scaled(&self) -> f64 {
        self.max as f64 * self.unit_scale
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyType {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyType {
    fn as_str(self) -> &'static str {
        match self {
            FamilyType::Counter => "counter",
            FamilyType::Gauge => "gauge",
            FamilyType::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: FamilyType,
    /// `(label pairs, handle)` in registration order.
    items: Vec<(Vec<(String, String)>, Handle)>,
}

/// A set of named metrics, rendered together. Cheap to share via `Arc`;
/// all mutation after registration happens through atomic handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

/// Escapes a HELP text: backslashes and newlines.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes, newlines.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a float the way Prometheus expects: integers without a
/// fractional part, everything else via shortest-round-trip `Display`.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a raw bucket bound in exported units. Nanosecond-scaled
/// bounds (`scale == 1e-9`) use exact decimal integer math — naive
/// `raw as f64 * 1e-9` yields artifacts like `0.00013107100000000002`.
fn fmt_bound(raw: u64, scale: f64) -> String {
    if scale == 1e-9 {
        let secs = raw / 1_000_000_000;
        let frac = raw % 1_000_000_000;
        if frac == 0 {
            return format!("{secs}");
        }
        let mut s = format!("{secs}.{frac:09}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    } else {
        fmt_value(raw as f64 * scale)
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn label_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry kernel-level instrumentation (worker
    /// pool, decompose phase timers) records into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: FamilyType,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(fam) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                fam.kind == kind,
                "metric {name} re-registered as {} (was {})",
                kind.as_str(),
                fam.kind.as_str()
            );
            if let Some((_, handle)) = fam.items.iter().find(|(l, _)| *l == labels) {
                return handle.clone();
            }
            let handle = make();
            fam.items.push((labels, handle.clone()));
            return handle;
        }
        let handle = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            items: vec![(labels, handle.clone())],
        });
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, FamilyType::Counter, labels, || {
            Handle::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("registration type is checked above"),
        }
    }

    /// Registers (or retrieves) an integer-valued gauge (a `u64` handle
    /// exported with `TYPE gauge` — for "last recovery" style figures
    /// that are set, not accumulated).
    pub fn int_gauge(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, FamilyType::Gauge, &[], || {
            Handle::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("registration type is checked above"),
        }
    }

    /// Registers (or retrieves) an unlabeled float gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled float gauge — one series per
    /// label set within the family (e.g. `tkc_engine_state{state="..."}`
    /// as a 0/1 per-state indicator).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, FamilyType::Gauge, labels, || {
            Handle::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Handle::Gauge(g) => g,
            _ => {
                // The name may already be an int gauge; that is a caller
                // bug with a clear message.
                panic!("metric {name} already registered with an integer handle")
            }
        }
    }

    /// Registers (or retrieves) a latency histogram: record raw
    /// nanoseconds (or [`Histogram::record_duration`]), exported scaled
    /// to seconds.
    pub fn histogram_seconds(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, 1e-9, &[])
    }

    /// Registers (or retrieves) a unit-less histogram (scale 1).
    pub fn histogram_plain(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, 1.0, &[])
    }

    /// Registers (or retrieves) a labeled histogram with an explicit
    /// render scale.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        unit_scale: f64,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, FamilyType::Histogram, labels, || {
            Handle::Histogram(Histogram::new(unit_scale))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("registration type is checked above"),
        }
    }

    /// Renders every family in Prometheus text exposition format, in
    /// registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        for fam in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for (labels, handle) in &fam.items {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            label_block(labels),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            label_block(labels),
                            fmt_value(g.get())
                        ));
                    }
                    Handle::Histogram(h) => {
                        render_histogram(&mut out, &fam.name, labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

/// Renders one histogram: cumulative `_bucket{le=...}` lines over the
/// populated bucket range, then `+Inf`, `_sum`, `_count`.
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let first = snap.buckets.iter().position(|&c| c > 0);
    let last = snap.buckets.iter().rposition(|&c| c > 0);
    let mut cum = 0u64;
    if let (Some(first), Some(last)) = (first, last) {
        for i in first..=last {
            cum += snap.buckets.get(i).copied().unwrap_or(0);
            let le = fmt_bound(bucket_upper(i), snap.unit_scale);
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                label_block_with_le(labels, &le),
                cum
            ));
        }
    }
    out.push_str(&format!(
        "{}_bucket{} {}\n",
        name,
        label_block_with_le(labels, "+Inf"),
        snap.count
    ));
    out.push_str(&format!(
        "{}_sum{} {}\n",
        name,
        label_block(labels),
        fmt_value(snap.sum as f64 * snap.unit_scale)
    ));
    out.push_str(&format!(
        "{}_count{} {}\n",
        name,
        label_block(labels),
        snap.count
    ));
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn bucket_index_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Bucket i covers [2^(i-1), 2^i - 1]: check the upper bounds.
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(8), 255);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [1u64, 2, 3, 7, 8, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "v={v} above bucket {i} upper");
            if i > 1 {
                assert!(v >= 1 << (i - 1), "v={v} below bucket {i} lower");
            }
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_bucket_resolution() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_plain("q", "quantile test");
        let mut samples: Vec<u64> = (1..=10_000u64).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9999)] as f64;
            let est = h.quantile(q);
            // The covering bucket spans [2^(i-1), 2^i - 1]: the estimate
            // must land within a factor of 2 of the exact percentile.
            assert!(
                est >= exact / 2.0 && est <= exact * 2.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        // Quantiles are monotone and max is exact.
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(0.99));
        assert_eq!(h.max_scaled(), 10_000.0);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.snapshot().sum, (1..=10_000u64).sum::<u64>());
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_seconds("empty", "never recorded");
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registration_is_idempotent_and_type_checked() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c_total", "help");
        let b = reg.counter("c_total", "help");
        a.add(3);
        assert_eq!(b.get(), 3);
        let l1 = reg.counter_with("lab_total", "h", &[("cmd", "A")]);
        let l2 = reg.counter_with("lab_total", "h", &[("cmd", "B")]);
        let l1b = reg.counter_with("lab_total", "h", &[("cmd", "A")]);
        l1.inc();
        l2.add(2);
        assert_eq!(l1b.get(), 1);
        let text = reg.render();
        assert!(text.contains("lab_total{cmd=\"A\"} 1"));
        assert!(text.contains("lab_total{cmd=\"B\"} 2"));
    }

    #[test]
    fn exposition_escapes_help_and_label_values() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_with(
            "esc_total",
            "help with \\ and\nnewline",
            &[("path", "a\"b\\c\nd")],
        );
        c.inc();
        let text = reg.render();
        assert!(text.contains("# HELP esc_total help with \\\\ and\\nnewline"));
        assert!(text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_consistent() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_plain("lat", "latency");
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_bucket{le=\"1023\"} 4"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_sum 906"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn seconds_scaling_applies_to_bounds_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_seconds("t_seconds", "timing");
        h.record_duration(std::time::Duration::from_micros(100));
        let text = reg.render();
        assert!(text.contains("t_seconds_count 1"));
        // 100µs = 1e5 ns sits in bucket [65536, 131071]ns.
        assert!(text.contains("t_seconds_bucket{le=\"0.000131071\"} 1"));
        assert!((h.sum_scaled() - 1e-4).abs() < 1e-6);
    }

    #[test]
    fn gauges_set_add_and_render() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth", "queue depth");
        g.add(3.0);
        g.add(-1.0);
        assert_eq!(g.get(), 2.0);
        g.set(0.25);
        assert!(reg.render().contains("depth 0.25"));
        let ig = reg.int_gauge("replays", "last recovery");
        ig.set(17);
        let text = reg.render();
        assert!(text.contains("# TYPE replays gauge"));
        assert!(text.contains("replays 17"));
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("conc_total", "concurrency");
        let h = reg.histogram_plain("conc_hist", "concurrency");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 1..=1000u64 {
                        c.inc();
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000);
        assert_eq!(snap.sum, 8 * (1..=1000u64).sum::<u64>());
        assert_eq!(snap.max, 1000);
    }
}
