//! Per-verb latency SLOs with rolling-window error-budget accounting.
//!
//! An [`SloTracker`] holds one objective per wire verb: "`objective`
//! (e.g. 99%) of the last [`WINDOW`] requests complete within `target`".
//! Each recorded sample updates three exported series —
//! `tkc_slo_breaches_total{cmd=}` (every sample over target),
//! `tkc_slo_violation_ratio{cmd=}` (violating fraction of the window)
//! and `tkc_slo_burn_rate{cmd=}` (violation ratio divided by the error
//! budget `1 - objective`; a burn rate above 1.0 means the objective is
//! being missed) — and the `SLO` wire verb renders the same numbers as
//! text for operators without a scraper.

use crate::registry::{Counter, Gauge, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Rolling-window size in samples. Small enough that a breach burns
/// visibly within seconds of load, large enough that one outlier moves
/// the ratio by only ~0.2%.
pub const WINDOW: usize = 512;

/// One verb's latency objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTarget {
    /// Wire verb the objective applies to (`"INSERT"`, `"KAPPA"`, ...).
    pub verb: String,
    /// Latency target a conforming request must finish within.
    pub target: Duration,
    /// Fraction of windowed requests that must conform (0 < objective < 1).
    pub objective: f64,
}

/// Parses a `--slo` flag value: comma-separated `VERB=target_ms` items
/// with an optional `@objective` suffix, e.g.
/// `INSERT=5,KAPPA=0.5@0.999`. Returns a human-readable error for
/// malformed specs.
pub fn parse_slo_spec(spec: &str) -> Result<Vec<SloTarget>, String> {
    let mut out = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (verb, rest) = item
            .split_once('=')
            .ok_or_else(|| format!("bad slo item {item:?}: expected VERB=target_ms"))?;
        let (ms, objective) = match rest.split_once('@') {
            Some((ms, obj)) => {
                let o: f64 = obj
                    .parse()
                    .map_err(|_| format!("bad slo objective {obj:?} in {item:?}"))?;
                if !(o > 0.0 && o < 1.0) {
                    return Err(format!("slo objective {o} out of range (0, 1) in {item:?}"));
                }
                (ms, o)
            }
            None => (rest, 0.99),
        };
        let ms: f64 = ms
            .parse()
            .map_err(|_| format!("bad slo target {ms:?} in {item:?}"))?;
        if ms.is_nan() || ms <= 0.0 {
            return Err(format!("slo target must be positive in {item:?}"));
        }
        out.push(SloTarget {
            verb: verb.trim().to_ascii_uppercase(),
            target: Duration::from_secs_f64(ms / 1e3),
            objective,
        });
    }
    Ok(out)
}

#[derive(Debug)]
struct WindowState {
    /// Last [`WINDOW`] latencies in nanoseconds (ring).
    ring: Vec<u64>,
    next: usize,
    /// Samples in `ring` that exceeded the target.
    violations: usize,
}

#[derive(Debug)]
struct Objective {
    verb: String,
    target_nanos: u64,
    objective: f64,
    window: Mutex<WindowState>,
    breaches: Counter,
    violation_ratio: Gauge,
    burn_rate: Gauge,
}

/// A set of per-verb latency objectives with exported burn-rate gauges.
#[derive(Debug)]
pub struct SloTracker {
    objectives: Vec<Objective>,
}

impl SloTracker {
    /// Builds a tracker for `targets`, registering its counters and
    /// gauges in `reg` (one labelled family member per verb).
    pub fn new(reg: &MetricsRegistry, targets: &[SloTarget]) -> SloTracker {
        let objectives = targets
            .iter()
            .map(|t| Objective {
                verb: t.verb.clone(),
                target_nanos: t.target.as_nanos() as u64,
                objective: t.objective,
                window: Mutex::new(WindowState {
                    ring: Vec::with_capacity(WINDOW),
                    next: 0,
                    violations: 0,
                }),
                breaches: reg.counter_with(
                    "tkc_slo_breaches_total",
                    "Requests that exceeded their verb's SLO latency target",
                    &[("cmd", t.verb.as_str())],
                ),
                violation_ratio: reg.gauge_with(
                    "tkc_slo_violation_ratio",
                    "Fraction of the rolling window exceeding the SLO target",
                    &[("cmd", t.verb.as_str())],
                ),
                burn_rate: reg.gauge_with(
                    "tkc_slo_burn_rate",
                    "SLO error-budget burn rate (violation ratio / (1 - objective); >1 burns budget)",
                    &[("cmd", t.verb.as_str())],
                ),
            })
            .collect();
        SloTracker { objectives }
    }

    /// Whether any objectives are configured.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Records one completed request for `verb` (no-op for verbs without
    /// an objective).
    pub fn record(&self, verb: &str, elapsed: Duration) {
        let Some(o) = self.objectives.iter().find(|o| o.verb == verb) else {
            return;
        };
        let nanos = elapsed.as_nanos() as u64;
        let violating = nanos > o.target_nanos;
        if violating {
            o.breaches.inc();
        }
        let (ratio, filled) = {
            let mut w = o.window.lock().unwrap_or_else(|p| p.into_inner());
            if w.ring.len() < WINDOW {
                w.ring.push(nanos);
            } else {
                let next = w.next;
                let evicted_violation = w.ring.get(next).is_some_and(|&old| old > o.target_nanos);
                if evicted_violation {
                    w.violations = w.violations.saturating_sub(1);
                }
                if let Some(old) = w.ring.get_mut(next) {
                    *old = nanos;
                }
            }
            if violating {
                w.violations += 1;
            }
            w.next = (w.next + 1) % WINDOW;
            (
                w.violations as f64 / w.ring.len().max(1) as f64,
                w.ring.len(),
            )
        };
        let _ = filled;
        o.violation_ratio.set(ratio);
        o.burn_rate
            .set(ratio / (1.0 - o.objective).max(f64::EPSILON));
    }

    /// Renders one status line per objective (the `SLO` wire verb and
    /// `tkc obs report`): target, objective, window occupancy,
    /// violation ratio, burn rate, windowed p99, and OK/BREACH status.
    pub fn render_lines(&self) -> String {
        if self.objectives.is_empty() {
            return String::from("no slo objectives configured\n");
        }
        let mut out = String::new();
        for o in &self.objectives {
            let (mut samples, violations) = {
                let w = o.window.lock().unwrap_or_else(|p| p.into_inner());
                (w.ring.clone(), w.violations)
            };
            samples.sort_unstable();
            let n = samples.len();
            let p99 = if n == 0 {
                0.0
            } else {
                let idx = (((n - 1) as f64) * 0.99).round() as usize;
                samples.get(idx.min(n - 1)).copied().unwrap_or(0) as f64 / 1e6
            };
            let ratio = violations as f64 / n.max(1) as f64;
            let burn = ratio / (1.0 - o.objective).max(f64::EPSILON);
            let _ = writeln!(
                out,
                "{} target_ms={:.3} objective={:.4} window={} violations={} violation_ratio={:.4} burn_rate={:.2} p99_ms={:.3} status={}",
                o.verb,
                o.target_nanos as f64 / 1e6,
                o.objective,
                n,
                violations,
                ratio,
                burn,
                p99,
                if burn > 1.0 { "BREACH" } else { "OK" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn spec_parsing_accepts_targets_and_objectives() {
        let t = parse_slo_spec("INSERT=5,kappa=0.5@0.999").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].verb, "INSERT");
        assert_eq!(t[0].target, Duration::from_millis(5));
        assert!((t[0].objective - 0.99).abs() < 1e-12);
        assert_eq!(t[1].verb, "KAPPA");
        assert_eq!(t[1].target, Duration::from_micros(500));
        assert!((t[1].objective - 0.999).abs() < 1e-12);
        assert!(parse_slo_spec("INSERT").is_err());
        assert!(parse_slo_spec("INSERT=abc").is_err());
        assert!(parse_slo_spec("INSERT=5@1.5").is_err());
        assert!(parse_slo_spec("INSERT=0").is_err());
        assert!(parse_slo_spec("").unwrap().is_empty());
    }

    #[test]
    fn burn_rate_tracks_violating_fraction() {
        let reg = MetricsRegistry::new();
        let tracker = SloTracker::new(
            &reg,
            &[SloTarget {
                verb: String::from("INSERT"),
                target: Duration::from_millis(1),
                objective: 0.9,
            }],
        );
        // 8 conforming + 2 violating samples: ratio 0.2, budget 0.1 → burn 2.0.
        for _ in 0..8 {
            tracker.record("INSERT", Duration::from_micros(100));
        }
        for _ in 0..2 {
            tracker.record("INSERT", Duration::from_millis(50));
        }
        tracker.record("KAPPA", Duration::from_secs(1)); // no objective: ignored
        let text = reg.render();
        assert!(
            text.contains("tkc_slo_breaches_total{cmd=\"INSERT\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tkc_slo_violation_ratio{cmd=\"INSERT\"} 0.2"),
            "{text}"
        );
        assert!(
            text.contains("tkc_slo_burn_rate{cmd=\"INSERT\"} 2"),
            "{text}"
        );
        let lines = tracker.render_lines();
        assert!(lines.contains("INSERT target_ms=1.000"), "{lines}");
        assert!(lines.contains("status=BREACH"), "{lines}");
        assert!(lines.contains("window=10 violations=2"), "{lines}");
    }

    #[test]
    fn window_overwrite_forgets_old_violations() {
        let reg = MetricsRegistry::new();
        let tracker = SloTracker::new(
            &reg,
            &[SloTarget {
                verb: String::from("KAPPA"),
                target: Duration::from_millis(1),
                objective: 0.99,
            }],
        );
        for _ in 0..WINDOW {
            tracker.record("KAPPA", Duration::from_millis(10));
        }
        for _ in 0..WINDOW {
            tracker.record("KAPPA", Duration::from_micros(10));
        }
        let text = reg.render();
        assert!(
            text.contains("tkc_slo_violation_ratio{cmd=\"KAPPA\"} 0\n"),
            "{text}"
        );
        assert!(tracker.render_lines().contains("status=OK"));
    }

    #[test]
    fn empty_tracker_renders_placeholder() {
        let reg = MetricsRegistry::new();
        let tracker = SloTracker::new(&reg, &[]);
        assert!(tracker.is_empty());
        assert_eq!(tracker.render_lines(), "no slo objectives configured\n");
    }
}
