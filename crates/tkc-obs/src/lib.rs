//! # tkc-obs — unified tracing + metrics for the Triangle K-Core stack
//!
//! Every layer of the system (CSR kernel, worker pool, durable engine,
//! TCP front-end, CLI) records into this crate rather than hand-rolling
//! counters. It is deliberately `std`-only — no external crates, no async
//! runtime — and every recording path is a handful of relaxed atomic
//! operations:
//!
//! - [`registry`] — [`MetricsRegistry`]: named atomic counters, gauges,
//!   and log2-bucketed latency histograms with p50/p90/p99/max quantile
//!   estimation, rendered in Prometheus text exposition format.
//! - [`trace`] — [`TraceBuffer`]: a bounded ring of timestamped
//!   span/event records (op kind, edge, triangles touched, κ-levels
//!   visited, duration) with JSONL export. The *disabled* path is a
//!   single relaxed atomic load — hot loops pay nothing unless an
//!   operator turns tracing on.
//! - [`logger`] — a leveled stderr logger controlled by the `TKC_LOG`
//!   environment variable (`error`/`warn`/`info`/`debug`/`trace`), so
//!   server diagnostics are filterable instead of unconditional
//!   `eprintln!` noise.
//! - [`span`] — [`SpanGuard`]: request-scoped span trees (trace id +
//!   span id + parent id, monotonic timestamps, bounded attrs) recorded
//!   into the same [`TraceBuffer`], plus the `--slow-op-ms` slow-op log
//!   that prints a completed request's span tree.
//! - [`slo`] — [`SloTracker`]: per-verb rolling-window latency
//!   objectives with error-budget burn-rate gauges on `/metrics`.
//! - [`http`] — a tiny `std`-only HTTP/1.1 responder serving `/metrics`
//!   for Prometheus scrapes (`tkc serve --metrics-addr`).
//!
//! ## Overhead discipline
//!
//! Instrumentation must never tax the kernels it observes:
//!
//! - metrics handles are pre-registered `Arc`s; recording is 1–4 relaxed
//!   `fetch_add`s, no locks, no allocation;
//! - tracing checks one relaxed [`TraceBuffer::enabled`] load before
//!   building a record;
//! - kernel-level timers (worker pool, decompose phases) can be switched
//!   off wholesale via [`set_kernel_instrumentation`], which is how
//!   `bench_snapshot` *measures* the disabled overhead and asserts it
//!   stays under 2% on `support_csr_parallel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod logger;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use logger::Level;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use slo::{SloTarget, SloTracker};
pub use span::{SpanContext, SpanGuard, SpanRecord};
pub use trace::{TraceBuffer, TraceRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the first call in this process (a stable monotonic
/// epoch for spans and snapshot-age arithmetic).
pub fn process_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Milliseconds since the Unix epoch (wall clock, for trace timestamps
/// and log lines).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

static KERNEL_INSTRUMENTATION: AtomicBool = AtomicBool::new(true);

/// Whether kernel-level timers (worker-pool busy time, decompose phase
/// histograms) record into the global registry. One relaxed load.
#[inline]
pub fn kernel_instrumentation_enabled() -> bool {
    KERNEL_INSTRUMENTATION.load(Ordering::Relaxed)
}

/// Turns kernel-level timers on/off process-wide. `bench_snapshot` uses
/// this to measure the instrumented-vs-stripped delta; production code
/// leaves it on.
pub fn set_kernel_instrumentation(enabled: bool) {
    KERNEL_INSTRUMENTATION.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn process_nanos_is_monotone() {
        let a = process_nanos();
        let b = process_nanos();
        assert!(b >= a);
    }

    #[test]
    fn kernel_instrumentation_toggles() {
        assert!(kernel_instrumentation_enabled());
        set_kernel_instrumentation(false);
        assert!(!kernel_instrumentation_enabled());
        set_kernel_instrumentation(true);
        assert!(kernel_instrumentation_enabled());
    }
}
