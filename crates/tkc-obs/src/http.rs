//! A minimal `std`-only HTTP/1.1 responder for Prometheus scrapes.
//!
//! Serves `GET /metrics` (and `GET /`) with `text/plain; version=0.0.4`
//! from a render closure evaluated per request; anything else is a 404.
//! One thread, blocking accept loop, `Connection: close` on every
//! response — exactly enough for a scrape target, nothing more.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The render closure evaluated on every `/metrics` request.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running scrape endpoint; dropping it without [`MetricsServer::stop`]
/// leaves the thread serving until process exit.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept() with a throwaway connection.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves `render()` at `/metrics` on a background
/// thread.
pub fn serve<A: ToSocketAddrs>(addr: A, render: RenderFn) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tkc-metrics-http".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = handle_request(stream, &render);
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn handle_request(stream: TcpStream, render: &RenderFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients aren't cut off mid-send.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = reader.into_inner();
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = render();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

/// Performs a blocking GET against a running [`MetricsServer`] and
/// returns `(status_code, body)` — used by tests and the smoke scripts.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: tkc\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let server = serve("127.0.0.1:0", Arc::new(|| "demo_total 42\n".to_string())).unwrap();
        let addr = server.local_addr();
        let (status, body) = get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "demo_total 42\n");
        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        // Render is evaluated per request, not cached.
        let (_, body) = get(addr, "/").unwrap();
        assert_eq!(body, "demo_total 42\n");
        server.stop();
    }
}
