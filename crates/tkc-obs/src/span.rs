//! Request-scoped spans: causal, tree-shaped timing records.
//!
//! A [`SpanGuard`] measures one stage of a request (connection, parse,
//! queue wait, engine apply, WAL append, epoch publish, decompose
//! phase). Guards form a tree: each carries a process-unique span id, the
//! id of its parent, and the trace id of the root request, so a slow
//! `INSERT` can be attributed to fsync vs. cascade vs. publish instead of
//! showing up as one opaque latency sample.
//!
//! Parentage propagates through a thread-local stack — creating a child
//! span inside `Engine::apply` needs no plumbing through call signatures.
//! For work that hops threads (the batch ingest queue), capture
//! [`current`] on the sending side and re-enter it with
//! [`SpanGuard::follow`] on the receiving side.
//!
//! Finished spans are recorded into [`TraceBuffer::global`] (same enable
//! flag and JSONL export as the flat op trace); when spans are disabled
//! a guard is a `None` and costs one relaxed atomic load.

use crate::trace::TraceBuffer;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bound on per-span attributes; later [`SpanGuard::attr`] calls
/// are dropped so a buggy loop cannot balloon a record.
pub const MAX_ATTRS: usize = 4;

/// Process-unique id source for spans and traces (0 is reserved for
/// "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Renders an id as fixed-width lowercase hex (16 digits), the wire and
/// JSONL encoding of span/trace ids.
pub fn encode_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses an id previously rendered by [`encode_id`]. Rejects anything
/// that is not exactly 16 lowercase hex digits.
pub fn parse_id(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The identity a span propagates to its children: which trace it
/// belongs to and its own span id (the child's parent id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Id shared by every span of one request.
    pub trace_id: u64,
    /// Id of this span.
    pub span_id: u64,
}

thread_local! {
    /// Innermost-last stack of open spans on this thread.
    static STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on this thread, if any.
pub fn current() -> Option<SpanContext> {
    STACK
        .try_with(|s| s.try_borrow().ok().and_then(|v| v.last().copied()))
        .ok()
        .flatten()
}

fn stack_push(ctx: SpanContext) {
    let _ = STACK.try_with(|s| {
        if let Ok(mut v) = s.try_borrow_mut() {
            v.push(ctx);
        }
    });
}

fn stack_pop(ctx: SpanContext) {
    let _ = STACK.try_with(|s| {
        if let Ok(mut v) = s.try_borrow_mut() {
            if v.last() == Some(&ctx) {
                v.pop();
            } else if let Some(pos) = v.iter().rposition(|c| c == &ctx) {
                // Out-of-order drop (guards moved across scopes): remove
                // just this entry so siblings keep a correct parent.
                v.remove(pos);
            }
        }
    });
}

/// One finished span, as stored in the trace ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Wall-clock timestamp of the span end, ms since the Unix epoch.
    pub at_unix_ms: u64,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 for a root span).
    pub parent_id: u64,
    /// Stage name (`"conn"`, `"INSERT"`, `"engine.apply"`, ...). Static
    /// so recording never allocates for the name.
    pub name: &'static str,
    /// Span start, nanoseconds on the [`crate::process_nanos`] clock.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
    /// Up to [`MAX_ATTRS`] numeric attributes (bytes appended, ops in
    /// batch, triangles touched, ...).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Renders the span as one JSON object (no trailing newline). The
    /// `"kind":"span"` discriminant keeps span lines distinguishable
    /// from flat [`crate::TraceRecord`] lines in a merged JSONL stream.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        let _ = write!(
            s,
            "{{\"at_unix_ms\":{},\"kind\":\"span\",\"name\":\"{}\",\"trace_id\":\"{}\",\"span_id\":\"{}\",\"parent_id\":\"{}\",\"start_nanos\":{},\"duration_nanos\":{}",
            self.at_unix_ms,
            self.name,
            encode_id(self.trace_id),
            encode_id(self.span_id),
            encode_id(self.parent_id),
            self.start_nanos,
            self.duration_nanos
        );
        if !self.attrs.is_empty() {
            s.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{k}\":{v}");
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

#[derive(Debug)]
struct ActiveSpan {
    ctx: SpanContext,
    parent_id: u64,
    name: &'static str,
    start_nanos: u64,
    attrs: Vec<(&'static str, u64)>,
}

/// RAII handle for an open span. Created inert (a no-op `None`) when
/// [`TraceBuffer::global`] is disabled; otherwise records a
/// [`SpanRecord`] into the global ring on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a root span: a fresh trace id, no parent, regardless of any
    /// span already open on this thread.
    pub fn root(name: &'static str) -> SpanGuard {
        if !TraceBuffer::global().spans_enabled() {
            return SpanGuard { inner: None };
        }
        Self::open(name, next_id(), 0)
    }

    /// Opens a child of the innermost open span on this thread, or a
    /// root span if none is open.
    pub fn child(name: &'static str) -> SpanGuard {
        if !TraceBuffer::global().spans_enabled() {
            return SpanGuard { inner: None };
        }
        match current() {
            Some(parent) => Self::open(name, parent.trace_id, parent.span_id),
            None => Self::open(name, next_id(), 0),
        }
    }

    /// Opens a span continuing `parent` captured on another thread (the
    /// batch queue hand-off): same trace id, explicit parent link. With
    /// `None` this degrades to [`SpanGuard::root`].
    pub fn follow(name: &'static str, parent: Option<SpanContext>) -> SpanGuard {
        if !TraceBuffer::global().spans_enabled() {
            return SpanGuard { inner: None };
        }
        match parent {
            Some(p) => Self::open(name, p.trace_id, p.span_id),
            None => Self::open(name, next_id(), 0),
        }
    }

    fn open(name: &'static str, trace_id: u64, parent_id: u64) -> SpanGuard {
        let ctx = SpanContext {
            trace_id,
            span_id: next_id(),
        };
        stack_push(ctx);
        SpanGuard {
            inner: Some(ActiveSpan {
                ctx,
                parent_id,
                name,
                start_nanos: crate::process_nanos(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Attaches a numeric attribute (dropped past [`MAX_ATTRS`] or on an
    /// inert guard).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(a) = self.inner.as_mut() {
            if a.attrs.len() < MAX_ATTRS {
                a.attrs.push((key, value));
            }
        }
    }

    /// This span's context, for cross-thread propagation (`None` when
    /// inert).
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|a| a.ctx)
    }

    /// The trace id this span belongs to (`None` when inert).
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.ctx.trace_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else {
            return;
        };
        let end = crate::process_nanos();
        stack_pop(a.ctx);
        TraceBuffer::global().record_span(SpanRecord {
            at_unix_ms: crate::unix_millis(),
            trace_id: a.ctx.trace_id,
            span_id: a.ctx.span_id,
            parent_id: a.parent_id,
            name: a.name,
            start_nanos: a.start_nanos,
            duration_nanos: end.saturating_sub(a.start_nanos),
            attrs: a.attrs,
        });
    }
}

/// Records an already-measured stage as a finished child of the
/// innermost open span (used where only a duration is available: WAL
/// fsync split out of `AppendInfo`, decompose phase timings).
pub fn record_manual(name: &'static str, duration: Duration) {
    let buf = TraceBuffer::global();
    if !buf.spans_enabled() {
        return;
    }
    let (trace_id, parent_id) = match current() {
        Some(p) => (p.trace_id, p.span_id),
        None => (next_id(), 0),
    };
    let end = crate::process_nanos();
    let dur = duration.as_nanos() as u64;
    buf.record_span(SpanRecord {
        at_unix_ms: crate::unix_millis(),
        trace_id,
        span_id: next_id(),
        parent_id,
        name,
        start_nanos: end.saturating_sub(dur),
        duration_nanos: dur,
        attrs: Vec::new(),
    });
}

/// Renders the span tree of `trace_id` from the global ring, indented
/// by depth, durations in milliseconds, one span per line.
pub fn render_trace_tree(trace_id: u64) -> String {
    let spans = TraceBuffer::global().spans_for_trace(trace_id);
    let mut out = String::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &spans {
        if s.parent_id == 0 || !spans.iter().any(|p| p.span_id == s.parent_id) {
            roots.push(s);
        }
    }
    roots.sort_by_key(|s| s.start_nanos);
    fn emit(out: &mut String, spans: &[SpanRecord], node: &SpanRecord, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{} {:.3}ms",
            node.name,
            node.duration_nanos as f64 / 1e6
        );
        for (k, v) in &node.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        let mut kids: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent_id == node.span_id && s.span_id != node.span_id)
            .collect();
        kids.sort_by_key(|s| s.start_nanos);
        for k in kids {
            emit(out, spans, k, depth + 1);
        }
    }
    for r in roots {
        emit(&mut out, &spans, r, 0);
    }
    out
}

/// The slow-op log: if `elapsed` is strictly over `threshold`, logs the
/// request's span tree at `warn` level and returns `true`. Called by the
/// server once per completed request when `--slow-op-ms` is set.
pub fn maybe_log_slow_op(
    name: &str,
    elapsed: Duration,
    threshold: Duration,
    trace_id: Option<u64>,
) -> bool {
    if elapsed <= threshold {
        return false;
    }
    let tree = match trace_id {
        Some(id) => {
            let t = render_trace_tree(id);
            if t.is_empty() {
                String::from("(no spans retained)")
            } else {
                t
            }
        }
        None => String::from("(spans disabled)"),
    };
    let trace = trace_id.map(encode_id).unwrap_or_default();
    crate::warn!(
        "slow op {name} took {:.3}ms (threshold {:.3}ms) trace={trace}\n{}",
        elapsed.as_secs_f64() * 1e3,
        threshold.as_secs_f64() * 1e3,
        tree.trim_end()
    );
    true
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that toggle the process-global trace buffer.
    fn global_guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn id_encoding_is_16_hex_digits_and_round_trips() {
        assert_eq!(encode_id(0), "0000000000000000");
        assert_eq!(encode_id(u64::MAX), "ffffffffffffffff");
        assert_eq!(parse_id("000000000000002a"), Some(42));
        assert_eq!(parse_id("2a"), None, "must be fixed width");
        assert_eq!(parse_id("000000000000002A"), None, "lowercase only");
        assert_eq!(parse_id("00000000000000zz"), None);
        for id in [0u64, 1, 42, 1 << 33, u64::MAX] {
            assert_eq!(parse_id(&encode_id(id)), Some(id));
        }
    }

    #[test]
    fn disabled_guards_are_inert() {
        let _g = global_guard();
        TraceBuffer::global().set_enabled(false);
        let before = TraceBuffer::global().total_spans_recorded();
        {
            let mut s = SpanGuard::root("conn");
            s.attr("bytes", 1);
            assert!(s.context().is_none());
            let c = SpanGuard::child("parse");
            assert!(c.context().is_none());
        }
        assert_eq!(TraceBuffer::global().total_spans_recorded(), before);
        assert!(current().is_none());
    }

    #[test]
    fn guards_record_a_linked_tree() {
        let _g = global_guard();
        let buf = TraceBuffer::global();
        buf.set_enabled(true);
        let trace_id;
        {
            let mut root = SpanGuard::root("conn");
            root.attr("fd", 7);
            trace_id = root.trace_id().unwrap();
            {
                let child = SpanGuard::child("INSERT");
                assert_eq!(child.trace_id(), Some(trace_id));
                let grand = SpanGuard::child("engine.apply");
                assert_eq!(grand.trace_id(), Some(trace_id));
                drop(grand);
                drop(child);
            }
            // A manual record back-dates its start by its duration; sleep
            // first so it still lands inside the root's bounds.
            std::thread::sleep(Duration::from_millis(2));
            record_manual("engine.wal_fsync", Duration::from_micros(5));
        }
        buf.set_enabled(false);
        let spans = buf.spans_for_trace(trace_id);
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "conn").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.attrs, vec![("fd", 7)]);
        let insert = spans.iter().find(|s| s.name == "INSERT").unwrap();
        assert_eq!(insert.parent_id, root.span_id);
        let apply = spans.iter().find(|s| s.name == "engine.apply").unwrap();
        assert_eq!(apply.parent_id, insert.span_id);
        let fsync = spans.iter().find(|s| s.name == "engine.wal_fsync").unwrap();
        assert_eq!(fsync.parent_id, root.span_id);
        // Children start no earlier and end no later than the root.
        for s in &spans {
            assert!(s.start_nanos >= root.start_nanos);
            assert!(
                s.start_nanos + s.duration_nanos <= root.start_nanos + root.duration_nanos,
                "{} escapes root bounds",
                s.name
            );
        }
        let tree = render_trace_tree(trace_id);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("conn "), "{tree}");
        assert!(lines.iter().any(|l| l.starts_with("  INSERT")), "{tree}");
        assert!(
            lines.iter().any(|l| l.starts_with("    engine.apply")),
            "{tree}"
        );
        buf.clear();
    }

    #[test]
    fn follow_links_across_threads() {
        let _g = global_guard();
        let buf = TraceBuffer::global();
        buf.set_enabled(true);
        let root = SpanGuard::root("BATCH");
        let ctx = root.context();
        let trace_id = root.trace_id().unwrap();
        let handle = std::thread::spawn(move || {
            let ingest = SpanGuard::follow("engine.ingest", ctx);
            let _child = SpanGuard::child("engine.apply");
            assert_eq!(ingest.trace_id(), Some(trace_id));
        });
        handle.join().unwrap();
        drop(root);
        buf.set_enabled(false);
        let spans = buf.spans_for_trace(trace_id);
        assert_eq!(spans.len(), 3);
        let ingest = spans.iter().find(|s| s.name == "engine.ingest").unwrap();
        let apply = spans.iter().find(|s| s.name == "engine.apply").unwrap();
        assert_eq!(apply.parent_id, ingest.span_id);
        buf.clear();
    }

    #[test]
    fn span_json_shape() {
        let rec = SpanRecord {
            at_unix_ms: 9,
            trace_id: 1,
            span_id: 2,
            parent_id: 0,
            name: "conn",
            start_nanos: 100,
            duration_nanos: 50,
            attrs: vec![("bytes", 12)],
        };
        assert_eq!(
            rec.to_json(),
            "{\"at_unix_ms\":9,\"kind\":\"span\",\"name\":\"conn\",\"trace_id\":\"0000000000000001\",\"span_id\":\"0000000000000002\",\"parent_id\":\"0000000000000000\",\"start_nanos\":100,\"duration_nanos\":50,\"attrs\":{\"bytes\":12}}"
        );
    }

    #[test]
    fn attrs_are_bounded() {
        let _g = global_guard();
        let buf = TraceBuffer::global();
        buf.set_enabled(true);
        let trace_id;
        {
            let mut s = SpanGuard::root("conn");
            trace_id = s.trace_id().unwrap();
            for i in 0..(MAX_ATTRS as u64 + 3) {
                s.attr("k", i);
            }
        }
        buf.set_enabled(false);
        let spans = buf.spans_for_trace(trace_id);
        assert_eq!(spans[0].attrs.len(), MAX_ATTRS);
        buf.clear();
    }

    #[test]
    fn slow_op_log_fires_exactly_over_threshold() {
        let _g = global_guard();
        let lines = std::sync::Arc::new(Mutex::new(Vec::<String>::new()));
        let captured = std::sync::Arc::clone(&lines);
        crate::logger::set_sink(Some(Box::new(move |l| {
            captured
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(l.to_string());
        })));
        let th = Duration::from_millis(5);
        assert!(!maybe_log_slow_op(
            "INSERT",
            Duration::from_millis(4),
            th,
            None
        ));
        assert!(
            !maybe_log_slow_op("INSERT", th, th, None),
            "equal to threshold must not fire"
        );
        assert!(maybe_log_slow_op(
            "INSERT",
            Duration::from_millis(6),
            th,
            None
        ));
        crate::logger::set_sink(None);
        let lines = lines.lock().unwrap();
        let slow: Vec<&String> = lines.iter().filter(|l| l.contains("slow op")).collect();
        assert_eq!(slow.len(), 1, "{lines:?}");
        assert!(
            slow[0].contains("slow op INSERT took 6.000ms"),
            "{}",
            slow[0]
        );
    }
}
