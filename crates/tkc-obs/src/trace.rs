//! Bounded structured trace ring.
//!
//! A [`TraceBuffer`] holds the last `capacity` [`TraceRecord`]s — one per
//! traced operation (an engine apply, an epoch publish, a decompose
//! phase). Recording when tracing is *disabled* costs exactly one relaxed
//! atomic load; when enabled, one short mutex push into a preallocated
//! ring (oldest records are overwritten). Records export as JSONL for
//! offline analysis of the skew the maintenance papers predict: per-op
//! cost dominated by triangles touched and κ-levels visited.

use crate::span::SpanRecord;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Capacity [`TraceBuffer::global`] is created with on first use.
static GLOBAL_CAPACITY: AtomicUsize = AtomicUsize::new(4096);

/// Sets the capacity of the process-wide buffer. Only effective before
/// the first [`TraceBuffer::global`] call — once the buffer exists its
/// ring is fixed, and later calls are silently ignored.
pub fn set_global_capacity(capacity: usize) {
    GLOBAL_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// Operation kind (`"insert"`, `"remove"`, `"publish"`, `"freeze"`,
    /// `"supports"`, `"peel"`, ...). Static so recording never allocates
    /// for the kind.
    pub kind: &'static str,
    /// Edge endpoint (0 when the record is not edge-scoped).
    pub u: u32,
    /// Edge endpoint (0 when the record is not edge-scoped).
    pub v: u32,
    /// Triangles touched by the operation (added + removed).
    pub triangles: u64,
    /// κ-levels visited (promotions + demotions walked).
    pub levels: u64,
    /// Operation duration in nanoseconds.
    pub duration_nanos: u64,
}

impl TraceRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"at_unix_ms\":{},\"kind\":\"{}\",\"u\":{},\"v\":{},\"triangles\":{},\"levels\":{},\"duration_nanos\":{}}}",
            self.at_unix_ms, self.kind, self.u, self.v, self.triangles, self.levels, self.duration_nanos
        );
        s
    }
}

#[derive(Debug)]
struct Ring {
    slots: Vec<TraceRecord>,
    /// Index of the next slot to write; `total` counts lifetime records.
    next: usize,
    total: u64,
    /// Span records share the buffer (same capacity, same lock) so one
    /// enable flag and one export path cover both record shapes.
    spans: Vec<SpanRecord>,
    span_next: usize,
    span_total: u64,
}

/// A fixed-capacity ring of trace records behind an atomic enable flag.
#[derive(Debug)]
pub struct TraceBuffer {
    enabled: AtomicBool,
    /// Sub-flag gating span records only: spans are kept when `enabled
    /// && spans`. Lets an operator (or the overhead gate) keep the op
    /// trace while shedding span recording, and vice-versa measurement.
    spans_enabled: AtomicBool,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TraceBuffer {
    /// A disabled buffer holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            enabled: AtomicBool::new(false),
            spans_enabled: AtomicBool::new(true),
            capacity,
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                next: 0,
                total: 0,
                spans: Vec::new(),
                span_next: 0,
                span_total: 0,
            }),
        }
    }

    /// The process-wide buffer the engine records into (capacity from
    /// [`set_global_capacity`], default 4096; disabled until
    /// `tkc serve --trace-out` or a test enables it).
    pub fn global() -> &'static TraceBuffer {
        static GLOBAL: OnceLock<TraceBuffer> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceBuffer::new(GLOBAL_CAPACITY.load(Ordering::Relaxed)))
    }

    /// Whether records are currently kept. This is THE hot-path check:
    /// a single relaxed load, no fence, no branch history pollution.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span records are currently kept: the buffer must be
    /// enabled AND spans not shed. Still one relaxed load on the common
    /// fully-disabled path (`enabled` short-circuits).
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.enabled() && self.spans_enabled.load(Ordering::Relaxed)
    }

    /// Turns span recording on or off independently of the op trace
    /// (default on; only consulted while the buffer is enabled).
    pub fn set_spans_enabled(&self, enabled: bool) {
        self.spans_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Stores a record if enabled (call sites that build records lazily
    /// should check [`TraceBuffer::enabled`] first and skip construction).
    #[inline]
    pub fn record(&self, record: TraceRecord) {
        if !self.enabled() {
            return;
        }
        self.push(record);
    }

    fn push(&self, record: TraceRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.slots.len() < self.capacity {
            ring.slots.push(record);
        } else {
            let next = ring.next;
            if let Some(slot) = ring.slots.get_mut(next) {
                *slot = record;
            }
        }
        ring.next = (ring.next + 1) % self.capacity;
        ring.total += 1;
    }

    /// Lifetime record count (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).total
    }

    /// The retained records, oldest first.
    pub fn drain_ordered(&self) -> Vec<TraceRecord> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.slots.len() < self.capacity {
            ring.slots.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            let (newest, oldest) = ring.slots.split_at(ring.next.min(ring.slots.len()));
            out.extend_from_slice(oldest);
            out.extend_from_slice(newest);
            out
        }
    }

    /// Renders the retained records as JSONL (one object per line,
    /// oldest first, trailing newline after each).
    pub fn export_jsonl(&self) -> String {
        let records = self.drain_ordered();
        let mut out = String::with_capacity(records.len() * 128);
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Stores a finished span if enabled (same ring lock and capacity as
    /// op records; oldest spans are overwritten independently).
    #[inline]
    pub fn record_span(&self, span: SpanRecord) {
        if !self.spans_enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.spans.len() < self.capacity {
            ring.spans.push(span);
        } else {
            let next = ring.span_next;
            if let Some(slot) = ring.spans.get_mut(next) {
                *slot = span;
            }
        }
        ring.span_next = (ring.span_next + 1) % self.capacity;
        ring.span_total += 1;
    }

    /// Lifetime span count (including overwritten ones).
    pub fn total_spans_recorded(&self) -> u64 {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .span_total
    }

    /// The retained spans, oldest first.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.spans.len() < self.capacity {
            ring.spans.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            let (newest, oldest) = ring.spans.split_at(ring.span_next.min(ring.spans.len()));
            out.extend_from_slice(oldest);
            out.extend_from_slice(newest);
            out
        }
    }

    /// The retained spans belonging to one trace, oldest first (used by
    /// the slow-op log to reconstruct a request's tree).
    pub fn spans_for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.drain_spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// Renders retained op records *and* spans as JSONL, merged oldest
    /// first by wall-clock timestamp (ops before spans on ties).
    pub fn export_all_jsonl(&self) -> String {
        let mut lines: Vec<(u64, String)> = Vec::new();
        for r in self.drain_ordered() {
            lines.push((r.at_unix_ms, r.to_json()));
        }
        for s in self.drain_spans() {
            lines.push((s.at_unix_ms, s.to_json()));
        }
        lines.sort_by_key(|(at, _)| *at);
        let mut out = String::with_capacity(lines.len() * 160);
        for (_, l) in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// The last `n` lines of [`TraceBuffer::export_all_jsonl`] (the
    /// `TRACE <n>` wire verb).
    pub fn tail_jsonl(&self, n: usize) -> String {
        let all = self.export_all_jsonl();
        let lines: Vec<&str> = all.lines().collect();
        let skip = lines.len().saturating_sub(n);
        let mut out = String::new();
        for l in lines.iter().skip(skip) {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Clears retained records and spans (lifetime totals are preserved).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.slots.clear();
        ring.next = 0;
        ring.spans.clear();
        ring.span_next = 0;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            at_unix_ms: i,
            kind: "insert",
            u: i as u32,
            v: i as u32 + 1,
            triangles: i,
            levels: 0,
            duration_nanos: i * 10,
        }
    }

    #[test]
    fn disabled_buffer_drops_everything() {
        let buf = TraceBuffer::new(8);
        assert!(!buf.enabled());
        buf.record(rec(1));
        assert_eq!(buf.total_recorded(), 0);
        assert!(buf.drain_ordered().is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let buf = TraceBuffer::new(4);
        buf.set_enabled(true);
        for i in 0..10 {
            buf.record(rec(i));
        }
        assert_eq!(buf.total_recorded(), 10);
        let kept = buf.drain_ordered();
        assert_eq!(kept.len(), 4);
        let stamps: Vec<u64> = kept.iter().map(|r| r.at_unix_ms).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn jsonl_export_is_one_object_per_line() {
        let buf = TraceBuffer::new(4);
        buf.set_enabled(true);
        buf.record(rec(3));
        let jsonl = buf.export_jsonl();
        assert_eq!(
            jsonl,
            "{\"at_unix_ms\":3,\"kind\":\"insert\",\"u\":3,\"v\":4,\"triangles\":3,\"levels\":0,\"duration_nanos\":30}\n"
        );
    }

    #[test]
    fn concurrent_recorders_account_for_every_record() {
        let buf = std::sync::Arc::new(TraceBuffer::new(64));
        buf.set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let buf = std::sync::Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        buf.record(rec(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(buf.total_recorded(), 400);
        assert_eq!(buf.drain_ordered().len(), 64);
    }

    fn span(i: u64) -> SpanRecord {
        SpanRecord {
            at_unix_ms: i,
            trace_id: 1,
            span_id: i,
            parent_id: 0,
            name: "conn",
            start_nanos: i * 100,
            duration_nanos: 10,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn span_ring_wraps_independently_of_op_ring() {
        let buf = TraceBuffer::new(4);
        buf.set_enabled(true);
        buf.record(rec(1));
        for i in 0..6 {
            buf.record_span(span(i));
        }
        assert_eq!(buf.total_recorded(), 1);
        assert_eq!(buf.total_spans_recorded(), 6);
        let spans = buf.drain_spans();
        assert_eq!(spans.len(), 4);
        let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest-first, newest retained");
        assert_eq!(buf.spans_for_trace(1).len(), 4);
        assert!(buf.spans_for_trace(99).is_empty());
    }

    #[test]
    fn merged_export_and_tail_interleave_by_timestamp() {
        let buf = TraceBuffer::new(8);
        buf.set_enabled(true);
        buf.record(rec(5));
        buf.record_span(span(2));
        buf.record_span(span(9));
        let all = buf.export_all_jsonl();
        let lines: Vec<&str> = all.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"span\"") && lines[0].contains("\"at_unix_ms\":2"));
        assert!(lines[1].contains("\"kind\":\"insert\""));
        assert!(lines[2].contains("\"at_unix_ms\":9"));
        let tail = buf.tail_jsonl(2);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.starts_with("{\"at_unix_ms\":5"));
        buf.clear();
        assert!(buf.drain_spans().is_empty());
        assert_eq!(buf.total_spans_recorded(), 2);
    }

    #[test]
    fn clear_resets_retention_not_total() {
        let buf = TraceBuffer::new(4);
        buf.set_enabled(true);
        for i in 0..6 {
            buf.record(rec(i));
        }
        buf.clear();
        assert!(buf.drain_ordered().is_empty());
        assert_eq!(buf.total_recorded(), 6);
        buf.record(rec(7));
        assert_eq!(buf.drain_ordered().len(), 1);
    }
}
