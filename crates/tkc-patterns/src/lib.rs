//! # tkc-patterns — template pattern cliques (Algorithm 4)
//!
//! The paper's probing layer: users describe a clique pattern by its
//! *characteristic* and *possible* triangles over an original/new
//! attributed graph, and Algorithm 4 surfaces exactly the cliques of that
//! shape. Built-ins cover the three patterns of Figure 4 — [`templates::NewFormClique`],
//! [`templates::BridgeClique`], [`templates::NewJoinClique`] — plus fully
//! custom predicates, and the labeled-static variant used in the PPI case
//! study (§VII-F).
//!
//! ```
//! use tkc_graph::{Graph, VertexId};
//! use tkc_patterns::{AttributedGraph, detect_template, templates::NewFormClique};
//!
//! // 2003 snapshot: five authors exist; 2004: they form a brand-new clique.
//! let old = Graph::from_edges(6, [(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
//! let mut new = old.clone();
//! for i in 0..5u32 {
//!     for j in (i + 1)..5 {
//!         new.try_add_edge(VertexId(i), VertexId(j));
//!     }
//! }
//! let ag = AttributedGraph::from_snapshots(&old, &new);
//! let found = detect_template(&ag, &NewFormClique);
//! assert_eq!(found.top_structures(1)[0].vertices.len(), 5);
//! ```

// Analysis-layer crate: pattern probing walks id-dense score vectors; a
// panic here fails an offline analysis run, not a serving path. See
// DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attributed;
pub mod detect;
pub mod events;
pub mod templates;

pub use attributed::{AttributedGraph, TriangleAttrs};
pub use detect::{detect_template, PatternResult};
pub use events::{detect_events, Event, EventOptions, EventReport};
pub use templates::{BridgeClique, CustomTemplate, NewFormClique, NewJoinClique, Template};
