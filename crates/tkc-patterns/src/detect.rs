//! Algorithm 4: detect template pattern cliques.
//!
//! 1. mark every characteristic triangle's edges and vertices *special*;
//! 2. among triangles whose three corners are all special, mark the edges
//!    of *possible* triangles special too;
//! 3. build the special subgraph `G_spe` and run Algorithm 1 on it;
//! 4. special edges get `co_clique_size = κ_spe + 2`, all other edges 0;
//! 5. plot with the usual density ordering (left to the caller / tkc-viz).

use tkc_core::decompose::{triangle_kcore_decomposition, Decomposition};
use tkc_core::extract::{cores_at_level, Core};
use tkc_graph::triangles::for_each_triangle;
use tkc_graph::{EdgeId, Graph, VertexId};

use crate::attributed::{AttributedGraph, TriangleAttrs};
use crate::templates::Template;

/// Output of Algorithm 4 on one attributed graph + template.
#[derive(Debug, Clone)]
pub struct PatternResult {
    /// `co_clique_size` per raw edge id of the *host* graph (0 for edges
    /// outside every pattern clique) — feed this to
    /// `tkc_viz::density_order` for the pattern distribution plot.
    pub co_clique: Vec<u32>,
    /// The special subgraph `G_spe` (same vertex ids as the host).
    pub special_graph: Graph,
    /// Algorithm 1 run on `G_spe`.
    pub decomposition: Decomposition,
    /// Host edge ids marked special (sorted).
    pub special_edges: Vec<EdgeId>,
    /// Vertices marked special (sorted).
    pub special_vertices: Vec<VertexId>,
}

impl PatternResult {
    /// The densest pattern structures: cores of `G_spe` at descending
    /// levels until `want` are collected. Vertex ids refer to the host.
    pub fn top_structures(&self, want: usize) -> Vec<Core> {
        let mut out = Vec::new();
        for k in (1..=self.decomposition.max_kappa()).rev() {
            let mut level: Vec<Core> = cores_at_level(&self.special_graph, &self.decomposition, k)
                .into_iter()
                .filter(|c| {
                    // Keep maximal structures only: drop cores whose
                    // vertex set is already inside a denser one.
                    !out.iter()
                        .any(|prev: &Core| c.vertices.iter().all(|v| prev.vertices.contains(v)))
                })
                .collect();
            level.sort_by_key(|c| std::cmp::Reverse(c.vertices.len()));
            out.extend(level);
            if out.len() >= want {
                break;
            }
        }
        out.truncate(want);
        out
    }

    /// Number of special edges.
    pub fn special_edge_count(&self) -> usize {
        self.special_edges.len()
    }
}

/// Runs Algorithm 4 for `template` over the attributed graph.
pub fn detect_template(ag: &AttributedGraph, template: &dyn Template) -> PatternResult {
    let g = ag.graph();
    let n = g.num_vertices();
    let mut special_vertex = vec![false; n];
    let mut special_edge = vec![false; g.edge_bound()];

    // Pass 1 (steps 1-3): characteristic triangles.
    for_each_triangle(g, |t| {
        let attrs = TriangleAttrs::of(ag, &t);
        if template.is_characteristic(&attrs) {
            for v in t.vertices {
                special_vertex[v.index()] = true;
            }
            for e in t.edges {
                special_edge[e.index()] = true;
            }
        }
    });

    // Pass 2 (steps 4-6): possible triangles among special vertices.
    for_each_triangle(g, |t| {
        if t.vertices.iter().all(|v| special_vertex[v.index()]) {
            let attrs = TriangleAttrs::of(ag, &t);
            if template.is_possible(&attrs) {
                for e in t.edges {
                    special_edge[e.index()] = true;
                }
            }
        }
    });

    // Step 7: G_spe on the same vertex ids.
    let special_edges: Vec<EdgeId> = g.edge_ids().filter(|&e| special_edge[e.index()]).collect();
    let mut gs = Graph::with_capacity(n, special_edges.len());
    for &e in &special_edges {
        let (u, v) = g.endpoints(e);
        gs.add_edge(u, v).expect("special edges are unique");
    }

    // Step 8: Algorithm 1 on G_spe.
    let decomposition = triangle_kcore_decomposition(&gs);

    // Steps 9-13: host-indexed co-clique vector.
    let mut co = vec![0u32; g.edge_bound()];
    for &e in &special_edges {
        let (u, v) = g.endpoints(e);
        let se = gs.edge_between(u, v).expect("just inserted");
        co[e.index()] = decomposition.kappa(se) + 2;
    }

    let special_vertices: Vec<VertexId> = (0..n as u32)
        .map(VertexId)
        .filter(|v| special_vertex[v.index()])
        .collect();

    PatternResult {
        co_clique: co,
        special_graph: gs,
        decomposition,
        special_edges,
        special_vertices,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::templates::{BridgeClique, NewFormClique, NewJoinClique};
    use tkc_graph::generators;

    /// Figure 4(a): original sparse graph; a 5-clique ABCDE appears made
    /// entirely of new edges among original vertices.
    fn new_form_scenario() -> (Graph, Graph) {
        // Old: vertices 0..8 with a few original edges keeping 0..5 "old".
        let old = Graph::from_edges(8, [(0, 5), (1, 5), (2, 6), (3, 6), (4, 7), (5, 6)]);
        let mut new = old.clone();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                new.try_add_edge(VertexId(i), VertexId(j));
            }
        }
        (old, new)
    }

    #[test]
    fn detects_new_form_clique() {
        let (old, new) = new_form_scenario();
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let res = detect_template(&ag, &NewFormClique);
        // All 10 new edges of the 5-clique are special; original edges not.
        assert_eq!(res.special_edge_count(), 10);
        let top = res.top_structures(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].vertices.len(), 5);
        assert!(top[0].is_clique());
        assert_eq!(top[0].level, 3);
        // Host co-clique values: 5 on the clique edges, 0 elsewhere.
        let g = ag.graph();
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(res.co_clique[e01.index()], 5);
        let e05 = g.edge_between(VertexId(0), VertexId(5)).unwrap();
        assert_eq!(res.co_clique[e05.index()], 0);
    }

    /// Figure 4(b): two original triangles {0,1,2} and {3,4}, new edges
    /// weld vertices of both into a bridge clique {1,2,3,4}.
    #[test]
    fn detects_bridge_clique() {
        let old = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)]);
        let mut new = old.clone();
        // New edges: complete {1,2,3,4}.
        for (a, b) in [(1u32, 3u32), (1, 4), (2, 3), (2, 4)] {
            new.try_add_edge(VertexId(a), VertexId(b));
        }
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let res = detect_template(&ag, &BridgeClique);
        let top = res.top_structures(1);
        assert_eq!(top[0].vertices.len(), 4);
        assert!(top[0].is_clique());
        assert_eq!(
            top[0].vertices,
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
        );
        // The all-original triangle {0,1,2}: edge (1,2) participates via
        // the possible-triangle rule only if 0 is special — it is not, so
        // edge (0,1) stays out.
        let g = ag.graph();
        let e01 = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(res.co_clique[e01.index()], 0);
    }

    /// Figure 4(c): original triangle {3,4,5} (DEF) joined by new vertices
    /// {0,1,2} (ABC) into a 6-clique.
    #[test]
    fn detects_new_join_clique() {
        let old = Graph::from_edges(6, [(3, 4), (3, 5), (4, 5)]);
        let mut new = generators::complete(6);
        // Keep ids aligned: old graph's vertices 3,4,5 are original.
        // (complete(6) contains the old edges already.)
        let _ = &mut new;
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let res = detect_template(&ag, &NewJoinClique);
        let top = res.top_structures(1);
        assert_eq!(top[0].vertices.len(), 6);
        assert!(top[0].is_clique());
        assert_eq!(top[0].level, 4);
    }

    #[test]
    fn no_matches_on_quiet_graph() {
        // A snapshot pair with no changes has no new edges at all.
        let g = generators::planted_partition(2, 6, 0.8, 0.1, 2);
        let ag = AttributedGraph::from_snapshots(&g, &g);
        {
            let template = &NewFormClique as &dyn Template;
            let res = detect_template(&ag, template);
            assert_eq!(res.special_edge_count(), 0);
            assert!(res.top_structures(3).is_empty());
            assert!(res.co_clique.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn labeled_bridge_variant_for_ppi() {
        // §VII-F: "new" = inter-complex. Two complexes (labels 0/1), a
        // bridge clique {1,2,5,6} spanning them.
        let mut g = generators::complete(4); // complex 0: vertices 0..4
        g.add_vertices(4);
        for i in 4..8u32 {
            for j in (i + 1)..8 {
                g.add_edge(VertexId(i), VertexId(j)).unwrap(); // complex 1
            }
        }
        // Inter-complex weld: {2,3} x {4,5} complete.
        for (a, b) in [(2u32, 4u32), (2, 5), (3, 4), (3, 5)] {
            g.add_edge(VertexId(a), VertexId(b)).unwrap();
        }
        let labels = [0u32, 0, 0, 0, 1, 1, 1, 1];
        let ag = AttributedGraph::from_vertex_labels(g, &labels);
        let res = detect_template(&ag, &BridgeClique);
        let top = res.top_structures(1);
        assert_eq!(top[0].vertices.len(), 4);
        assert_eq!(
            top[0].vertices,
            vec![VertexId(2), VertexId(3), VertexId(4), VertexId(5)]
        );
    }

    #[test]
    fn top_structures_respects_want_and_dedups() {
        let (old, new) = new_form_scenario();
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let res = detect_template(&ag, &NewFormClique);
        // want=3 but only one structure exists: no padding, no duplicates.
        let top = res.top_structures(3);
        assert_eq!(top.len(), 1);
    }
}
