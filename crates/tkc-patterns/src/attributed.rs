//! Attributed graphs for template pattern detection: every vertex and edge
//! carries an *original | new* flag (black vs. red in Figure 4).
//!
//! Two constructions cover the paper's studies:
//!
//! * [`AttributedGraph::from_snapshots`] — evolving graphs (DBLP, Wiki):
//!   the analyzed graph is the new snapshot; anything already present in
//!   the old snapshot is *original*;
//! * [`AttributedGraph::from_vertex_labels`] — static labeled graphs
//!   (PPI complexes, §VII-F): an edge is "new" when it crosses labels.

use tkc_graph::{EdgeId, Graph, VertexId};

/// A graph plus original/new attributes on vertices and edges.
#[derive(Debug, Clone)]
pub struct AttributedGraph {
    graph: Graph,
    vertex_new: Vec<bool>,
    edge_new: Vec<bool>,
}

impl AttributedGraph {
    /// Wraps a graph with explicit attribute vectors (`true` = new).
    ///
    /// # Panics
    /// Panics when the vectors do not cover the graph.
    pub fn new(graph: Graph, vertex_new: Vec<bool>, edge_new: Vec<bool>) -> Self {
        assert_eq!(vertex_new.len(), graph.num_vertices(), "vertex attrs");
        assert!(edge_new.len() >= graph.edge_bound(), "edge attrs");
        AttributedGraph {
            graph,
            vertex_new,
            edge_new,
        }
    }

    /// Builds the attributed view of an evolving graph: the analyzed graph
    /// is `new_snapshot`; a vertex is *original* when it touches at least
    /// one edge of `old_snapshot`, an edge is *original* when it exists in
    /// `old_snapshot`. (The old snapshot may have fewer vertices.)
    pub fn from_snapshots(old_snapshot: &Graph, new_snapshot: &Graph) -> Self {
        let n = new_snapshot.num_vertices();
        let vertex_new: Vec<bool> = (0..n)
            .map(|v| {
                !old_snapshot.contains_vertex(VertexId::from(v))
                    || old_snapshot.degree(VertexId::from(v)) == 0
            })
            .collect();
        let mut edge_new = vec![true; new_snapshot.edge_bound()];
        for (e, u, v) in new_snapshot.edges() {
            if old_snapshot.contains_vertex(u)
                && old_snapshot.contains_vertex(v)
                && old_snapshot.has_edge(u, v)
            {
                edge_new[e.index()] = false;
            }
        }
        AttributedGraph {
            graph: new_snapshot.clone(),
            vertex_new,
            edge_new,
        }
    }

    /// Builds the attributed view of a statically labeled graph (e.g. PPI
    /// complexes): all vertices are *original*; an edge is *new* exactly
    /// when its endpoints carry different labels (inter-complex edge).
    pub fn from_vertex_labels(graph: Graph, labels: &[u32]) -> Self {
        assert_eq!(labels.len(), graph.num_vertices(), "one label per vertex");
        let mut edge_new = vec![false; graph.edge_bound()];
        for (e, u, v) in graph.edges() {
            edge_new[e.index()] = labels[u.index()] != labels[v.index()];
        }
        AttributedGraph {
            vertex_new: vec![false; graph.num_vertices()],
            edge_new,
            graph,
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// True when vertex `v` is new (red).
    #[inline]
    pub fn is_new_vertex(&self, v: VertexId) -> bool {
        self.vertex_new[v.index()]
    }

    /// True when edge `e` is new (red).
    #[inline]
    pub fn is_new_edge(&self, e: EdgeId) -> bool {
        self.edge_new[e.index()]
    }

    /// Number of new edges.
    pub fn new_edge_count(&self) -> usize {
        self.graph
            .edge_ids()
            .filter(|&e| self.is_new_edge(e))
            .count()
    }
}

/// The attribute view of one triangle, fed to template predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleAttrs {
    /// Triangle corners (ascending).
    pub vertices: [VertexId; 3],
    /// Sides `[{v0,v1}, {v0,v2}, {v1,v2}]`.
    pub edges: [EdgeId; 3],
    /// Per-corner "new" flags, aligned with `vertices`.
    pub vertex_new: [bool; 3],
    /// Per-side "new" flags, aligned with `edges`.
    pub edge_new: [bool; 3],
}

impl TriangleAttrs {
    /// Builds the attribute view of a triangle of `ag`.
    pub fn of(ag: &AttributedGraph, t: &tkc_graph::triangles::Triangle) -> Self {
        TriangleAttrs {
            vertices: t.vertices,
            edges: t.edges,
            vertex_new: [
                ag.is_new_vertex(t.vertices[0]),
                ag.is_new_vertex(t.vertices[1]),
                ag.is_new_vertex(t.vertices[2]),
            ],
            edge_new: [
                ag.is_new_edge(t.edges[0]),
                ag.is_new_edge(t.edges[1]),
                ag.is_new_edge(t.edges[2]),
            ],
        }
    }

    /// How many of the three edges are new.
    pub fn new_edges(&self) -> usize {
        self.edge_new.iter().filter(|&&b| b).count()
    }

    /// How many of the three corners are new.
    pub fn new_vertices(&self) -> usize {
        self.vertex_new.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::triangles::list_triangles;

    #[test]
    fn snapshot_attributes() {
        // Old: triangle {0,1,2}. New: same triangle plus vertex 3 attached
        // to 1 and 2.
        let old = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let new = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let ag = AttributedGraph::from_snapshots(&old, &new);
        assert!(!ag.is_new_vertex(VertexId(0)));
        assert!(ag.is_new_vertex(VertexId(3)));
        let e12 = new.edge_between(VertexId(1), VertexId(2)).unwrap();
        let e13 = new.edge_between(VertexId(1), VertexId(3)).unwrap();
        assert!(!ag.is_new_edge(e12));
        assert!(ag.is_new_edge(e13));
        assert_eq!(ag.new_edge_count(), 2);
    }

    #[test]
    fn isolated_old_vertices_count_as_new() {
        // Vertex 2 exists in the old snapshot but had no edges there: the
        // DBLP semantics treat it as a newcomer.
        let old = Graph::from_edges(3, [(0, 1)]);
        let new = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let ag = AttributedGraph::from_snapshots(&old, &new);
        assert!(ag.is_new_vertex(VertexId(2)));
        assert!(!ag.is_new_vertex(VertexId(0)));
    }

    #[test]
    fn label_attributes_mark_crossing_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let ag = AttributedGraph::from_vertex_labels(g, &[7, 7, 9, 9]);
        let g = ag.graph();
        assert!(!ag.is_new_edge(g.edge_between(VertexId(0), VertexId(1)).unwrap()));
        assert!(ag.is_new_edge(g.edge_between(VertexId(1), VertexId(2)).unwrap()));
        assert!(!ag.is_new_edge(g.edge_between(VertexId(2), VertexId(3)).unwrap()));
        assert!(ag.is_new_edge(g.edge_between(VertexId(0), VertexId(2)).unwrap()));
        assert!(!ag.is_new_vertex(VertexId(0)));
    }

    #[test]
    fn triangle_attrs_align_with_canonical_order() {
        let old = Graph::from_edges(3, [(0, 1)]);
        let new = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let ts = list_triangles(ag.graph());
        assert_eq!(ts.len(), 1);
        let attrs = TriangleAttrs::of(&ag, &ts[0]);
        assert_eq!(attrs.vertices, [VertexId(0), VertexId(1), VertexId(2)]);
        // Edge order [01, 02, 12]: 01 is original, the others new.
        assert_eq!(attrs.edge_new, [false, true, true]);
        assert_eq!(attrs.vertex_new, [false, false, true]);
        assert_eq!(attrs.new_edges(), 2);
        assert_eq!(attrs.new_vertices(), 1);
    }

    #[test]
    #[should_panic(expected = "vertex attrs")]
    fn attr_length_mismatch_panics() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let _ = AttributedGraph::new(g, vec![false; 2], vec![false; 8]);
    }
}
