//! Template definitions: which triangles are *characteristic* of a pattern
//! and which additional triangles are *possible* inside its cliques
//! (Algorithm 4 steps 1 and 4, Figure 4).

use crate::attributed::TriangleAttrs;

/// A user-definable template pattern over attributed triangles.
///
/// * A **characteristic triangle** is a 3-clique that can only occur inside
///   an instance of the pattern, and every vertex of a pattern clique lies
///   in one (the paper's two requirements).
/// * A **possible triangle** is any other triangle shape that may occur
///   inside a pattern clique; it is only considered when all three of its
///   vertices were already marked special by characteristic triangles.
pub trait Template {
    /// Human-readable name used in plots and reports.
    fn name(&self) -> &str;
    /// Characteristic-triangle predicate.
    fn is_characteristic(&self, t: &TriangleAttrs) -> bool;
    /// Possible-triangle predicate (checked on special-vertex triangles).
    fn is_possible(&self, t: &TriangleAttrs) -> bool;
}

/// **New Form Clique** (Figure 4(a)/(d)): a clique built entirely from new
/// edges among original vertices. Characteristic: 3 new edges, 3 original
/// vertices; no other triangle shape is possible.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewFormClique;

impl Template for NewFormClique {
    fn name(&self) -> &str {
        "new-form"
    }
    fn is_characteristic(&self, t: &TriangleAttrs) -> bool {
        t.new_edges() == 3 && t.new_vertices() == 0
    }
    fn is_possible(&self, _t: &TriangleAttrs) -> bool {
        false
    }
}

/// **Bridge Clique** (Figure 4(b)/(e)): a clique spanning two previously
/// disconnected cliques. Characteristic: 3 original vertices, exactly 2 new
/// edges and 1 original edge; possible: triangles of 3 original edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct BridgeClique;

impl Template for BridgeClique {
    fn name(&self) -> &str {
        "bridge"
    }
    fn is_characteristic(&self, t: &TriangleAttrs) -> bool {
        t.new_vertices() == 0 && t.new_edges() == 2
    }
    fn is_possible(&self, t: &TriangleAttrs) -> bool {
        t.new_edges() == 0
    }
}

/// **New Join Clique** (Figure 4(c)/(f)): an original clique extended by
/// new vertices. Characteristic: one new vertex joined to an original edge
/// (2 new edges); possible: all-new-edge triangles (among the new joiners)
/// and all-original-edge triangles (the old clique's interior).
#[derive(Debug, Clone, Copy, Default)]
pub struct NewJoinClique;

impl Template for NewJoinClique {
    fn name(&self) -> &str {
        "new-join"
    }
    fn is_characteristic(&self, t: &TriangleAttrs) -> bool {
        t.new_vertices() == 1 && t.new_edges() == 2
    }
    fn is_possible(&self, t: &TriangleAttrs) -> bool {
        t.new_edges() == 3 || t.new_edges() == 0
    }
}

/// A template assembled from closures — the "users define patterns on
/// their own" flexibility the paper advertises.
pub struct CustomTemplate<C, P>
where
    C: Fn(&TriangleAttrs) -> bool,
    P: Fn(&TriangleAttrs) -> bool,
{
    name: String,
    characteristic: C,
    possible: P,
}

impl<C, P> CustomTemplate<C, P>
where
    C: Fn(&TriangleAttrs) -> bool,
    P: Fn(&TriangleAttrs) -> bool,
{
    /// Builds a custom template from two predicates.
    pub fn new(name: impl Into<String>, characteristic: C, possible: P) -> Self {
        CustomTemplate {
            name: name.into(),
            characteristic,
            possible,
        }
    }
}

impl<C, P> Template for CustomTemplate<C, P>
where
    C: Fn(&TriangleAttrs) -> bool,
    P: Fn(&TriangleAttrs) -> bool,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn is_characteristic(&self, t: &TriangleAttrs) -> bool {
        (self.characteristic)(t)
    }
    fn is_possible(&self, t: &TriangleAttrs) -> bool {
        (self.possible)(t)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::{EdgeId, VertexId};

    fn attrs(edge_new: [bool; 3], vertex_new: [bool; 3]) -> TriangleAttrs {
        TriangleAttrs {
            vertices: [VertexId(0), VertexId(1), VertexId(2)],
            edges: [EdgeId(0), EdgeId(1), EdgeId(2)],
            vertex_new,
            edge_new,
        }
    }

    #[test]
    fn new_form_characteristic_shape() {
        let t = NewFormClique;
        assert!(t.is_characteristic(&attrs([true; 3], [false; 3])));
        assert!(!t.is_characteristic(&attrs([true, true, false], [false; 3])));
        assert!(!t.is_characteristic(&attrs([true; 3], [true, false, false])));
        assert!(!t.is_possible(&attrs([false; 3], [false; 3])));
    }

    #[test]
    fn bridge_characteristic_and_possible() {
        let t = BridgeClique;
        assert!(t.is_characteristic(&attrs([true, true, false], [false; 3])));
        assert!(!t.is_characteristic(&attrs([true, false, false], [false; 3])));
        assert!(!t.is_characteristic(&attrs([true, true, false], [true, false, false])));
        assert!(t.is_possible(&attrs([false; 3], [false; 3])));
        assert!(!t.is_possible(&attrs([true, false, false], [false; 3])));
    }

    #[test]
    fn new_join_shapes() {
        let t = NewJoinClique;
        // New vertex w joined to original edge: two new edges.
        assert!(t.is_characteristic(&attrs([false, true, true], [false, false, true])));
        assert!(!t.is_characteristic(&attrs([true; 3], [true; 3])));
        assert!(t.is_possible(&attrs([true; 3], [true; 3]))); // new joiners' interior
        assert!(t.is_possible(&attrs([false; 3], [false; 3]))); // old clique's interior
        assert!(!t.is_possible(&attrs([true, true, false], [false; 3])));
    }

    #[test]
    fn custom_template_delegates() {
        let t = CustomTemplate::new(
            "all-new",
            |a: &TriangleAttrs| a.new_edges() == 3,
            |_: &TriangleAttrs| false,
        );
        assert_eq!(t.name(), "all-new");
        assert!(t.is_characteristic(&attrs([true; 3], [true; 3])));
        assert!(!t.is_characteristic(&attrs([true, true, false], [true; 3])));
    }
}
