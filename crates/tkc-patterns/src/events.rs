//! Event detection on evolving graphs: classify how the dense (Triangle
//! K-Core) communities of one snapshot became those of the next.
//!
//! The paper's introduction motivates exactly this use ("identifying the
//! portions of the network that are changing, characterizing the type of
//! change"), citing Asur et al. \[15\] for the event vocabulary. We detect
//! the classic five events over the level-`k` cores of two snapshots:
//! **continue**, **grow**, **shrink**, **merge**, **split**, plus **form**
//! and **dissolve** for cores without a counterpart.

use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::extract::{cores_at_level, Core};
use tkc_graph::{Graph, VertexId};

/// How one community evolved between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Essentially the same vertex set (Jaccard ≥ the stability cutoff).
    Continue {
        /// Index into the old core list.
        before: usize,
        /// Index into the new core list.
        after: usize,
        /// Vertex-set Jaccard similarity.
        jaccard: f64,
    },
    /// One old core, one larger new core.
    Grow {
        /// Index into the old core list.
        before: usize,
        /// Index into the new core list.
        after: usize,
        /// Net vertices gained.
        gained: usize,
    },
    /// One old core, one smaller new core.
    Shrink {
        /// Index into the old core list.
        before: usize,
        /// Index into the new core list.
        after: usize,
        /// Net vertices lost.
        lost: usize,
    },
    /// Two or more old cores fused into one new core.
    Merge {
        /// Indices into the old core list.
        before: Vec<usize>,
        /// Index into the new core list.
        after: usize,
    },
    /// One old core fragmented into two or more new cores.
    Split {
        /// Index into the old core list.
        before: usize,
        /// Indices into the new core list.
        after: Vec<usize>,
    },
    /// A new core with no significant old counterpart.
    Form {
        /// Index into the new core list.
        after: usize,
    },
    /// An old core with no significant new counterpart.
    Dissolve {
        /// Index into the old core list.
        before: usize,
    },
}

/// The cores of both snapshots plus the classified events.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// Level-`k` cores of the old snapshot.
    pub old_cores: Vec<Core>,
    /// Level-`k` cores of the new snapshot.
    pub new_cores: Vec<Core>,
    /// Classified events, one per old/new core participation.
    pub events: Vec<Event>,
}

/// Tuning for the matcher.
#[derive(Debug, Clone, Copy)]
pub struct EventOptions {
    /// Minimum fraction of the *smaller* core's vertices shared for two
    /// cores to count as related (default 0.5).
    pub overlap_threshold: f64,
    /// Jaccard at or above which a 1:1 match is a `Continue` (default 0.8).
    pub stability_threshold: f64,
}

impl Default for EventOptions {
    fn default() -> Self {
        EventOptions {
            overlap_threshold: 0.5,
            stability_threshold: 0.8,
        }
    }
}

fn overlap(a: &[VertexId], b: &[VertexId]) -> usize {
    // Both sorted (Core invariant): merge count.
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Detects community events between two snapshots at core level `k`.
///
/// # Examples
///
/// ```
/// use tkc_graph::{generators, Graph, VertexId};
/// use tkc_patterns::events::{detect_events, Event, EventOptions};
///
/// // A 6-clique gains two members between snapshots.
/// let mut old = Graph::with_capacity(10, 0);
/// let six: Vec<VertexId> = (0..6u32).map(VertexId).collect();
/// generators::plant_clique(&mut old, &six);
/// let mut new = Graph::with_capacity(10, 0);
/// let eight: Vec<VertexId> = (0..8u32).map(VertexId).collect();
/// generators::plant_clique(&mut new, &eight);
///
/// let report = detect_events(&old, &new, 3, &EventOptions::default());
/// assert!(matches!(report.events[0], Event::Grow { gained: 2, .. }));
/// ```
pub fn detect_events(
    old_graph: &Graph,
    new_graph: &Graph,
    k: u32,
    opts: &EventOptions,
) -> EventReport {
    let d_old = triangle_kcore_decomposition(old_graph);
    let d_new = triangle_kcore_decomposition(new_graph);
    let old_cores = cores_at_level(old_graph, &d_old, k);
    let new_cores = cores_at_level(new_graph, &d_new, k);

    // Relatedness matrix by the smaller-side overlap fraction.
    let related = |o: &Core, n: &Core| -> bool {
        let inter = overlap(&o.vertices, &n.vertices);
        let denom = o.vertices.len().min(n.vertices.len()).max(1);
        inter as f64 / denom as f64 >= opts.overlap_threshold
    };
    let mut old_matches: Vec<Vec<usize>> = vec![Vec::new(); old_cores.len()];
    let mut new_matches: Vec<Vec<usize>> = vec![Vec::new(); new_cores.len()];
    for (oi, o) in old_cores.iter().enumerate() {
        for (ni, n) in new_cores.iter().enumerate() {
            if related(o, n) {
                old_matches[oi].push(ni);
                new_matches[ni].push(oi);
            }
        }
    }

    let mut events = Vec::new();
    let mut consumed_old = vec![false; old_cores.len()];
    let mut consumed_new = vec![false; new_cores.len()];

    // Stable 1:1 matches first, best Jaccard first: a core that carried
    // over nearly unchanged must not be swallowed by a spurious merge with
    // a vertex-overlapping sibling core.
    let jaccard_of = |o: &Core, n: &Core| -> f64 {
        let inter = overlap(&o.vertices, &n.vertices);
        let union = o.vertices.len() + n.vertices.len() - inter;
        inter as f64 / union.max(1) as f64
    };
    let mut stable_pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (oi, news) in old_matches.iter().enumerate() {
        for &ni in news {
            let j = jaccard_of(&old_cores[oi], &new_cores[ni]);
            if j >= opts.stability_threshold {
                stable_pairs.push((j, oi, ni));
            }
        }
    }
    stable_pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (j, oi, ni) in stable_pairs {
        if !consumed_old[oi] && !consumed_new[ni] {
            consumed_old[oi] = true;
            consumed_new[ni] = true;
            events.push(Event::Continue {
                before: oi,
                after: ni,
                jaccard: j,
            });
        }
    }

    // Merges: a new core related to several not-yet-consumed old cores.
    for (ni, olds) in new_matches.iter().enumerate() {
        if consumed_new[ni] {
            continue;
        }
        let free: Vec<usize> = olds
            .iter()
            .copied()
            .filter(|&oi| !consumed_old[oi])
            .collect();
        if free.len() >= 2 {
            consumed_new[ni] = true;
            for &oi in &free {
                consumed_old[oi] = true;
            }
            events.push(Event::Merge {
                before: free,
                after: ni,
            });
        }
    }
    // Splits: an old core related to several new cores (not already merged).
    for (oi, news) in old_matches.iter().enumerate() {
        if consumed_old[oi] {
            continue;
        }
        let free: Vec<usize> = news
            .iter()
            .copied()
            .filter(|&ni| !consumed_new[ni])
            .collect();
        if free.len() >= 2 {
            for &ni in &free {
                consumed_new[ni] = true;
            }
            consumed_old[oi] = true;
            events.push(Event::Split {
                before: oi,
                after: free,
            });
        }
    }
    // One-to-one: continue / grow / shrink.
    for (oi, news) in old_matches.iter().enumerate() {
        if consumed_old[oi] {
            continue;
        }
        if let Some(&ni) = news.iter().find(|&&ni| !consumed_new[ni]) {
            consumed_old[oi] = true;
            consumed_new[ni] = true;
            let o = &old_cores[oi];
            let n = &new_cores[ni];
            let inter = overlap(&o.vertices, &n.vertices);
            let union = o.vertices.len() + n.vertices.len() - inter;
            let jaccard = inter as f64 / union.max(1) as f64;
            if jaccard >= opts.stability_threshold {
                events.push(Event::Continue {
                    before: oi,
                    after: ni,
                    jaccard,
                });
            } else if n.vertices.len() >= o.vertices.len() {
                events.push(Event::Grow {
                    before: oi,
                    after: ni,
                    gained: n.vertices.len() - o.vertices.len(),
                });
            } else {
                events.push(Event::Shrink {
                    before: oi,
                    after: ni,
                    lost: o.vertices.len() - n.vertices.len(),
                });
            }
        }
    }
    // Leftovers.
    for (oi, done) in consumed_old.iter().enumerate() {
        if !done {
            events.push(Event::Dissolve { before: oi });
        }
    }
    for (ni, done) in consumed_new.iter().enumerate() {
        if !done {
            events.push(Event::Form { after: ni });
        }
    }

    EventReport {
        old_cores,
        new_cores,
        events,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators::{self, plant_clique};

    fn clique_on(g: &mut Graph, ids: std::ops::Range<u32>) -> Vec<VertexId> {
        let members: Vec<VertexId> = ids.map(VertexId).collect();
        plant_clique(g, &members);
        members
    }

    #[test]
    fn continue_event_for_stable_core() {
        let mut old = Graph::with_capacity(20, 0);
        clique_on(&mut old, 0..6);
        let new = old.clone();
        let rep = detect_events(&old, &new, 2, &EventOptions::default());
        assert_eq!(rep.events.len(), 1);
        assert!(matches!(rep.events[0], Event::Continue { jaccard, .. } if jaccard == 1.0));
    }

    #[test]
    fn grow_and_shrink_events() {
        let mut old = Graph::with_capacity(20, 0);
        clique_on(&mut old, 0..6);
        let mut new = Graph::with_capacity(20, 0);
        clique_on(&mut new, 0..9); // grew by 3
        let rep = detect_events(&old, &new, 2, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Grow { gained: 3, .. })));

        let rep = detect_events(&new, &old, 2, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Shrink { lost: 3, .. })));
    }

    #[test]
    fn merge_event_when_cliques_fuse() {
        let mut old = Graph::with_capacity(20, 0);
        clique_on(&mut old, 0..5);
        clique_on(&mut old, 10..15);
        let mut new = Graph::with_capacity(20, 0);
        // Everything plus the cross edges: one big core.
        let all: Vec<VertexId> = (0..5).chain(10..15).map(VertexId).collect();
        plant_clique(&mut new, &all);
        let rep = detect_events(&old, &new, 2, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Merge { before, .. } if before.len() == 2)));
    }

    #[test]
    fn split_event_when_clique_fragments() {
        let mut old = Graph::with_capacity(20, 0);
        let all: Vec<VertexId> = (0..5).chain(10..15).map(VertexId).collect();
        plant_clique(&mut old, &all);
        let mut new = Graph::with_capacity(20, 0);
        clique_on(&mut new, 0..5);
        clique_on(&mut new, 10..15);
        let rep = detect_events(&old, &new, 2, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Split { after, .. } if after.len() == 2)));
    }

    #[test]
    fn form_and_dissolve_events() {
        let mut old = Graph::with_capacity(30, 0);
        clique_on(&mut old, 0..5);
        let mut new = Graph::with_capacity(30, 0);
        clique_on(&mut new, 20..26);
        let rep = detect_events(&old, &new, 2, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Dissolve { .. })));
        assert!(rep.events.iter().any(|e| matches!(e, Event::Form { .. })));
        assert_eq!(rep.events.len(), 2);
    }

    #[test]
    fn noisy_background_does_not_confuse_events() {
        let mut old = generators::gnp(60, 0.02, 5);
        clique_on(&mut old, 0..7);
        let mut new = generators::gnp(60, 0.02, 6);
        clique_on(&mut new, 0..8); // grew by one
        let rep = detect_events(&old, &new, 3, &EventOptions::default());
        assert!(rep
            .events
            .iter()
            .any(|e| matches!(e, Event::Grow { gained: 1, .. } | Event::Continue { .. })));
    }

    #[test]
    fn overlap_counts_sorted_intersection() {
        let a: Vec<VertexId> = [1u32, 3, 5, 7].iter().map(|&x| VertexId(x)).collect();
        let b: Vec<VertexId> = [2u32, 3, 4, 5].iter().map(|&x| VertexId(x)).collect();
        assert_eq!(overlap(&a, &b), 2);
        assert_eq!(overlap(&a, &[]), 0);
    }
}
