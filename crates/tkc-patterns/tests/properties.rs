#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Property tests for Algorithm 4 and event detection over random
//! evolving graphs.

use proptest::prelude::*;
use tkc_graph::triangles::for_each_triangle;
use tkc_graph::{Graph, VertexId};
use tkc_patterns::events::{detect_events, Event, EventOptions};
use tkc_patterns::{
    detect_template, AttributedGraph, BridgeClique, NewFormClique, NewJoinClique, Template,
    TriangleAttrs,
};

fn random_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut g = Graph::with_capacity(n as usize, pairs.len());
        for (a, b) in pairs {
            if a != b {
                let _ = g.try_add_edge(VertexId(a), VertexId(b));
            }
        }
        g
    })
}

/// Old + new snapshot: new = old plus extra random edges.
fn snapshot_pair(n: u32) -> impl Strategy<Value = (Graph, Graph)> {
    (
        random_graph(n, 40),
        proptest::collection::vec((0..n, 0..n), 0..25),
    )
        .prop_map(move |(old, extra)| {
            let mut new = old.clone();
            for (a, b) in extra {
                if a != b {
                    let _ = new.try_add_edge(VertexId(a), VertexId(b));
                }
            }
            (old, new)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn special_edges_come_only_from_matching_triangles((old, new) in snapshot_pair(12)) {
        let ag = AttributedGraph::from_snapshots(&old, &new);
        for template in [
            &NewFormClique as &dyn Template,
            &BridgeClique,
            &NewJoinClique,
        ] {
            let res = detect_template(&ag, template);
            // Every special edge belongs to a characteristic triangle or a
            // possible triangle over special vertices.
            let special: std::collections::HashSet<_> =
                res.special_edges.iter().copied().collect();
            let specialv: std::collections::HashSet<_> =
                res.special_vertices.iter().copied().collect();
            let mut justified: std::collections::HashSet<tkc_graph::EdgeId> =
                std::collections::HashSet::new();
            for_each_triangle(ag.graph(), |t| {
                let attrs = TriangleAttrs::of(&ag, &t);
                let characteristic = template.is_characteristic(&attrs);
                let possible = t.vertices.iter().all(|v| specialv.contains(v))
                    && template.is_possible(&attrs);
                if characteristic || possible {
                    for e in t.edges {
                        justified.insert(e);
                    }
                }
            });
            for &e in &special {
                prop_assert!(justified.contains(&e), "{}: unjustified special edge", template.name());
            }
            // And the host co-clique values are κ_spe + 2 on special edges,
            // 0 elsewhere.
            for e in ag.graph().edge_ids() {
                if special.contains(&e) {
                    prop_assert!(res.co_clique[e.index()] >= 2);
                } else {
                    prop_assert_eq!(res.co_clique[e.index()], 0);
                }
            }
        }
    }

    #[test]
    fn pattern_kappa_never_exceeds_host_kappa((old, new) in snapshot_pair(12)) {
        // G_spe is a subgraph of the host, so κ within it is bounded by the
        // host's κ (monotonicity of the motif under subgraphs).
        use tkc_core::decompose::triangle_kcore_decomposition;
        let ag = AttributedGraph::from_snapshots(&old, &new);
        let host = triangle_kcore_decomposition(ag.graph());
        let res = detect_template(&ag, &BridgeClique);
        for &e in &res.special_edges {
            prop_assert!(res.co_clique[e.index()] <= host.kappa(e) + 2);
        }
    }

    #[test]
    fn events_partition_the_cores((old, new) in snapshot_pair(14)) {
        let rep = detect_events(&old, &new, 1, &EventOptions::default());
        // Every old core appears in exactly one event; same for new cores.
        let mut old_seen = vec![0usize; rep.old_cores.len()];
        let mut new_seen = vec![0usize; rep.new_cores.len()];
        for e in &rep.events {
            match e {
                Event::Continue { before, after, .. }
                | Event::Grow { before, after, .. }
                | Event::Shrink { before, after, .. } => {
                    old_seen[*before] += 1;
                    new_seen[*after] += 1;
                }
                Event::Merge { before, after } => {
                    for &b in before {
                        old_seen[b] += 1;
                    }
                    new_seen[*after] += 1;
                }
                Event::Split { before, after } => {
                    old_seen[*before] += 1;
                    for &a in after {
                        new_seen[a] += 1;
                    }
                }
                Event::Form { after } => new_seen[*after] += 1,
                Event::Dissolve { before } => old_seen[*before] += 1,
            }
        }
        prop_assert!(old_seen.iter().all(|&c| c == 1), "old cores not partitioned: {old_seen:?}");
        prop_assert!(new_seen.iter().all(|&c| c == 1), "new cores not partitioned: {new_seen:?}");
    }

    #[test]
    fn identical_snapshots_yield_only_continues(g in random_graph(14, 50)) {
        let rep = detect_events(&g, &g, 1, &EventOptions::default());
        for e in &rep.events {
            prop_assert!(
                matches!(e, Event::Continue { jaccard, .. } if *jaccard == 1.0),
                "unexpected event on identical snapshots: {e:?}"
            );
        }
        prop_assert_eq!(rep.events.len(), rep.old_cores.len());
    }
}
