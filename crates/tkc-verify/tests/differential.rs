#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! The CI differential suite: hundreds of seeded op-streams over generator
//! graphs, each checked against a from-scratch recompute after every
//! operation (and a rotating subset against the naive definitional oracle
//! and the κ-certificate checker as well).

use tkc_verify::differential::{default_suite, run_stream, run_suite, GraphKind, StreamConfig};

#[test]
fn differential_suite_of_216_seeded_streams_passes() {
    let configs = default_suite(216);
    assert!(configs.len() >= 200, "suite must cover >= 200 cases");
    let stats = run_suite(&configs).unwrap_or_else(|dump| panic!("{dump}"));
    assert_eq!(stats.ops, 216 * 30);
    assert!(stats.inserted > 1000, "streams should apply real work");
    assert!(stats.removed > 500);
}

#[test]
fn dense_churn_with_deep_oracles() {
    // Longer streams on denser graphs with the full oracle stack: the
    // quadratic naive pruning and the independent certificate checker must
    // agree with the incremental maintainer at every step.
    for seed in 0..6 {
        let mut config = StreamConfig::quick(GraphKind::Gnp { n: 9, p: 0.4 }, 1000 + seed, 60);
        config.deep_oracles = true;
        run_stream(&config).unwrap_or_else(|dump| panic!("{dump}"));
    }
}

#[test]
fn batched_checkpoints_cover_long_streams() {
    // Checking every 8 ops exercises checkpoint batching (divergence can
    // surface several ops after its cause — the dump still shrinks).
    for seed in 0..8 {
        let mut config = StreamConfig::quick(
            GraphKind::HolmeKim {
                n: 20,
                m: 3,
                p: 0.6,
            },
            7000 + seed,
            120,
        );
        config.check_every = 8;
        run_stream(&config).unwrap_or_else(|dump| panic!("{dump}"));
    }
}
