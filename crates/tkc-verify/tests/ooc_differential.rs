#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

//! Out-of-core differential: for every stream in the 216-case default
//! suite, the churned final graph (dead edge slots and all) is packed
//! into a `TKCSTOR` file and peeled by the budgeted stratum peel — the κ
//! vector must be bit-identical to the in-memory bucket peel's.

use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_graph::VertexId;
use tkc_verify::differential::{check_ooc_decompose, default_suite, generate_ops, StreamOp};

#[test]
fn full_suite_ooc_peel_matches_in_memory() {
    let suite = default_suite(216);
    assert_eq!(suite.len(), 216, "suite size drifted; update the test");
    for (i, config) in suite.iter().enumerate() {
        let g = config.kind.build(config.seed);
        let mut d = DynamicTriangleKCore::new(g);
        for op in generate_ops(config, config.ops) {
            match op {
                StreamOp::Insert(u, v) => {
                    let (u, v) = (VertexId(u), VertexId(v));
                    if u != v && !d.graph().has_edge(u, v) {
                        d.insert_edge(u, v).ok();
                    }
                }
                StreamOp::Remove(u, v) => {
                    d.remove_edge_between(VertexId(u), VertexId(v)).ok();
                }
            }
        }
        if let Err(m) = check_ooc_decompose(d.graph()) {
            panic!("case {i} ({:?} seed {}): {m:?}", config.kind, config.seed);
        }
    }
}
