//! Differential oracle harness: drive seeded random edge-operation streams
//! through [`DynamicTriangleKCore`] and assert, after every batch, that the
//! incrementally maintained κ equals both a fresh from-scratch
//! [`triangle_kcore_decomposition`] and (optionally) the naive
//! definitional oracle [`naive_kappa`] — the "incremental ≡ recompute"
//! contract the truss-maintenance literature treats as the definition of
//! correctness.
//!
//! On a mismatch the harness does not just fail: it greedily **shrinks**
//! the reproduction — dropping initial edges and operations while the
//! failure persists — and returns a [`FailureDump`] whose `Display` output
//! is a ready-to-paste regression test.

use std::fmt;

use tkc_core::decompose::triangle_kcore_decomposition;
use tkc_core::dynamic::DynamicTriangleKCore;
use tkc_core::reference::naive_kappa;
use tkc_graph::{generators, Graph, VertexId};

use crate::certificate::KappaCertificate;

/// One operation of a differential stream, in raw vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert edge `{u, v}` (skipped when present or `u == v`).
    Insert(u32, u32),
    /// Remove edge `{u, v}` (skipped when absent).
    Remove(u32, u32),
}

/// Initial graph shape for a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphKind {
    /// Empty graph on `n` vertices.
    Empty {
        /// Vertex count.
        n: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Vertex count.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Scale-free, high-clustering Holme–Kim graph.
    HolmeKim {
        /// Vertex count.
        n: usize,
        /// Attachments per newcomer.
        m: usize,
        /// Triad-formation probability.
        p: f64,
    },
    /// Dense planted communities with sparse cross links.
    PlantedPartition {
        /// Number of communities.
        groups: usize,
        /// Vertices per community.
        size: usize,
    },
    /// Ring of cliques.
    Caveman {
        /// Number of cliques.
        groups: usize,
        /// Vertices per clique.
        size: usize,
    },
}

impl GraphKind {
    /// Materializes the initial graph for a stream. Public so downstream
    /// harnesses (the engine's WAL kill-and-replay suite) can drive the
    /// exact same corpus through their own apply paths.
    pub fn build(self, seed: u64) -> Graph {
        match self {
            GraphKind::Empty { n } => {
                let mut g = Graph::new();
                g.add_vertices(n);
                g
            }
            GraphKind::Gnp { n, p } => generators::gnp(n, p, seed),
            GraphKind::HolmeKim { n, m, p } => generators::holme_kim(n, m, p, seed),
            GraphKind::PlantedPartition { groups, size } => {
                generators::planted_partition(groups, size, 0.7, 0.08, seed)
            }
            GraphKind::Caveman { groups, size } => generators::connected_caveman(groups, size),
        }
    }
}

/// Configuration for one differential op-stream case.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Initial graph shape.
    pub kind: GraphKind,
    /// Seed for both graph construction and the op stream.
    pub seed: u64,
    /// Number of operations to generate.
    pub ops: usize,
    /// Check the oracles after every `check_every` operations (and always
    /// at the end of the stream). `1` checks after every single op.
    pub check_every: usize,
    /// Also compare against the quadratic `naive_kappa` oracle and the
    /// κ-certificate checker at each checkpoint (slower; exact same
    /// verdicts — defense in depth against a bug shared by the two fast
    /// paths).
    pub deep_oracles: bool,
}

impl StreamConfig {
    /// A small-graph config with per-op checking, suitable for suites with
    /// hundreds of cases.
    pub fn quick(kind: GraphKind, seed: u64, ops: usize) -> Self {
        StreamConfig {
            kind,
            seed,
            ops,
            check_every: 1,
            deep_oracles: false,
        }
    }
}

/// Counters from a passing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Operations applied (including skipped no-ops).
    pub ops: usize,
    /// Oracle checkpoints passed.
    pub checks: usize,
    /// Edge insertions actually applied.
    pub inserted: usize,
    /// Edge removals actually applied.
    pub removed: usize,
}

/// Where a differential run diverged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Endpoints of the first disagreeing edge.
    pub edge: (u32, u32),
    /// κ maintained incrementally.
    pub dynamic: u32,
    /// κ from the from-scratch recompute.
    pub fresh: u32,
    /// Which oracle disagreed (for deep oracles: `"naive"`/`"certificate"`).
    pub oracle: &'static str,
}

/// A shrunk, reproducible counterexample. `Display` prints a
/// ready-to-paste regression test body.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDump {
    /// Config that produced the failure.
    pub config: StreamConfig,
    /// Vertex count of the initial graph.
    pub vertices: usize,
    /// Shrunk initial edge list.
    pub initial_edges: Vec<(u32, u32)>,
    /// Shrunk operation stream.
    pub ops: Vec<StreamOp>,
    /// The disagreement at the final checkpoint.
    pub mismatch: Mismatch,
}

impl fmt::Display for FailureDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential failure (seed {}, oracle `{}`): edge ({}, {}) dynamic={} expected={}",
            self.config.seed,
            self.mismatch.oracle,
            self.mismatch.edge.0,
            self.mismatch.edge.1,
            self.mismatch.dynamic,
            self.mismatch.fresh,
        )?;
        writeln!(f, "shrunk reproduction:")?;
        writeln!(
            f,
            "    let g = Graph::from_edges({}, {:?});",
            self.vertices, self.initial_edges
        )?;
        writeln!(f, "    let mut d = DynamicTriangleKCore::new(g);")?;
        for op in &self.ops {
            match *op {
                StreamOp::Insert(u, v) => writeln!(
                    f,
                    "    let _ = d.insert_edge(VertexId({u}), VertexId({v}));"
                )?,
                StreamOp::Remove(u, v) => writeln!(
                    f,
                    "    let _ = d.remove_edge_between(VertexId({u}), VertexId({v}));"
                )?,
            }
        }
        writeln!(
            f,
            "    // assert κ(({}, {})) == {}",
            self.mismatch.edge.0, self.mismatch.edge.1, self.mismatch.fresh
        )
    }
}

/// A deterministic SplitMix64 op generator — self-contained so dumps can be
/// replayed without any external RNG dependency.
struct OpGen {
    state: u64,
}

impl OpGen {
    fn new(seed: u64) -> Self {
        OpGen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % u64::from(n.max(1))) as u32
    }
}

/// Generates the op stream for a config (pure function of the config).
pub fn generate_ops(config: &StreamConfig, n: usize) -> Vec<StreamOp> {
    let n32 = n.max(2) as u32;
    let mut gen = OpGen::new(config.seed);
    (0..config.ops)
        .map(|_| {
            let u = gen.below(n32);
            let v = gen.below(n32);
            if gen.next_u64() & 1 == 0 {
                StreamOp::Insert(u, v)
            } else {
                StreamOp::Remove(u, v)
            }
        })
        .collect()
}

fn apply_op(d: &mut DynamicTriangleKCore, op: StreamOp, stats: &mut StreamStats) {
    match op {
        StreamOp::Insert(u, v) => {
            let (u, v) = (VertexId(u), VertexId(v));
            if u != v && !d.graph().has_edge(u, v) && d.insert_edge(u, v).is_ok() {
                stats.inserted += 1;
            }
        }
        StreamOp::Remove(u, v) => {
            if d.remove_edge_between(VertexId(u), VertexId(v)).is_ok() {
                stats.removed += 1;
            }
        }
    }
}

/// Cross-checks the triangle support kernels on `g`: the sequential
/// mutable-adjacency path (`triangles::edge_supports`) against the oriented
/// CSR snapshot kernel, sequential and parallel. The contract is
/// **bit-identical vectors** — supports are exact integer counts, so any
/// divergence is a kernel bug (orientation, dead-slot handling, chunk
/// boundaries), not accumulation noise.
pub fn check_support_kernels(g: &Graph) -> Result<(), Mismatch> {
    let hash = tkc_graph::triangles::edge_supports(g);
    let snapshot = std::sync::Arc::new(tkc_graph::csr::CsrGraph::freeze(g));
    for (candidate, oracle) in [
        (snapshot.edge_supports(), "csr-support"),
        (snapshot.edge_supports_parallel(2), "csr-support-parallel"),
    ] {
        if let Some(i) = (0..hash.len()).find(|&i| candidate[i] != hash[i]) {
            let edge = g
                .endpoints_checked(tkc_graph::EdgeId::from(i))
                .map(|(u, v)| (u.0, v.0))
                .unwrap_or((u32::MAX, u32::MAX));
            return Err(Mismatch {
                edge,
                dynamic: candidate[i],
                fresh: hash[i],
                oracle,
            });
        }
    }
    Ok(())
}

/// Cross-checks the level-synchronous parallel peel against the
/// sequential bucket peel: for every thread count and both triangle
/// lookup strategies the parallel path must reproduce the sequential κ
/// vector and max κ bit-for-bit, and its processing order must be
/// **identical across every (lookup, threads) configuration** —
/// determinism is part of the parallel peel's contract. (The batch order
/// legitimately differs from the one-at-a-time sequential pop order
/// within a level, so order is compared parallel-vs-parallel.)
pub fn check_parallel_peel(g: &Graph) -> Result<(), Mismatch> {
    use tkc_core::peel_parallel::{triangle_kcore_decomposition_parallel_lookup, TriangleLookup};
    let seq = triangle_kcore_decomposition(g);
    let mut baseline: Option<tkc_core::decompose::Decomposition> = None;
    for lookup in [TriangleLookup::Stored, TriangleLookup::Merge] {
        for threads in [1usize, 2, 4, 8] {
            let par = triangle_kcore_decomposition_parallel_lookup(g, threads, lookup);
            let oracle = match lookup {
                TriangleLookup::Stored => "parallel-peel-stored",
                _ => "parallel-peel-merge",
            };
            if let Some(e) = g.edge_ids().find(|&e| par.kappa(e) != seq.kappa(e)) {
                let (u, v) = g.endpoints(e);
                return Err(Mismatch {
                    edge: (u.0, v.0),
                    dynamic: par.kappa(e),
                    fresh: seq.kappa(e),
                    oracle,
                });
            }
            let order_diverged = match &baseline {
                Some(first) => par.order() != first.order() || par.max_kappa() != first.max_kappa(),
                None => {
                    let diverged =
                        par.max_kappa() != seq.max_kappa() || par.order().len() != g.num_edges();
                    baseline = Some(par.clone());
                    diverged
                }
            };
            if order_diverged {
                return Err(Mismatch {
                    edge: (u32::MAX, u32::MAX),
                    dynamic: par.max_kappa(),
                    fresh: seq.max_kappa(),
                    oracle,
                });
            }
        }
    }
    Ok(())
}

/// Cross-checks the out-of-core stratum peel against the in-memory
/// bucket peel: packs `g` into a throwaway `TKCSTOR` file, runs
/// [`tkc_core::ooc::decompose_ooc`] under a deliberately tight budget,
/// and requires the κ vector to be **bit-identical** per raw edge slot
/// (dead slots included, as 0). Harness I/O failures panic — they are
/// environment problems, not κ divergences.
pub fn check_ooc_decompose(g: &Graph) -> Result<(), Mismatch> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);

    let seq = triangle_kcore_decomposition(g);
    let supports = tkc_graph::triangles::edge_supports(g);
    let parts = tkc_store::pack_graph(g, &supports, None).expect("pack for ooc differential");
    let dir = std::env::temp_dir().join("tkc_verify_ooc");
    std::fs::create_dir_all(&dir).expect("ooc differential temp dir");
    let path = dir.join(format!(
        "diff_{}_{}.tkcstor",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    parts
        .write_path(&path)
        .expect("write ooc differential store");
    let config = tkc_core::ooc::OocConfig::with_budget(256 * 1024);
    let result = tkc_core::ooc::decompose_ooc(&path, &config);
    std::fs::remove_file(&path).ok();
    let ooc = result.expect("ooc peel failed on differential graph");

    for e in g.edge_ids() {
        let got = ooc.kappa.get(e.index()).copied().unwrap_or(u32::MAX);
        if got != seq.kappa(e) {
            let (u, v) = g.endpoints(e);
            return Err(Mismatch {
                edge: (u.0, v.0),
                dynamic: got,
                fresh: seq.kappa(e),
                oracle: "ooc-peel",
            });
        }
    }
    if ooc.max_kappa != seq.max_kappa() {
        return Err(Mismatch {
            edge: (u32::MAX, u32::MAX),
            dynamic: ooc.max_kappa,
            fresh: seq.max_kappa(),
            oracle: "ooc-peel",
        });
    }
    Ok(())
}

/// Compares a claimed κ vector (raw-edge-id indexed) against a fresh
/// from-scratch recompute of `g` — the "incremental ≡ recompute" oracle as
/// a standalone check, reusable by any layer that maintains or restores κ
/// (the dynamic maintainer here, WAL recovery in the engine).
pub fn kappa_matches_recompute(g: &Graph, kappa: &[u32]) -> Result<(), Mismatch> {
    let fresh = triangle_kcore_decomposition(g);
    for e in g.edge_ids() {
        let claimed = kappa.get(e.index()).copied().unwrap_or(0);
        if claimed != fresh.kappa(e) {
            let (u, v) = g.endpoints(e);
            return Err(Mismatch {
                edge: (u.0, v.0),
                dynamic: claimed,
                fresh: fresh.kappa(e),
                oracle: "recompute",
            });
        }
    }
    Ok(())
}

/// A 64-bit order-independent-input digest of a decomposition: FNV-1a
/// over every `(u, v, κ)` triple in sorted-endpoint order, prefixed with
/// the vertex/edge counts. Two replicas with identical graphs and κ
/// vectors produce identical stamps regardless of edge-id assignment
/// history — the replication divergence probe compares exactly this.
pub fn kappa_stamp(g: &Graph, kappa: &[u32]) -> u64 {
    let mut triples: Vec<(u32, u32, u32)> = g
        .edge_ids()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            let (lo, hi) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
            (lo, hi, kappa.get(e.index()).copied().unwrap_or(0))
        })
        .collect();
    triples.sort_unstable();
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(g.num_vertices() as u32);
    eat(triples.len() as u32);
    for (u, v, k) in triples {
        eat(u);
        eat(v);
        eat(k);
    }
    h
}

/// Checks the maintained κ against the oracles; `Err` on first divergence.
fn check_oracles(d: &DynamicTriangleKCore, deep: bool) -> Result<(), Mismatch> {
    check_support_kernels(d.graph())?;
    check_parallel_peel(d.graph())?;
    kappa_matches_recompute(d.graph(), d.kappa_slice())?;
    if deep {
        let naive = naive_kappa(d.graph());
        for e in d.graph().edge_ids() {
            if d.kappa(e) != naive[e.index()] {
                let (u, v) = d.graph().endpoints(e);
                return Err(Mismatch {
                    edge: (u.0, v.0),
                    dynamic: d.kappa(e),
                    fresh: naive[e.index()],
                    oracle: "naive",
                });
            }
        }
        if let Err(report) = KappaCertificate::new(d.graph(), d.kappa_slice()).check() {
            let (edge, dynamic, fresh) = match report.violations.first() {
                Some(crate::certificate::Violation::InsufficientSupport {
                    endpoints: (u, v),
                    kappa,
                    support,
                    ..
                }) => ((u.0, v.0), *kappa, *support),
                Some(crate::certificate::Violation::NotMaximal {
                    endpoints: (u, v),
                    claimed,
                    actual,
                    ..
                }) => ((u.0, v.0), *claimed, *actual),
                _ => ((u32::MAX, u32::MAX), 0, 0),
            };
            return Err(Mismatch {
                edge,
                dynamic,
                fresh,
                oracle: "certificate",
            });
        }
    }
    Ok(())
}

/// Replays an explicit reproduction; `Err` with the first divergence.
/// Checks after every op (shrinking wants the tightest signal).
fn replay(
    vertices: usize,
    initial_edges: &[(u32, u32)],
    ops: &[StreamOp],
    deep: bool,
) -> Result<(), Mismatch> {
    let g = Graph::from_edges(vertices, initial_edges.iter().copied());
    let mut d = DynamicTriangleKCore::new(g);
    let mut stats = StreamStats::default();
    check_oracles(&d, deep)?;
    for &op in ops {
        apply_op(&mut d, op, &mut stats);
        check_oracles(&d, deep)?;
    }
    Ok(())
}

/// Runs one differential stream. `Ok` with counters when every checkpoint
/// agrees; `Err` with a shrunk reproduction otherwise.
pub fn run_stream(config: &StreamConfig) -> Result<StreamStats, Box<FailureDump>> {
    let g = config.kind.build(config.seed);
    let vertices = g.num_vertices();
    let initial_edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
    let ops = generate_ops(config, vertices);
    let every = config.check_every.max(1);

    let mut d = DynamicTriangleKCore::new(g);
    let mut stats = StreamStats::default();
    let mut failure: Option<(usize, Mismatch)> = None;
    for (i, &op) in ops.iter().enumerate() {
        apply_op(&mut d, op, &mut stats);
        stats.ops += 1;
        if (i + 1) % every == 0 || i + 1 == ops.len() {
            match check_oracles(&d, config.deep_oracles) {
                Ok(()) => stats.checks += 1,
                Err(m) => {
                    failure = Some((i, m));
                    break;
                }
            }
        }
    }
    let Some((fail_at, mismatch)) = failure else {
        return Ok(stats);
    };
    let ops_prefix = ops[..=fail_at].to_vec();
    let (initial_edges, ops_shrunk) =
        shrink(vertices, initial_edges, ops_prefix, config.deep_oracles);
    Err(Box::new(FailureDump {
        config: config.clone(),
        vertices,
        initial_edges,
        ops: ops_shrunk,
        mismatch,
    }))
}

/// Greedy delta-debugging shrink: repeatedly try dropping each op and each
/// initial edge, keeping any removal under which the replay still fails.
/// Bounded passes keep worst-case work predictable.
fn shrink(
    vertices: usize,
    mut initial_edges: Vec<(u32, u32)>,
    mut ops: Vec<StreamOp>,
    deep: bool,
) -> (Vec<(u32, u32)>, Vec<StreamOp>) {
    debug_assert!(replay(vertices, &initial_edges, &ops, deep).is_err());
    for _pass in 0..4 {
        let mut changed = false;
        // Drop ops from the back so indices stay valid during retain.
        let mut i = ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = ops.clone();
            candidate.remove(i);
            if replay(vertices, &initial_edges, &candidate, deep).is_err() {
                ops = candidate;
                changed = true;
            }
        }
        let mut j = initial_edges.len();
        while j > 0 {
            j -= 1;
            let mut candidate = initial_edges.clone();
            candidate.remove(j);
            if replay(vertices, &candidate, &ops, deep).is_err() {
                initial_edges = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (initial_edges, ops)
}

/// The default CI suite: a mix of generator graphs and stream shapes,
/// `cases` streams total. Small graphs with per-op checks, so hundreds of
/// cases run in seconds.
pub fn default_suite(cases: usize) -> Vec<StreamConfig> {
    let kinds = [
        GraphKind::Empty { n: 10 },
        GraphKind::Gnp { n: 12, p: 0.18 },
        GraphKind::Gnp { n: 9, p: 0.35 },
        GraphKind::HolmeKim {
            n: 14,
            m: 2,
            p: 0.7,
        },
        GraphKind::PlantedPartition { groups: 2, size: 6 },
        GraphKind::Caveman { groups: 3, size: 4 },
    ];
    (0..cases)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            let mut config = StreamConfig::quick(kind, 0xD1F7 + i as u64, 30);
            // Every sixth case runs the deep oracles too.
            config.deep_oracles = i % 6 == 0;
            config
        })
        .collect()
}

/// Runs a whole suite, returning aggregate stats or the first failure.
pub fn run_suite(configs: &[StreamConfig]) -> Result<StreamStats, Box<FailureDump>> {
    let mut total = StreamStats::default();
    for config in configs {
        let stats = run_stream(config)?;
        total.ops += stats.ops;
        total.checks += stats.checks;
        total.inserted += stats.inserted;
        total.removed += stats.removed;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn kappa_stamp_is_insertion_order_independent() {
        let mut a = Graph::new();
        let mut b = Graph::new();
        for g in [&mut a, &mut b] {
            g.add_vertices(4);
        }
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)];
        for &(u, v) in &edges {
            a.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        for &(u, v) in edges.iter().rev() {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        let da = triangle_kcore_decomposition(&a);
        let db = triangle_kcore_decomposition(&b);
        assert_eq!(
            kappa_stamp(&a, da.kappa_slice()),
            kappa_stamp(&b, db.kappa_slice())
        );
        // Perturbing one κ value must move the stamp.
        let mut bad = da.kappa_slice().to_vec();
        bad[0] += 1;
        assert_ne!(kappa_stamp(&a, da.kappa_slice()), kappa_stamp(&a, &bad));
    }

    #[test]
    fn single_stream_passes_on_every_kind() {
        for kind in [
            GraphKind::Empty { n: 8 },
            GraphKind::Gnp { n: 10, p: 0.25 },
            GraphKind::HolmeKim {
                n: 12,
                m: 2,
                p: 0.5,
            },
            GraphKind::PlantedPartition { groups: 2, size: 5 },
            GraphKind::Caveman { groups: 2, size: 4 },
        ] {
            let mut config = StreamConfig::quick(kind, 7, 25);
            config.deep_oracles = true;
            let stats = run_stream(&config).unwrap_or_else(|dump| panic!("{dump}"));
            assert_eq!(stats.ops, 25);
            assert!(stats.checks > 0);
        }
    }

    #[test]
    fn support_kernels_agree_across_the_corpus() {
        // The acceptance contract of the CSR kernel: bit-identical support
        // vectors on every differential-suite graph shape, live and after
        // churn (dead slots included).
        for kind in [
            GraphKind::Empty { n: 8 },
            GraphKind::Gnp { n: 12, p: 0.3 },
            GraphKind::HolmeKim {
                n: 14,
                m: 2,
                p: 0.7,
            },
            GraphKind::PlantedPartition { groups: 2, size: 6 },
            GraphKind::Caveman { groups: 3, size: 4 },
        ] {
            for seed in 0..4 {
                let mut g = kind.build(seed);
                check_support_kernels(&g).unwrap_or_else(|m| panic!("{m:?}"));
                let victims: Vec<_> = g.edge_ids().step_by(3).collect();
                for e in victims {
                    g.remove_edge(e).unwrap();
                }
                check_support_kernels(&g).unwrap_or_else(|m| panic!("{m:?}"));
            }
        }
    }

    #[test]
    fn op_generation_is_deterministic() {
        let config = StreamConfig::quick(GraphKind::Empty { n: 10 }, 99, 40);
        assert_eq!(generate_ops(&config, 10), generate_ops(&config, 10));
    }

    #[test]
    fn shrinker_produces_minimal_failing_reproduction() {
        // Sabotage: replay a stream against a deliberately broken "dynamic"
        // result by corrupting κ — the shrinker contract is exercised
        // through the public API in `tests/differential.rs`; here we check
        // the internal replay helper agrees with itself.
        let config = StreamConfig::quick(GraphKind::Gnp { n: 10, p: 0.3 }, 3, 20);
        let g = config.kind.build(config.seed);
        let edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let ops = generate_ops(&config, g.num_vertices());
        assert!(replay(g.num_vertices(), &edges, &ops, false).is_ok());
    }
}
