//! Independent verification of a claimed κ vector against Definitions 3/4
//! of the paper.
//!
//! The checker deliberately shares **no code** with the optimized pipeline
//! it audits: triangle membership is recomputed here from the raw edge list
//! via sorted-adjacency intersection (not `tkc-graph`'s enumeration
//! callbacks, and not `tkc-core`'s supports), and maximality is shown by an
//! independent peeling replay built on that counting. A κ vector passes iff
//!
//! 1. **Feasibility (Definition 3):** for every edge `e` with `κ(e) = k`,
//!    the subgraph of edges with `κ ≥ k` contains `e` in at least `k`
//!    triangles (κ-cores are nested, so per-edge checking at the edge's own
//!    level covers every level);
//! 2. **Maximality (Definition 4):** the peeling replay — iteratively
//!    deleting edges whose in-subgraph triangle count is below the target
//!    level — reproduces exactly the claimed κ, so no edge could survive to
//!    a deeper core than claimed;
//! 3. **Shape:** the vector covers the graph's edge-id space and dead edge
//!    slots read 0.
//!
//! Cost is `O(Σ_e min(deg u, deg v))` per pass — fine for verification of
//! anything the test and CI tiers run, and usable as a spot-check on large
//! graphs.

use std::fmt;

use tkc_graph::{EdgeId, Graph, VertexId};

/// One pinpointed discrepancy between a claimed κ vector and the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The κ vector does not cover the graph's edge-id space.
    LengthMismatch {
        /// Slots required (`Graph::edge_bound`).
        expected: usize,
        /// Slots provided.
        actual: usize,
    },
    /// A dead (removed) edge slot carries a nonzero κ.
    DeadSlotNonZero {
        /// The dead slot.
        edge: EdgeId,
        /// The nonzero value it carries.
        kappa: u32,
    },
    /// Definition 3 fails: inside the level-`kappa` subgraph the edge
    /// supports fewer than `kappa` triangles, so the claimed value is too
    /// high.
    InsufficientSupport {
        /// The offending edge.
        edge: EdgeId,
        /// Its endpoints, for readable reports.
        endpoints: (VertexId, VertexId),
        /// The claimed κ.
        kappa: u32,
        /// Triangles actually supported within the claimed level set.
        support: u32,
    },
    /// Definition 4 fails: the independent peeling replay proves the edge
    /// survives to a deeper core than claimed, so the value is too low.
    NotMaximal {
        /// The offending edge.
        edge: EdgeId,
        /// Its endpoints, for readable reports.
        endpoints: (VertexId, VertexId),
        /// The claimed κ.
        claimed: u32,
        /// The κ the replay derives.
        actual: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::LengthMismatch { expected, actual } => write!(
                f,
                "kappa vector has {actual} slots but the graph needs {expected}"
            ),
            Violation::DeadSlotNonZero { edge, kappa } => write!(
                f,
                "dead edge slot {} carries nonzero kappa {kappa}",
                edge.index()
            ),
            Violation::InsufficientSupport {
                edge,
                endpoints: (u, v),
                kappa,
                support,
            } => write!(
                f,
                "edge {} = ({}, {}) claims kappa {kappa} but supports only \
                 {support} triangles inside its level set (Definition 3)",
                edge.index(),
                u.0,
                v.0
            ),
            Violation::NotMaximal {
                edge,
                endpoints: (u, v),
                claimed,
                actual,
            } => write!(
                f,
                "edge {} = ({}, {}) claims kappa {claimed} but the peeling \
                 replay proves {actual} (Definition 4 maximality)",
                edge.index(),
                u.0,
                v.0
            ),
        }
    }
}

/// Verification report: every violation found, in a stable order (shape
/// violations, then feasibility by edge id, then maximality by edge id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All violations found.
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when the certificate checks out.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            return write!(f, "kappa certificate OK");
        }
        writeln!(
            f,
            "kappa certificate REJECTED ({} violations):",
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Independent sorted-adjacency view of the graph, rebuilt from the raw
/// edge list so the checker does not trust `tkc-graph`'s adjacency
/// bookkeeping or triangle enumeration.
struct AdjacencyView {
    /// Per vertex: `(neighbor, edge)` sorted by neighbor id.
    adj: Vec<Vec<(u32, EdgeId)>>,
    /// Live-edge endpoints by edge slot (`None` = dead slot).
    endpoints: Vec<Option<(VertexId, VertexId)>>,
}

impl AdjacencyView {
    fn build(g: &Graph) -> Self {
        let mut adj: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); g.num_vertices()];
        let mut endpoints: Vec<Option<(VertexId, VertexId)>> = vec![None; g.edge_bound()];
        for (e, u, v) in g.edges() {
            adj[u.index()].push((v.0, e));
            adj[v.index()].push((u.0, e));
            endpoints[e.index()] = Some((u, v));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        AdjacencyView { adj, endpoints }
    }

    /// Calls `f(e1, e2)` for each triangle `{u, v, w}` on the live edge
    /// `e = {u, v}` whose member edges all satisfy `live`, where `e1 = {u,
    /// w}` and `e2 = {v, w}`. Sorted-merge intersection of the two
    /// adjacency lists.
    fn for_each_triangle<L, F>(&self, e: EdgeId, live: &L, f: &mut F)
    where
        L: Fn(EdgeId) -> bool,
        F: FnMut(EdgeId, EdgeId),
    {
        let Some((u, v)) = self.endpoints[e.index()] else {
            return;
        };
        if !live(e) {
            return;
        }
        let (a, b) = (&self.adj[u.index()], &self.adj[v.index()]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let ((wa, e1), (wb, e2)) = (a[i], b[j]);
            match wa.cmp(&wb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if live(e1) && live(e2) {
                        f(e1, e2);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Triangles on `e` within the subgraph of edges satisfying `live`.
    fn support<L: Fn(EdgeId) -> bool>(&self, e: EdgeId, live: &L) -> u32 {
        let mut n = 0;
        self.for_each_triangle(e, live, &mut |_, _| n += 1);
        n
    }

    /// Independent peeling replay: κ for every live edge by iterated
    /// pruning with this view's own triangle counting. Definitionally
    /// direct — for `k = 1, 2, …` repeatedly delete edges supporting fewer
    /// than `k` triangles; an edge removed while pruning toward level `k`
    /// has `κ = k − 1`.
    fn peel(&self) -> Vec<u32> {
        let bound = self.endpoints.len();
        let mut kappa = vec![0u32; bound];
        let mut alive: Vec<bool> = self.endpoints.iter().map(Option::is_some).collect();
        let mut remaining: usize = alive.iter().filter(|&&a| a).count();
        let mut k = 1u32;
        while remaining > 0 {
            loop {
                let is_alive = |x: EdgeId| alive[x.index()];
                let doomed: Vec<EdgeId> = (0..bound)
                    .map(|i| EdgeId(i as u32))
                    .filter(|&e| alive[e.index()] && self.support(e, &is_alive) < k)
                    .collect();
                if doomed.is_empty() {
                    break;
                }
                for e in doomed {
                    kappa[e.index()] = k - 1;
                    alive[e.index()] = false;
                    remaining -= 1;
                }
            }
            k += 1;
        }
        kappa
    }
}

/// An independently checkable claim that `kappa` is the Triangle K-Core
/// decomposition of `g`.
#[derive(Debug, Clone, Copy)]
pub struct KappaCertificate<'a> {
    g: &'a Graph,
    kappa: &'a [u32],
}

impl<'a> KappaCertificate<'a> {
    /// Wraps a graph and a claimed κ vector for verification.
    pub fn new(g: &'a Graph, kappa: &'a [u32]) -> Self {
        KappaCertificate { g, kappa }
    }

    /// Runs every check; `Ok(())` iff the claim holds, otherwise the full
    /// violation report.
    pub fn check(&self) -> Result<(), Report> {
        let report = self.report();
        if report.is_valid() {
            Ok(())
        } else {
            Err(report)
        }
    }

    /// Runs every check and returns the report (valid or not).
    pub fn report(&self) -> Report {
        let mut violations = Vec::new();
        if self.kappa.len() < self.g.edge_bound() {
            violations.push(Violation::LengthMismatch {
                expected: self.g.edge_bound(),
                actual: self.kappa.len(),
            });
            return Report { violations };
        }
        let view = AdjacencyView::build(self.g);
        for (i, state) in view.endpoints.iter().enumerate() {
            if state.is_none() && self.kappa[i] != 0 {
                violations.push(Violation::DeadSlotNonZero {
                    edge: EdgeId(i as u32),
                    kappa: self.kappa[i],
                });
            }
        }
        violations.extend(self.feasibility_violations(&view));
        violations.extend(self.maximality_violations(&view));
        Report { violations }
    }

    /// Definition 3 check: each live edge supports ≥ `κ(e)` triangles
    /// inside its own level set.
    fn feasibility_violations(&self, view: &AdjacencyView) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (i, state) in view.endpoints.iter().enumerate() {
            let Some(endpoints) = *state else { continue };
            let e = EdgeId(i as u32);
            let k = self.kappa[i];
            if k == 0 {
                continue;
            }
            let in_level = |x: EdgeId| self.kappa[x.index()] >= k;
            let support = view.support(e, &in_level);
            if support < k {
                violations.push(Violation::InsufficientSupport {
                    edge: e,
                    endpoints,
                    kappa: k,
                    support,
                });
            }
        }
        violations
    }

    /// Definition 4 check: the independent peeling replay must not find a
    /// deeper core than claimed for any edge.
    fn maximality_violations(&self, view: &AdjacencyView) -> Vec<Violation> {
        let replay = view.peel();
        let mut violations = Vec::new();
        for (i, state) in view.endpoints.iter().enumerate() {
            let Some(endpoints) = *state else { continue };
            if replay[i] > self.kappa[i] {
                violations.push(Violation::NotMaximal {
                    edge: EdgeId(i as u32),
                    endpoints,
                    claimed: self.kappa[i],
                    actual: replay[i],
                });
            }
        }
        violations
    }
}

/// Convenience: verify a [`tkc_core::decompose::Decomposition`] against the
/// graph it claims to describe.
pub fn verify_decomposition(
    g: &Graph,
    d: &tkc_core::decompose::Decomposition,
) -> Result<(), Report> {
    KappaCertificate::new(g, d.kappa_slice()).check()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_core::decompose::triangle_kcore_decomposition;
    use tkc_graph::generators;

    #[test]
    fn accepts_true_decompositions() {
        for g in [
            generators::complete(6),
            generators::path(5),
            generators::gnp(24, 0.25, 3),
            generators::connected_caveman(3, 5),
            generators::holme_kim(40, 3, 0.6, 9),
        ] {
            let d = triangle_kcore_decomposition(&g);
            verify_decomposition(&g, &d).expect("true decomposition must verify");
        }
    }

    #[test]
    fn rejects_inflated_kappa_with_pinpointed_support_violation() {
        let g = generators::complete(5);
        let mut kappa = triangle_kcore_decomposition(&g).into_kappa();
        let victim = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        kappa[victim.index()] += 1;
        let report = KappaCertificate::new(&g, &kappa).check().unwrap_err();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(*v, Violation::InsufficientSupport { edge, kappa: 4, .. } if edge == victim)));
    }

    #[test]
    fn rejects_deflated_kappa_with_pinpointed_maximality_violation() {
        let g = generators::complete(5);
        let mut kappa = triangle_kcore_decomposition(&g).into_kappa();
        let victim = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        kappa[victim.index()] = 0;
        let report = KappaCertificate::new(&g, &kappa).check().unwrap_err();
        assert!(report.violations.iter().any(|v| matches!(
            *v,
            Violation::NotMaximal { edge, claimed: 0, actual: 3, .. } if edge == victim
        )));
    }

    #[test]
    fn rejects_short_vectors_and_dirty_dead_slots() {
        let mut g = generators::complete(4);
        let short = vec![0u32; g.num_edges() - 1];
        let report = KappaCertificate::new(&g, &short).check().unwrap_err();
        assert!(matches!(
            report.violations[0],
            Violation::LengthMismatch { .. }
        ));

        let dead = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        g.remove_edge(dead).unwrap();
        let mut kappa = triangle_kcore_decomposition(&g).into_kappa();
        kappa[dead.index()] = 7;
        let report = KappaCertificate::new(&g, &kappa).check().unwrap_err();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(*v, Violation::DeadSlotNonZero { edge, kappa: 7 } if edge == dead)));
    }

    #[test]
    fn report_display_is_readable() {
        let g = generators::complete(4);
        let mut kappa = triangle_kcore_decomposition(&g).into_kappa();
        kappa[0] = 9;
        let report = KappaCertificate::new(&g, &kappa).report();
        let text = format!("{report}");
        assert!(text.contains("REJECTED"));
        assert!(text.contains("Definition 3"));
    }
}
