//! # tkc-verify — independent correctness layer for the Triangle K-Core suite
//!
//! The paper's headline claims are *correctness* claims: Algorithm 1
//! computes κ(e) exactly, and the maintenance algorithms keep the same κ
//! under edge insertion/deletion. This crate makes those claims
//! mechanically checkable, with no shared code paths with the
//! implementations it audits:
//!
//! * [`certificate`] — [`certificate::KappaCertificate`] verifies any
//!   claimed κ vector against Definitions 3/4 using its own
//!   sorted-adjacency triangle counting and an independent peeling replay,
//!   reporting structured [`certificate::Violation`]s;
//! * [`differential`] — a seeded op-stream harness that checks the dynamic
//!   maintainer against a from-scratch recompute (and optionally the naive
//!   definitional oracle plus the certificate checker) after every batch,
//!   shrinking failures to minimal ready-to-paste reproductions.
//!
//! ```
//! use tkc_core::decompose::triangle_kcore_decomposition;
//! use tkc_graph::generators;
//! use tkc_verify::certificate::KappaCertificate;
//!
//! let g = generators::complete(6);
//! let d = triangle_kcore_decomposition(&g);
//! KappaCertificate::new(&g, d.kappa_slice()).check().expect("K6 verifies");
//!
//! // A corrupted vector is rejected with a pinpointed violation.
//! let mut bad = d.into_kappa();
//! bad[0] += 1;
//! assert!(KappaCertificate::new(&g, &bad).check().is_err());
//! ```

// Oracle crate: differential checks *want* to fail loudly — a panic is
// the test failure report. See DESIGN.md §11.
#![allow(clippy::indexing_slicing, clippy::expect_used)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certificate;
pub mod differential;

pub use certificate::{KappaCertificate, Report, Violation};
pub use differential::{
    kappa_matches_recompute, kappa_stamp, run_stream, run_suite, FailureDump, StreamConfig,
    StreamStats,
};
