//! The five project lints.
//!
//! Each lint is a pure function from the scanned workspace (plus policy)
//! to findings; suppression (allowlist entries, `// analyze: ...`
//! justifications) is recorded on the finding rather than dropping it, so
//! JSON output shows *why* an exception is accepted.

pub mod atomic_ordering;
pub mod invariants;
pub mod lock_order;
pub mod panic_surface;
pub mod registry;

use crate::lexer::{TokKind, Token};

/// Rust keywords that can directly precede `[` without forming an index
/// expression (`&mut [T]`, `dyn [..]`-ish positions). Used by
/// panic-surface's indexing detector.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "in", "as", "return", "break", "else", "match", "if", "while", "loop", "move",
    "ref", "const", "static", "impl", "for", "where", "unsafe", "let", "await", "yield", "box",
];

/// Walks backwards from `i` (exclusive) to name the receiver of a method
/// call: the last *named* identifier in the dotted chain, skipping tuple
/// indices (`self.0`) and index groups (`self.calls[k]`). Returns `None`
/// when the receiver is not a simple chain (e.g. a call result).
pub(crate) fn receiver_name(tokens: &[Token], mut i: usize) -> Option<String> {
    loop {
        let t = tokens.get(i.checked_sub(1)?)?;
        if t.is_punct("]") || t.is_punct(")") {
            // Balance back to the matching opener and continue before it.
            // For a call receiver (`sink().lock()`), the function name
            // stands in as the variable.
            let (open, close) = if t.is_punct("]") {
                ("[", "]")
            } else {
                ("(", ")")
            };
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                if tokens[j].is_punct(close) {
                    depth += 1;
                } else if tokens[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            i = j;
        } else if t.kind == TokKind::Num {
            // Tuple index: skip it and the `.` before it.
            let dot = tokens.get(i.checked_sub(2)?)?;
            if !dot.is_punct(".") {
                return None;
            }
            i -= 2;
        } else if t.kind == TokKind::Ident {
            return Some(t.text.clone());
        } else {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use crate::lexer::lex;

    #[test]
    fn receiver_names() {
        let cases = [
            ("self.state.load", Some("state")),
            ("self.0.fetch_add", Some("self")),
            ("self.calls[site.index()].fetch_add", Some("calls")),
            ("GLOBAL.load", Some("GLOBAL")),
            ("make().load", Some("make")),
        ];
        for (src, want) in cases {
            let (tokens, _) = lex(src);
            // Receiver ends just before the final `.method` pair.
            let got = super::receiver_name(&tokens, tokens.len() - 2);
            assert_eq!(got.as_deref(), want, "src = {src}");
        }
    }
}
