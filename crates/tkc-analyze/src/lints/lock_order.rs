//! Lock-order lint.
//!
//! Extracts `Mutex`/`RwLock` acquisition sites per function — both
//! declared acquirer helpers (`lock_writer(&self.writer)`) and direct
//! `field.lock()` / `.read()` / `.write()` calls on declared lock fields
//! — classifies each as *held* (bound with `let`, alive to the end of its
//! enclosing block) or *transient* (statement temporary), propagates lock
//! sets through direct same-crate calls to a fixpoint, and reports:
//!
//! - an acquisition (or a call that transitively acquires) of a lock
//!   ranked *earlier* in the declared hierarchy while holding a lock
//!   ranked later — the classic inversion that makes a cycle possible;
//! - re-acquisition of a lock already held (std mutexes self-deadlock);
//! - `.lock()` on a receiver that is not a declared lock (the hierarchy
//!   must be complete to mean anything).
//!
//! Because every declared lock has a unique rank, rejecting rank
//! inversions rejects every cycle expressible in the graph.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::policy::Policy;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "lock-order";

#[derive(Debug, Clone)]
enum Event {
    Acquire {
        lock: String,
        tok: usize,
        line: u32,
        /// End of the guard's lifetime (token index) if bound with `let`;
        /// `None` for statement temporaries.
        held_until: Option<usize>,
    },
    Call {
        callee: String,
        tok: usize,
        line: u32,
    },
}

impl Event {
    fn tok(&self) -> usize {
        match self {
            Event::Acquire { tok, .. } | Event::Call { tok, .. } => *tok,
        }
    }
}

/// Runs the lint over the scanned workspace.
pub fn run(files: &[SourceFile], policy: &Policy) -> Vec<Finding> {
    if policy.lock_hierarchy.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let rank: BTreeMap<&str, usize> = policy
        .lock_hierarchy
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    let mut field_to_lock: BTreeMap<&str, &str> = BTreeMap::new();
    let mut acquirer_to_lock: BTreeMap<&str, &str> = BTreeMap::new();
    for lock in &policy.locks {
        for f in &lock.fields {
            field_to_lock.insert(f.as_str(), lock.id.as_str());
        }
        for a in &lock.acquirers {
            acquirer_to_lock.insert(a.as_str(), lock.id.as_str());
        }
    }

    // Pass 1: per-function events, and the direct lock set per function
    // (keyed by crate, then bare name — calls resolve within the crate).
    let mut events: Vec<(usize, String, Vec<Event>)> = Vec::new(); // (file idx, fn name, events)
    let mut direct: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut fn_names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new(); // crate -> names
    for file in files {
        for f in &file.fns {
            fn_names
                .entry(file.crate_name.clone())
                .or_default()
                .insert(f.name.clone());
        }
    }
    for (fi, file) in files.iter().enumerate() {
        let known = fn_names.get(&file.crate_name);
        for span in &file.fns {
            let mut evs = Vec::new();
            let is_acquirer = acquirer_to_lock.contains_key(span.name.as_str());
            for i in span.body_start..span.end.min(file.tokens.len()) {
                if file.in_test(i) {
                    continue;
                }
                let t = &file.tokens[i];
                if t.kind != TokKind::Ident
                    || !matches!(file.tokens.get(i + 1), Some(n) if n.is_punct("("))
                {
                    continue;
                }
                // Skip nested `fn` definitions' names.
                if matches!(i.checked_sub(1).map(|p| &file.tokens[p]), Some(p) if p.is_ident("fn"))
                {
                    continue;
                }
                let name = t.text.as_str();
                let is_method =
                    matches!(i.checked_sub(1).map(|p| &file.tokens[p]), Some(p) if p.is_punct("."));
                if !is_method {
                    if let Some(lock) = acquirer_to_lock.get(name) {
                        evs.push(Event::Acquire {
                            lock: (*lock).to_string(),
                            tok: i,
                            line: t.line,
                            held_until: held_until(file, span, i),
                        });
                        continue;
                    }
                }
                if is_method && matches!(name, "lock" | "read" | "write") {
                    let recv = super::receiver_name(&file.tokens, i - 1);
                    match recv.as_deref().and_then(|r| field_to_lock.get(r)) {
                        Some(lock) => {
                            evs.push(Event::Acquire {
                                lock: (*lock).to_string(),
                                tok: i,
                                line: t.line,
                                held_until: held_until(file, span, i),
                            });
                            continue;
                        }
                        None if name == "lock" && !is_acquirer => {
                            // `.read()`/`.write()` collide with io traits,
                            // so only bare `.lock()` demands completeness.
                            let msg = format!(
                                "`.lock()` on `{}` which is not a declared lock; add it to analyze.toml [[lock]] and the hierarchy",
                                recv.as_deref().unwrap_or("<expr>")
                            );
                            if let Some(why) = file.justification(t.line, "allow", Some(LINT)) {
                                findings.push(Finding {
                                    allowed_by: Some(why),
                                    ..Finding::deny(LINT, &file.rel, t.line, msg)
                                });
                            } else {
                                findings.push(Finding::deny(LINT, &file.rel, t.line, msg));
                            }
                            continue;
                        }
                        None => continue,
                    }
                }
                // A plain call to a function defined in this crate. For
                // method calls, only `self.f(..)` resolves here — `x.push(..)`
                // on an arbitrary receiver must not alias a crate-local
                // `fn push` (e.g. `Vec::push` inside `TraceBuffer::push`).
                let is_self_method = is_method
                    && matches!(i.checked_sub(2).map(|p| &file.tokens[p]), Some(p) if p.is_ident("self"));
                if (!is_method || is_self_method) && known.is_some_and(|k| k.contains(name)) {
                    evs.push(Event::Call {
                        callee: name.to_string(),
                        tok: i,
                        line: t.line,
                    });
                }
            }
            let mut locks: BTreeSet<String> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { lock, .. } => Some(lock.clone()),
                    Event::Call { .. } => None,
                })
                .collect();
            if let Some(lock) = acquirer_to_lock.get(span.name.as_str()) {
                locks.insert((*lock).to_string());
            }
            direct
                .entry((file.crate_name.clone(), span.name.clone()))
                .or_default()
                .extend(locks);
            events.push((fi, span.name.clone(), evs));
        }
    }

    // Pass 2: propagate lock sets through calls to a fixpoint.
    let mut reach = direct.clone();
    loop {
        let mut changed = false;
        for (fi, fname, evs) in &events {
            let crate_name = files[*fi].crate_name.clone();
            let mut add = BTreeSet::new();
            for e in evs {
                if let Event::Call { callee, .. } = e {
                    if let Some(set) = reach.get(&(crate_name.clone(), callee.clone())) {
                        add.extend(set.iter().cloned());
                    }
                }
            }
            let entry = reach.entry((crate_name, fname.clone())).or_default();
            for l in add {
                changed |= entry.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: for each held guard, check everything acquired in its scope.
    for (fi, _fname, evs) in &events {
        let file = &files[*fi];
        let crate_name = &file.crate_name;
        for (gi, g) in evs.iter().enumerate() {
            let Event::Acquire {
                lock: held,
                tok: gtok,
                held_until: Some(until),
                ..
            } = g
            else {
                continue;
            };
            let held_rank = rank.get(held.as_str()).copied().unwrap_or(usize::MAX);
            for e in evs.iter().skip(gi + 1) {
                if e.tok() <= *gtok || e.tok() >= *until {
                    continue;
                }
                let acquired: Vec<(String, u32, &'static str)> = match e {
                    Event::Acquire { lock, line, .. } => {
                        vec![(lock.clone(), *line, "acquires")]
                    }
                    Event::Call { callee, line, .. } => reach
                        .get(&(crate_name.clone(), callee.clone()))
                        .into_iter()
                        .flatten()
                        .map(|l| (l.clone(), *line, "calls into code that acquires"))
                        .collect(),
                };
                for (lock, line, verb) in acquired {
                    let msg = if lock == *held {
                        format!("{verb} `{lock}` while already holding it (self-deadlock)")
                    } else {
                        let r = rank.get(lock.as_str()).copied().unwrap_or(usize::MAX);
                        if r >= held_rank {
                            continue;
                        }
                        format!(
                            "{verb} `{lock}` while holding `{held}`, contradicting the declared hierarchy ({} before {})",
                            lock, held
                        )
                    };
                    match file.justification(line, "allow", Some(LINT)) {
                        Some(why) => findings.push(Finding {
                            allowed_by: Some(why),
                            ..Finding::deny(LINT, &file.rel, line, msg)
                        }),
                        None => findings.push(Finding::deny(LINT, &file.rel, line, msg)),
                    }
                }
            }
        }
    }
    findings
}

/// If the acquisition starting at token `i` is bound with `let`, the
/// token index where the guard dies (close of the enclosing block);
/// `None` for statement temporaries.
fn held_until(file: &SourceFile, span: &crate::scan::FnSpan, i: usize) -> Option<usize> {
    // Bound with `let` iff a `let` appears between the previous statement
    // boundary (`;`, `{`, `}`) and the acquisition.
    let mut bound = false;
    let mut j = i;
    while j > span.body_start {
        j -= 1;
        let t = &file.tokens[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        if t.is_ident("let") {
            bound = true;
            break;
        }
    }
    if !bound {
        return None;
    }
    // Guard lives to the close of the enclosing block: scan forward
    // tracking depth; the first `}` that takes depth negative ends it.
    let mut depth = 0i32;
    for (k, t) in file.tokens.iter().enumerate().skip(i).take(span.end - i) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return Some(k);
            }
        }
    }
    Some(span.end)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::scan::scan_source;
    use std::path::PathBuf;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[lock-order]
hierarchy = ["a", "b"]
[[lock]]
id = "a"
fields = ["alpha"]
acquirers = ["lock_alpha"]
[[lock]]
id = "b"
fields = ["beta"]
"#,
        )
        .unwrap()
    }

    fn lint(src: &str) -> Vec<Finding> {
        let f = scan_source(PathBuf::from("m.rs"), "m.rs".into(), "demo", src);
        run(&[f], &policy())
    }

    #[test]
    fn correct_order_is_clean() {
        let out = lint("fn ok(alpha: M, beta: M) { let g = alpha.lock(); let h = beta.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inversion_is_flagged() {
        let out = lint("fn bad(alpha: M, beta: M) { let g = beta.lock(); let h = alpha.lock(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("contradicting"));
    }

    #[test]
    fn inversion_through_a_call_is_flagged() {
        let out = lint(
            "fn helper(alpha: M) { let g = alpha.lock(); }\n\
             fn bad(beta: M, alpha: M) { let g = beta.lock(); helper(alpha); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("calls into"));
    }

    #[test]
    fn transient_guard_creates_no_outgoing_edge() {
        // `beta.lock()` as a temporary is released before `alpha.lock()`.
        let out = lint("fn ok(alpha: M, beta: M) { beta.lock().touch(); let g = alpha.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn block_scoped_guard_dies_at_close() {
        let out =
            lint("fn ok(alpha: M, beta: M) { { let g = beta.lock(); } let h = alpha.lock(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn self_reacquire_is_flagged() {
        let out =
            lint("fn bad(alpha: M) { let g = lock_alpha(alpha); let h = lock_alpha(alpha); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("self-deadlock"));
    }

    #[test]
    fn foreign_method_does_not_alias_local_fn() {
        // `g.push(x)` is Vec::push, not the crate-local `fn push` that
        // locks `alpha` — no self-deadlock.
        let out = lint(
            "fn push(alpha: M) { let g = alpha.lock(); }\n\
             fn ok(alpha: M) { let g = alpha.lock(); g.push(1); }",
        );
        let active: Vec<_> = out
            .iter()
            .filter(|f| f.message.contains("deadlock"))
            .collect();
        assert!(active.is_empty(), "{active:?}");
    }

    #[test]
    fn undeclared_lock_is_flagged() {
        let out = lint("fn bad(other: M) { let g = other.lock(); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not a declared lock"));
    }
}
