//! Panic-surface lint.
//!
//! In the *strict crates* (policy `[panic-surface].strict_crates` — the
//! durable engine and the kernel crate), non-test, non-`debug_assert!`
//! code must not contain:
//!
//! - `.unwrap()` / `.expect(...)` — implicit process aborts in serving
//!   paths;
//! - slice/array indexing (`x[i]`, `&buf[a..b]`) — out-of-bounds panics
//!   the clippy wall only warns about;
//! - `/` or `%` with a non-literal divisor — divide-by-zero panics.
//!
//! Sites that are genuinely fine carry an inline
//! `// analyze: allow(panic-surface): why` justification; whole kernel
//! files whose indexing is structural (CSR offsets) are excused via
//! `[[allow]]` entries in `analyze.toml` so the exception list is
//! reviewable in one place.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::policy::Policy;
use crate::scan::SourceFile;

const LINT: &str = "panic-surface";

/// Runs the lint over the scanned workspace.
pub fn run(files: &[SourceFile], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !policy.strict_crates.contains(&file.crate_name) {
            continue;
        }
        for i in 0..file.tokens.len() {
            if file.in_test(i) || file.in_debug_assert(i) {
                continue;
            }
            let t = &file.tokens[i];
            let message = if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unwrap" | "expect")
                && matches!(file.tokens.get(i + 1), Some(n) if n.is_punct("("))
                && matches!(i.checked_sub(1).map(|p| &file.tokens[p]), Some(p) if p.is_punct("."))
            {
                format!("`.{}()` in a strict crate's non-test path", t.text)
            } else if t.is_punct("[") && is_index_expr(file, i) {
                "slice/array indexing in a strict crate's non-test path (use get()/split-based access or justify)".to_string()
            } else if (t.is_punct("/") || t.is_punct("%")) && risky_divisor(file, i) {
                format!(
                    "`{}` with a non-literal divisor in a strict crate (guard against zero or justify)",
                    t.text
                )
            } else {
                continue;
            };
            match file.justification(t.line, "allow", Some(LINT)) {
                Some(why) => findings.push(Finding {
                    allowed_by: Some(why),
                    ..Finding::deny(LINT, &file.rel, t.line, message)
                }),
                None => findings.push(Finding::deny(LINT, &file.rel, t.line, message)),
            }
        }
    }
    findings
}

/// Is the `[` at token `i` an index expression (vs. an array type, array
/// literal, attribute, macro bracket, or slice pattern)? Indexing
/// requires a completed operand immediately before: an identifier (other
/// than keywords like `mut`), a close bracket, `)`, `?`, or a tuple
/// index.
fn is_index_expr(file: &SourceFile, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &file.tokens[p]) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !super::NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
        TokKind::Num => false,
        _ => false,
    }
}

/// Is the `/`-or-`%` at token `i` a division with a divisor that could
/// be zero? Literal divisors and float arithmetic (an `f64`/`f32` ident
/// or a float literal within the surrounding expression window) are
/// excused.
fn risky_divisor(file: &SourceFile, i: usize) -> bool {
    match file.tokens.get(i + 1) {
        // `x / 2` can't panic; `x / 0` would be caught at compile time
        // for literals anyway.
        Some(n) if n.kind == TokKind::Num => return false,
        None => return false,
        _ => {}
    }
    // Preceded by `<` or punctuation that means this is not binary
    // division (e.g. closing `/` has no other meaning in token space, but
    // a leading operand must exist).
    let Some(prev) = i.checked_sub(1).map(|p| &file.tokens[p]) else {
        return false;
    };
    if prev.kind == TokKind::Punct && !matches!(prev.text.as_str(), ")" | "]") {
        return false;
    }
    // Float context: f64/f32 casts or float literals nearby.
    let lo = i.saturating_sub(8);
    let hi = (i + 9).min(file.tokens.len());
    let float_ctx = file.tokens.get(lo..hi).into_iter().flatten().any(|t| {
        (t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32"))
            || (t.kind == TokKind::Num && t.text.contains('.'))
    });
    !float_ctx
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::scan::scan_source;
    use std::path::PathBuf;

    fn policy() -> Policy {
        Policy::parse("[panic-surface]\nstrict_crates = [\"demo\"]\n").unwrap()
    }

    fn lint(src: &str) -> Vec<Finding> {
        let f = scan_source(PathBuf::from("m.rs"), "m.rs".into(), "demo", src);
        run(&[f], &policy())
    }

    #[test]
    fn unwrap_expect_and_indexing_flagged() {
        let out = lint(
            "fn a(v: Vec<u32>, o: Option<u32>) { o.unwrap(); o.expect(\"x\"); let _ = v[0]; }",
        );
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn array_types_literals_attrs_and_macros_not_flagged() {
        let out = lint(
            "#[derive(Debug)]\nstruct S { buf: [u8; 4] }\nfn a() -> Vec<u32> { let x: &mut [u8] = &mut [0; 4][..1]; vec![1, 2] }",
        );
        // `[0; 4][..1]` second bracket indexes the literal — that one IS
        // indexing (prev token `]`); everything else stays quiet.
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn debug_assert_and_tests_are_exempt() {
        let out = lint(
            "fn a(v: &[u32]) { debug_assert!(v[0] > 0); }\n#[cfg(test)]\nmod tests { fn b(v: &[u32]) { v[0]; } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn division_by_variable_flagged_floats_excused() {
        let out = lint("fn a(x: u64, n: u64) -> u64 { x / n }");
        assert_eq!(out.len(), 1, "{out:?}");
        let out = lint("fn a(x: u64, n: u64) -> f64 { x as f64 / n as f64 }");
        assert!(out.is_empty(), "{out:?}");
        let out = lint("fn a(x: u64) -> u64 { x / 2 }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn justified_site_is_suppressed() {
        let out = lint(
            "fn a(v: &[u32]) -> u32 {\n    // analyze: allow(panic-surface): length checked by caller\n    v[0]\n}",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].allowed_by.is_some());
    }

    #[test]
    fn non_strict_crates_ignored() {
        let f = scan_source(
            PathBuf::from("m.rs"),
            "m.rs".into(),
            "other",
            "fn a(v: &[u32]) { v[0]; }",
        );
        assert!(run(&[f], &policy()).is_empty());
    }
}
