//! Invariant-comment freshness lint.
//!
//! The kernel crates carry `debug_assert!`s that encode paper-level
//! invariants — Rule 0 locality (dynamic κ-maintenance only touches the
//! triangle neighborhood of the changed edge) and bucket-queue peel
//! monotonicity. Those asserts are only as trustworthy as the external
//! oracle they mirror, so each one must carry an
//! `// analyze: invariant(<check>)` tag naming an existing function in
//! tkc-verify. The lint flags:
//!
//! - an invariant-bearing `debug_assert!` (its message or nearby comments
//!   mention a policy keyword) with no tag;
//! - a tag naming a check that does not exist in tkc-verify (stale
//!   reference — the check was renamed or removed).

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::policy::Policy;
use crate::scan::SourceFile;
use std::collections::BTreeSet;

const LINT: &str = "invariant-freshness";

/// Runs the lint over the scanned workspace.
pub fn run(files: &[SourceFile], policy: &Policy) -> Vec<Finding> {
    if policy.invariant_crates.is_empty() || policy.invariant_keywords.is_empty() {
        return Vec::new();
    }
    // Every function name defined under the verify path.
    let verify_fns: BTreeSet<&str> = files
        .iter()
        .filter(|f| {
            policy
                .verify_path
                .as_ref()
                .is_some_and(|p| f.rel.contains(p))
        })
        .flat_map(|f| f.fns.iter().map(|s| s.name.as_str()))
        .collect();

    let mut findings = Vec::new();
    for file in files {
        if !policy.invariant_crates.contains(&file.crate_name) {
            continue;
        }
        for &(start, end) in &file.debug_assert_ranges {
            if file.in_test(start) {
                continue;
            }
            let first_line = file.tokens.get(start).map_or(0, |t| t.line);
            let last_line = file
                .tokens
                .get(start..end)
                .into_iter()
                .flatten()
                .map(|t| t.line)
                .max()
                .unwrap_or(first_line);
            // Text that can mark the assert as invariant-bearing: its
            // string arguments plus comments just above and inside it.
            let mut context = String::new();
            for t in file.tokens.get(start..end).into_iter().flatten() {
                if t.kind == TokKind::Str {
                    context.push_str(&t.text);
                    context.push('\n');
                }
            }
            for l in first_line.saturating_sub(3)..=last_line {
                for c in file.comments.get(&l).into_iter().flatten() {
                    context.push_str(c);
                    context.push('\n');
                }
            }
            let context_lower = context.to_lowercase();
            let Some(keyword) = policy
                .invariant_keywords
                .iter()
                .find(|k| context_lower.contains(&k.to_lowercase()))
            else {
                continue;
            };
            match invariant_tag(&context) {
                None => findings.push(Finding::deny(
                    LINT,
                    &file.rel,
                    first_line,
                    format!(
                        "debug_assert mentions `{keyword}` but carries no `// analyze: invariant(<check>)` tag naming a tkc-verify check"
                    ),
                )),
                Some(name) if !verify_fns.contains(name.as_str()) => {
                    findings.push(Finding::deny(
                        LINT,
                        &file.rel,
                        first_line,
                        format!(
                            "invariant tag references tkc-verify check `{name}`, which does not exist"
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    findings
}

/// Extracts `<name>` from an `analyze: invariant(<name>)` marker in the
/// gathered context text.
fn invariant_tag(context: &str) -> Option<String> {
    let pos = context.find("analyze: invariant(")?;
    let rest = context.get(pos + "analyze: invariant(".len()..)?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::scan::scan_source;
    use std::path::PathBuf;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[invariants]
crates = ["demo"]
keywords = ["Rule 0", "monoton"]
verify_path = "verify/src"
"#,
        )
        .unwrap()
    }

    fn lint(core_src: &str) -> Vec<Finding> {
        let core = scan_source(
            PathBuf::from("demo/src/a.rs"),
            "demo/src/a.rs".into(),
            "demo",
            core_src,
        );
        let verify = scan_source(
            PathBuf::from("verify/src/lib.rs"),
            "verify/src/lib.rs".into(),
            "tkc-verify",
            "pub fn verify_decomposition() {}",
        );
        run(&[core, verify], &policy())
    }

    #[test]
    fn untagged_invariant_assert_is_flagged() {
        let out = lint("fn a(x: u32) { debug_assert!(x > 0, \"peel monotonicity violated\"); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no `// analyze: invariant"));
    }

    #[test]
    fn tagged_with_existing_check_is_clean() {
        let out = lint(
            "fn a(x: u32) {\n    // analyze: invariant(verify_decomposition)\n    debug_assert!(x > 0, \"peel monotonicity violated\");\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_tag_is_flagged() {
        let out = lint(
            "fn a(x: u32) {\n    // analyze: invariant(gone_check)\n    debug_assert!(x > 0, \"Rule 0 violated\");\n}",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`gone_check`"));
    }

    #[test]
    fn plain_debug_asserts_are_ignored() {
        assert!(lint("fn a(x: u32) { debug_assert!(x > 0, \"positive\"); }").is_empty());
    }
}
