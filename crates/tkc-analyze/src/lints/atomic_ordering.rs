//! Atomic-ordering audit.
//!
//! Every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` use site
//! in non-test code must be covered by a per-variable rule in
//! `analyze.toml` (`[[atomic]]`: variable name, allowed orderings, and a
//! written reason) or carry an inline `// analyze: ordering(<Name>):
//! why` justification. `std::cmp::Ordering` variants (`Less`/`Equal`/
//! `Greater`) never match, so comparator code is naturally out of scope.
//!
//! The variable a site belongs to is the last named identifier of the
//! method receiver (`self.state.load(..)` → `state`,
//! `self.calls[i].fetch_add(..)` → `calls`), which is how the policy
//! table stays readable without type resolution.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::policy::Policy;
use crate::scan::SourceFile;

const LINT: &str = "atomic-ordering";

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the lint over the scanned workspace.
pub fn run(files: &[SourceFile], policy: &Policy) -> Vec<Finding> {
    if policy.atomics.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for file in files {
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if !t.is_ident("Ordering")
                || !matches!(file.tokens.get(i + 1), Some(p) if p.is_punct("::"))
            {
                continue;
            }
            let Some(ord_tok) = file.tokens.get(i + 2) else {
                continue;
            };
            if ord_tok.kind != TokKind::Ident || !ATOMIC_ORDERINGS.contains(&ord_tok.text.as_str())
            {
                continue;
            }
            if file.in_test(i) {
                continue;
            }
            let ord = ord_tok.text.as_str();
            let line = ord_tok.line;
            let var = call_receiver(file, i);
            let message = match &var {
                None => format!(
                    "Ordering::{ord} site could not be attributed to an atomic variable; name the receiver or justify with `// analyze: ordering({ord}): ...`"
                ),
                Some(var) => {
                    let rule = policy.atomics.iter().find(|r| {
                        (r.var == "*" || r.var == *var)
                            && r.file.as_ref().is_none_or(|f| file.rel.contains(f))
                    });
                    match rule {
                        None => format!(
                            "no [[atomic]] policy covers variable `{var}` (used with Ordering::{ord})"
                        ),
                        Some(rule) if rule.allowed.iter().any(|a| a == ord) => continue,
                        Some(rule) => format!(
                            "Ordering::{ord} on `{var}` violates policy (allowed: {}; policy reason: {})",
                            rule.allowed.join("/"),
                            rule.reason
                        ),
                    }
                }
            };
            match file.justification(line, "ordering", Some(ord)) {
                Some(why) => findings.push(Finding {
                    allowed_by: Some(why),
                    ..Finding::deny(LINT, &file.rel, line, message)
                }),
                None => findings.push(Finding::deny(LINT, &file.rel, line, message)),
            }
        }
    }
    findings
}

/// Names the receiver of the call whose argument list contains the
/// `Ordering` token at index `i`: walks backwards to the unmatched `(`,
/// then back over `.method` to the receiver chain.
fn call_receiver(file: &SourceFile, i: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = i;
    let open = loop {
        j = j.checked_sub(1)?;
        let t = &file.tokens[j];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            if depth == 0 {
                break j;
            }
            depth -= 1;
        } else if t.is_punct(";") || t.is_punct("{") {
            return None;
        }
    };
    let method = file.tokens.get(open.checked_sub(1)?)?;
    if method.kind != TokKind::Ident {
        return None;
    }
    let dot = file.tokens.get(open.checked_sub(2)?)?;
    if !dot.is_punct(".") {
        return None;
    }
    super::receiver_name(&file.tokens, open - 2)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::scan::scan_source;
    use std::path::PathBuf;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[[atomic]]
var = "stop"
allowed = ["Relaxed"]
reason = "advisory flag"
[[atomic]]
var = "*"
file = "cells.rs"
allowed = ["Relaxed"]
reason = "metric cells"
"#,
        )
        .unwrap()
    }

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        let f = scan_source(PathBuf::from(rel), rel.into(), "demo", src);
        run(&[f], &policy())
    }

    #[test]
    fn allowed_ordering_is_clean() {
        assert!(lint(
            "m.rs",
            "fn a(stop: A) { stop.store(true, Ordering::Relaxed); }"
        )
        .is_empty());
    }

    #[test]
    fn disallowed_ordering_is_flagged() {
        let out = lint("m.rs", "fn a(stop: A) { stop.load(Ordering::SeqCst); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("violates policy"));
    }

    #[test]
    fn unknown_variable_is_flagged() {
        let out = lint("m.rs", "fn a(x: A) { x.load(Ordering::Acquire); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no [[atomic]] policy"));
    }

    #[test]
    fn wildcard_rule_is_file_scoped() {
        assert!(lint(
            "cells.rs",
            "fn a(c: A) { c.0.fetch_add(1, Ordering::Relaxed); }"
        )
        .is_empty());
        assert_eq!(
            lint(
                "cells.rs",
                "fn a(c: A) { c.0.fetch_add(1, Ordering::SeqCst); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn justification_suppresses() {
        let out = lint(
            "m.rs",
            "fn a(stop: A) {\n    // analyze: ordering(SeqCst): legacy, scheduled for PR7\n    stop.load(Ordering::SeqCst);\n}",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].allowed_by.is_some());
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        assert!(lint(
            "m.rs",
            "fn a(x: u8, y: u8) { let _ = matches!(x.cmp(&y), Ordering::Less); }"
        )
        .is_empty());
    }

    #[test]
    fn fetch_update_names_receiver_for_both_orderings() {
        let out = lint(
            "m.rs",
            "fn a(stop: A) { stop.fetch_update(Ordering::SeqCst, Ordering::Relaxed, |b| Some(b)); }",
        );
        // SeqCst violates, Relaxed passes — exactly one finding, on `stop`.
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`stop`"));
    }
}
