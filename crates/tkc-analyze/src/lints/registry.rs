//! Registry-consistency lint: three cross-checks that keep name tables
//! from drifting apart.
//!
//! 1. **Metrics** — every metric name registered through tkc-obs
//!    (`reg.counter("tkc_...")` et al.) must appear in the DESIGN.md §9
//!    table, and every `tkc_*` series named in that table (modulo the
//!    `_bucket`/`_sum`/`_count` render suffixes) must have a
//!    registration site.
//! 2. **Failpoints** — every `"wal.*"`-shaped string literal in the
//!    workspace must be a canonical failpoint site, and each canonical
//!    site must appear both where sites are *defined* (tkc-faults) and
//!    where they are *used* (tkc-engine's WAL paths).
//! 3. **Wire verbs** — every canonical verb must appear on each coverage
//!    surface (proto parser, server dispatch, README, smoke tests), and
//!    every ALL-CAPS verb-shaped literal in proto.rs must be canonical.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::policy::Policy;
use crate::scan::SourceFile;
use std::collections::BTreeSet;
use std::path::Path;

const LINT: &str = "registry-consistency";

/// Registration methods on `MetricsRegistry` whose first argument is the
/// metric name.
const REGISTER_METHODS: &[&str] = &[
    "counter",
    "counter_with",
    "int_gauge",
    "gauge",
    "gauge_with",
    "histogram_seconds",
    "histogram_plain",
    "histogram_with",
];

/// Runs the lint. `root` is the analysis root (for reading doc/surface
/// files that are not Rust sources).
pub fn run(root: &Path, files: &[SourceFile], policy: &Policy) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_metrics(root, files, policy, &mut findings);
    check_failpoints(files, policy, &mut findings);
    check_verbs(root, files, policy, &mut findings);
    findings
}

fn push(findings: &mut Vec<Finding>, file: &SourceFile, line: u32, message: String) {
    match file.justification(line, "allow", Some(LINT)) {
        Some(why) => findings.push(Finding {
            allowed_by: Some(why),
            ..Finding::deny(LINT, &file.rel, line, message)
        }),
        None => findings.push(Finding::deny(LINT, &file.rel, line, message)),
    }
}

fn check_metrics(root: &Path, files: &[SourceFile], policy: &Policy, findings: &mut Vec<Finding>) {
    let Some(doc_rel) = &policy.metrics_doc else {
        return;
    };
    let doc_path = root.join(doc_rel);
    let Ok(doc_text) = std::fs::read_to_string(&doc_path) else {
        findings.push(Finding::deny(
            LINT,
            doc_rel,
            0,
            format!("metrics doc `{doc_rel}` is missing"),
        ));
        return;
    };
    let doc_names: BTreeSet<String> = metric_tokens(&doc_text).map(|(_, n)| n).collect();

    // Registration sites across non-test code.
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for file in files {
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if t.kind != TokKind::Ident
                || !REGISTER_METHODS.contains(&t.text.as_str())
                || !matches!(file.tokens.get(i + 1), Some(p) if p.is_punct("("))
                || file.in_test(i)
            {
                continue;
            }
            let Some(name_tok) = file.tokens.get(i + 2) else {
                continue;
            };
            if name_tok.kind != TokKind::Str || !name_tok.text.starts_with("tkc_") {
                continue;
            }
            registered.insert(name_tok.text.clone());
            if !doc_names.contains(&name_tok.text) {
                push(
                    findings,
                    file,
                    name_tok.line,
                    format!(
                        "metric `{}` is registered here but not documented in {doc_rel}",
                        name_tok.text
                    ),
                );
            }
        }
    }

    // Reverse direction: series named in table rows must be registered.
    for (lineno, line) in doc_text.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for (_, name) in metric_tokens(line) {
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(&name);
            if !registered.contains(&name) && !registered.contains(base) {
                findings.push(Finding::deny(
                    LINT,
                    doc_rel,
                    lineno as u32 + 1,
                    format!("documented metric `{name}` has no registration site in the workspace"),
                ));
            }
        }
    }
}

/// Yields `(byte_offset, name)` for every `tkc_[a-z0-9_]+` word in text.
fn metric_tokens(text: &str) -> impl Iterator<Item = (usize, String)> + '_ {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(pos) = text.get(i..).and_then(|s| s.find("tkc_")) {
        let start = i + pos;
        // Word boundary on the left.
        let bounded = start == 0
            || !bytes
                .get(start - 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        let mut end = start;
        while bytes
            .get(end)
            .is_some_and(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_')
        {
            end += 1;
        }
        // A name followed by `::` is a Rust module path (`tkc_core::x`),
        // not a metric series.
        let is_path = text.get(end..).is_some_and(|r| r.starts_with("::"));
        if bounded && !is_path && end > start + 4 {
            if let Some(name) = text.get(start..end) {
                out.push((start, name.trim_end_matches('_').to_string()));
            }
        }
        i = end.max(start + 4);
    }
    out.into_iter()
}

fn check_failpoints(files: &[SourceFile], policy: &Policy, findings: &mut Vec<Finding>) {
    if policy.failpoint_sites.is_empty() {
        return;
    }
    let canonical: BTreeSet<&str> = policy.failpoint_sites.iter().map(|s| s.as_str()).collect();
    let prefixes: BTreeSet<&str> = canonical
        .iter()
        .filter_map(|s| s.split('.').next())
        .collect();
    let mut seen_def: BTreeSet<&str> = BTreeSet::new();
    let mut seen_use: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokKind::Str || file.in_test(i) {
                continue;
            }
            let is_site_shaped = t.text.split_once('.').is_some_and(|(head, tail)| {
                prefixes.contains(head)
                    && !tail.is_empty()
                    && tail
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '_' || c == '.')
            });
            if !is_site_shaped {
                continue;
            }
            match canonical.iter().find(|s| **s == t.text) {
                None => push(
                    findings,
                    file,
                    t.line,
                    format!(
                        "failpoint-shaped string `{}` is not a canonical site ({})",
                        t.text,
                        policy.failpoint_sites.join(", ")
                    ),
                ),
                Some(site) => {
                    if policy
                        .failpoint_def
                        .as_ref()
                        .is_some_and(|p| file.rel.contains(p))
                    {
                        seen_def.insert(site);
                    }
                    if policy
                        .failpoint_use
                        .as_ref()
                        .is_some_and(|p| file.rel.contains(p))
                    {
                        seen_use.insert(site);
                    }
                }
            }
        }
    }
    for site in &canonical {
        if let Some(def) = &policy.failpoint_def {
            if !seen_def.contains(site) {
                findings.push(Finding::deny(
                    LINT,
                    def,
                    0,
                    format!("canonical failpoint `{site}` has no definition site under `{def}`"),
                ));
            }
        }
        if let Some(used) = &policy.failpoint_use {
            if !seen_use.contains(site) {
                findings.push(Finding::deny(
                    LINT,
                    used,
                    0,
                    format!("canonical failpoint `{site}` is never exercised under `{used}`"),
                ));
            }
        }
    }
}

fn check_verbs(root: &Path, files: &[SourceFile], policy: &Policy, findings: &mut Vec<Finding>) {
    if policy.verbs.is_empty() {
        return;
    }
    // Forward: every verb must appear (word-bounded) on every surface.
    for surface in &policy.verb_surfaces {
        let path = root.join(surface);
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(Finding::deny(
                LINT,
                surface,
                0,
                format!("verb surface `{surface}` is missing"),
            ));
            continue;
        };
        for verb in &policy.verbs {
            if !contains_word(&text, verb) {
                findings.push(Finding::deny(
                    LINT,
                    surface,
                    0,
                    format!("wire verb `{verb}` is not covered by `{surface}`"),
                ));
            }
        }
    }
    // Reverse: verb-shaped literals in the proto parser must be canonical.
    let canonical: BTreeSet<&str> = policy.verbs.iter().map(|s| s.as_str()).collect();
    for file in files {
        if !file.rel.ends_with("proto.rs") {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokKind::Str || file.in_test(i) {
                continue;
            }
            let verb_shaped = t.text.len() >= 3 && t.text.chars().all(|c| c.is_ascii_uppercase());
            if verb_shaped && !canonical.contains(t.text.as_str()) {
                push(
                    findings,
                    file,
                    t.line,
                    format!(
                        "proto literal `{}` looks like a wire verb but is not in the policy verb list",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Word-bounded containment: `needle` at a position where neither
/// neighbor is alphanumeric/underscore.
fn contains_word(text: &str, needle: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = text.get(from..).and_then(|s| s.find(needle)) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0
            || !bytes
                .get(start - 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        let right_ok = !bytes
            .get(end)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn metric_token_extraction() {
        let names: Vec<_> = metric_tokens("| `tkc_pool_jobs_total` | tkc_ab | not_tkc_b | tkc_ |")
            .map(|(_, n)| n)
            .collect();
        assert_eq!(names, vec!["tkc_pool_jobs_total", "tkc_ab"]);
    }

    #[test]
    fn word_bounds() {
        assert!(contains_word("send PING now", "PING"));
        assert!(!contains_word("sendPINGnow", "PING"));
        assert!(contains_word("(\"PING\")", "PING"));
    }
}
