//! `tkc-analyze` binary: run the project lints from the command line.
//!
//! ```text
//! tkc-analyze [--root DIR] [--policy FILE] [--format text|json]
//! ```
//!
//! Exit codes: 0 = no active findings, 1 = active findings, 2 = usage or
//! setup error. The same driver backs the `tkc analyze` subcommand.

use std::path::PathBuf;
use tkc_analyze::Format;

const USAGE: &str = "usage: tkc-analyze [--root DIR] [--policy FILE] [--format text|json]

Runs the workspace's project-specific lints (lock-order, atomic-ordering,
panic-surface, registry-consistency, invariant-freshness) as configured
by analyze.toml. Exit code 1 means non-allowlisted findings exist.";

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut root = PathBuf::from(".");
    let mut policy: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--policy" => match it.next() {
                Some(v) => policy = Some(PathBuf::from(v)),
                None => return usage_error("--policy needs a value"),
            },
            "--format" => match it.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage_error("--format must be `text` or `json`"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let policy = policy.unwrap_or_else(|| root.join("analyze.toml"));
    // analyze: allow(lock-order): io handle lock, not a synchronization mutex
    let mut stdout = std::io::stdout().lock();
    tkc_analyze::run_cli(&root, &policy, format, &mut stdout)
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("tkc-analyze: {msg}\n{USAGE}");
    2
}
