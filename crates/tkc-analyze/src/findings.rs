//! Finding model and text/JSON rendering.

use std::fmt;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational only; never fails the run.
    Warn,
    /// Fails the run unless allowlisted or justified.
    Deny,
}

impl Severity {
    /// Lowercase name used in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id (`lock-order`, `atomic-ordering`, `panic-surface`,
    /// `registry-consistency`, `invariant-freshness`).
    pub lint: &'static str,
    /// Gate level.
    pub severity: Severity,
    /// Root-relative file path.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// When suppressed, the allowlist reason or justification comment.
    pub allowed_by: Option<String>,
}

impl Finding {
    /// A deny-severity finding (the default for every project lint).
    pub fn deny(lint: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            lint,
            severity: Severity::Deny,
            file: file.to_string(),
            line,
            message,
            allowed_by: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity.as_str(),
            self.lint,
            self.file,
            self.line,
            self.message
        )?;
        if let Some(why) = &self.allowed_by {
            write!(f, " (allowed: {why})")?;
        }
        Ok(())
    }
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint, message).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the stable output order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.lint,
                b.message.as_str(),
            ))
        });
    }

    /// Findings not suppressed by an allowlist entry or justification.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed_by.is_none())
    }

    /// Count of active (gating) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Count of suppressed findings.
    pub fn allowed_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// Plain-text rendering: one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "tkc-analyze: {} file(s) scanned, {} finding(s) ({} allowlisted)\n",
            self.files_scanned,
            self.active_count(),
            self.allowed_count()
        ));
        out
    }

    /// JSON rendering with a stable schema:
    /// `{"findings": [...], "files_scanned": N, "active": N, "allowed": N}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"lint\": {}, ", json_str(f.lint)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_str(f.severity.as_str())
            ));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            match &f.allowed_by {
                Some(why) => out.push_str(&format!(", \"allowed_by\": {}}}", json_str(why))),
                None => out.push('}'),
            }
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"active\": {},\n  \"allowed\": {}\n}}\n",
            self.files_scanned,
            self.active_count(),
            self.allowed_count()
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn sort_and_counts() {
        let mut r = Report {
            findings: vec![
                Finding::deny("panic-surface", "b.rs", 3, "x".into()),
                Finding {
                    allowed_by: Some("fixture".into()),
                    ..Finding::deny("lock-order", "a.rs", 9, "y".into())
                },
            ],
            files_scanned: 2,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.active_count(), 1);
        assert_eq!(r.allowed_count(), 1);
    }

    #[test]
    fn json_escapes_and_schema() {
        let mut r = Report {
            findings: vec![Finding::deny(
                "atomic-ordering",
                "a.rs",
                1,
                "say \"hi\"\n".into(),
            )],
            files_scanned: 1,
        };
        r.sort();
        let js = r.render_json();
        assert!(js.contains("\"say \\\"hi\\\"\\n\""));
        assert!(js.contains("\"files_scanned\": 1"));
        assert!(js.contains("\"active\": 1"));
    }
}
