//! Workspace discovery and per-file structural scanning.
//!
//! The scanner walks every workspace crate's `src/` tree (members live
//! under `crates/*` and `shims/*`), lexes each file, and computes the
//! structural facts the lints share:
//!
//! - function spans (token ranges), so acquisition sites and calls can be
//!   attributed to the enclosing function;
//! - *test ranges* — `#[cfg(test)] mod` bodies and `#[test]` functions —
//!   which every lint skips;
//! - *debug-assert ranges* — token spans inside `debug_assert*!(...)`
//!   calls, which the panic-surface lint skips (an index that panics
//!   inside a `debug_assert!` is the assert working as intended);
//! - the comment side table, for `// analyze: ...` justifications.

use crate::lexer::{lex, CommentLine, Token};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A function item's location in a file's token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Bare function name (methods keep only the final identifier).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's opening `{` (== `end` for bodyless
    /// trait-method declarations).
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub end: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One scanned source file: tokens plus derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Path relative to the analysis root, `/`-separated.
    pub rel: String,
    /// Owning crate's directory name (e.g. `tkc-engine`).
    pub crate_name: String,
    /// Lexed tokens (comments excluded).
    pub tokens: Vec<Token>,
    /// Comment lines keyed by 1-based line number.
    pub comments: BTreeMap<u32, Vec<String>>,
    /// Token ranges `[start, end)` inside test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Token ranges `[start, end)` inside `debug_assert*!(...)` bodies.
    pub debug_assert_ranges: Vec<(usize, usize)>,
    /// Function spans in token order.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// True if token `i` falls in test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// True if token `i` falls inside a `debug_assert*!` invocation.
    pub fn in_debug_assert(&self, i: usize) -> bool {
        self.debug_assert_ranges
            .iter()
            .any(|&(s, e)| i >= s && i < e)
    }

    /// The innermost function containing token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| i >= f.start && i < f.end)
            .max_by_key(|f| f.start)
    }

    /// Looks for an `analyze: <kind>(<arg>)` justification comment on
    /// `line` or the two lines above it, returning the matched comment.
    /// `arg_filter`, when set, must match the parenthesized argument's
    /// leading identifier (e.g. the lint id, or an ordering name).
    pub fn justification(&self, line: u32, kind: &str, arg_filter: Option<&str>) -> Option<String> {
        let lo = line.saturating_sub(2);
        for l in (lo..=line).rev() {
            for text in self.comments.get(&l).into_iter().flatten() {
                if let Some(rest) = text.trim().strip_prefix("analyze:") {
                    let rest = rest.trim();
                    if let Some(args) = rest
                        .strip_prefix(kind)
                        .and_then(|r| r.trim_start().strip_prefix('('))
                    {
                        let arg_head: String = args
                            .chars()
                            .take_while(|c| *c != ')' && *c != ',')
                            .collect();
                        match arg_filter {
                            Some(want) if arg_head.trim() != want => continue,
                            _ => return Some(text.clone()),
                        }
                    }
                }
            }
        }
        None
    }
}

/// Scans every workspace source file under `root`.
///
/// Directories named `target`, `fixtures`, `tests`, `benches`, and
/// `examples` are skipped: the lints gate shipped library/binary code,
/// and fixture trees under `tests/fixtures/` intentionally contain
/// violations.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for member_dir in ["crates", "shims"] {
        let dir = root.join(member_dir);
        if !dir.is_dir() {
            continue;
        }
        let mut crates: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for crate_dir in crates {
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = crate_dir.join("src");
            if src.is_dir() {
                walk_rs(&src, root, &crate_name, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Scans a single file (used by unit tests and the registry lint's
/// auxiliary file handling).
pub fn scan_file(path: &Path, root: &Path, crate_name: &str) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(path)?;
    Ok(scan_source(
        path.to_path_buf(),
        rel_of(path, root),
        crate_name,
        &src,
    ))
}

fn rel_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(
                name.as_deref(),
                Some("target" | "fixtures" | "tests" | "benches" | "examples")
            ) {
                continue;
            }
            walk_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(scan_file(&path, root, crate_name)?);
        }
    }
    Ok(())
}

/// Builds the structural model from already-lexed source.
pub fn scan_source(path: PathBuf, rel: String, crate_name: &str, src: &str) -> SourceFile {
    let (tokens, comment_lines) = lex(src);
    let mut comments: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for CommentLine { line, text } in comment_lines {
        comments.entry(line).or_default().push(text);
    }
    let test_ranges = find_test_ranges(&tokens);
    let debug_assert_ranges = find_macro_ranges(&tokens, |name| name.starts_with("debug_assert"));
    let fns = find_fns(&tokens);
    SourceFile {
        path,
        rel,
        crate_name: crate_name.to_string(),
        tokens,
        comments,
        test_ranges,
        debug_assert_ranges,
        fns,
    }
}

/// Token index one past the `}` / `)` / `]` matching the opener at `open`.
/// Returns `tokens.len()` on unbalanced input (fail open: the span runs to
/// end of file rather than being silently dropped).
fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    tokens.len()
}

/// Does an attribute `#[...]` whose first path segment chain contains
/// `needle` appear ending just before token `i`? Scans backwards over a
/// run of attributes.
fn has_attr_before(tokens: &[Token], mut i: usize, needle: &str) -> bool {
    // Walk backwards over zero or more `#[ ... ]` groups.
    while i >= 1 {
        if !tokens[i - 1].is_punct("]") {
            return false;
        }
        // Find the matching `[` backwards.
        let mut depth = 0usize;
        let mut j = i - 1;
        loop {
            if tokens[j].is_punct("]") {
                depth += 1;
            } else if tokens[j].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || !tokens[j - 1].is_punct("#") {
            return false;
        }
        if tokens[j..i].iter().any(|t| t.is_ident(needle)) {
            return true;
        }
        i = j - 1; // continue past this attribute to the one above it
    }
    false
}

fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        // `#[cfg(test)] mod name { ... }` — the whole body is test code.
        if t.is_ident("mod")
            && tokens
                .get(i + 1)
                .map(|n| n.kind == crate::lexer::TokKind::Ident)
                == Some(true)
            && tokens.get(i + 2).map(|b| b.is_punct("{")) == Some(true)
            && has_attr_before(tokens, i, "cfg")
            && attr_run_mentions_test(tokens, i)
        {
            let end = matching_close(tokens, i + 2);
            ranges.push((i, end));
            i = end;
            continue;
        }
        // `#[test] fn name() { ... }`.
        if t.is_ident("fn") && has_attr_before(tokens, i, "test") {
            if let Some(body) = (i..tokens.len()).find(|&j| tokens[j].is_punct("{")) {
                let end = matching_close(tokens, body);
                ranges.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Do the attributes immediately before token `i` contain the ident
/// `test` (e.g. `#[cfg(test)]`, `#[cfg(all(test, feature = "x"))]`)?
fn attr_run_mentions_test(tokens: &[Token], i: usize) -> bool {
    has_attr_before(tokens, i, "test")
}

/// Token spans of `name!(...)` / `name![...]` invocations whose macro
/// name satisfies `pred`.
fn find_macro_ranges(tokens: &[Token], pred: impl Fn(&str) -> bool) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].kind == crate::lexer::TokKind::Ident
            && pred(&tokens[i].text)
            && tokens[i + 1].is_punct("!")
            && (tokens[i + 2].is_punct("(") || tokens[i + 2].is_punct("["))
        {
            let end = matching_close(tokens, i + 2);
            ranges.push((i, end));
            i = end;
            continue;
        }
        i += 1;
    }
    ranges
}

fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != crate::lexer::TokKind::Ident {
            continue; // `fn(` in a function-pointer type
        }
        // Find the body's `{`, skipping the signature. A `;` first means
        // a bodyless trait-method declaration. Skip over any braces that
        // appear inside the signature (e.g. `-> impl Fn() -> Foo<{N}>` is
        // not expected in this codebase; plain scan suffices).
        let mut j = i + 2;
        let mut depth_paren = 0i32;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth_paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth_paren -= 1;
            } else if depth_paren == 0 && t.is_punct("{") {
                body = Some(j);
                break;
            } else if depth_paren == 0 && t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(body) = body else {
            continue;
        };
        let end = matching_close(tokens, body);
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            start: i,
            body_start: body,
            end,
            line: tokens[i].line,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn scan(src: &str) -> SourceFile {
        scan_source(PathBuf::from("mem.rs"), "mem.rs".into(), "demo", src)
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let f = scan("fn a() { inner(); }\nfn b(x: u32) -> u32 { x }\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "a");
        assert_eq!(f.fns[1].name, "b");
        let inner_idx = f.tokens.iter().position(|t| t.is_ident("inner")).unwrap();
        assert_eq!(f.enclosing_fn(inner_idx).unwrap().name, "a");
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let f = scan("fn live() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n}\n");
        let helper = f.tokens.iter().position(|t| t.is_ident("helper")).unwrap();
        let live = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(f.in_test(helper));
        assert!(!f.in_test(live));
    }

    #[test]
    fn test_attr_fn_is_a_test_range() {
        let f = scan("#[test]\nfn check() { body(); }\nfn live() {}\n");
        let body = f.tokens.iter().position(|t| t.is_ident("body")).unwrap();
        assert!(f.in_test(body));
    }

    #[test]
    fn debug_assert_bodies_are_marked() {
        let f = scan("fn a(v: &Vec<u32>) { debug_assert!(v[0] > 1); let x = v[1]; }");
        let mut brackets = f.tokens.iter().enumerate().filter(|(_, t)| t.is_punct("["));
        let first = brackets.next().unwrap().0;
        let second = brackets.next().unwrap().0;
        assert!(f.in_debug_assert(first));
        assert!(!f.in_debug_assert(second));
    }

    #[test]
    fn justification_lookup_matches_kind_and_arg() {
        let f = scan(
            "// analyze: allow(panic-surface): index guarded above\nlet x = v[0];\nlet y = v[1];\n",
        );
        assert!(f.justification(2, "allow", Some("panic-surface")).is_some());
        assert!(f.justification(2, "allow", Some("lock-order")).is_none());
        // Line 3 is more than 2 lines below the comment... it is within 2.
        assert!(f.justification(3, "allow", Some("panic-surface")).is_some());
        assert!(f.justification(1, "ordering", None).is_none());
    }
}
