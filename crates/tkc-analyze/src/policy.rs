//! `analyze.toml` policy: what the lints enforce and what is excused.
//!
//! The parser handles the TOML subset the policy file actually uses —
//! `[table]` headers, `[[array-of-table]]` headers, `key = "string"`,
//! `key = integer`, `key = true/false`, `key = ["a", "b"]`, and `#`
//! comments. It is std-only by design; anything outside the subset is a
//! hard error so policy typos fail loudly instead of silently relaxing a
//! gate.

use std::collections::BTreeMap;
use std::path::Path;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"..."` string.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// Array of strings.
    List(Vec<String>),
}

type Table = BTreeMap<String, Value>;

/// Per-variable atomic ordering rule.
#[derive(Debug, Clone)]
pub struct AtomicRule {
    /// Variable name (last named identifier of the receiver chain), or
    /// `"*"` to match any variable (use with `file` scoping).
    pub var: String,
    /// Optional path fragment the site's file must contain.
    pub file: Option<String>,
    /// Allowed `Ordering::` names for this variable.
    pub allowed: Vec<String>,
    /// Why this policy is correct.
    pub reason: String,
}

/// One declared lock with its recognizers.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Lock id used in the hierarchy (e.g. `engine.writer`).
    pub id: String,
    /// Field/variable names whose `.lock()`/`.read()`/`.write()` acquire it.
    pub fields: Vec<String>,
    /// Helper functions that acquire it (e.g. `lock_writer`).
    pub acquirers: Vec<String>,
}

/// Allowlist entry suppressing matching findings.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id the entry applies to.
    pub lint: String,
    /// Path fragment the finding's file must contain.
    pub path: String,
    /// Optional exact line.
    pub line: Option<u32>,
    /// Optional substring of the finding message.
    pub contains: Option<String>,
    /// Mandatory human reason (rendered in output).
    pub reason: String,
}

/// The whole policy file.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Lock ids, outermost first. An edge from a later id to an earlier
    /// one is a lock-order violation.
    pub lock_hierarchy: Vec<String>,
    /// Declared locks.
    pub locks: Vec<LockDecl>,
    /// Atomic ordering rules, first match wins.
    pub atomics: Vec<AtomicRule>,
    /// Crates the panic-surface lint gates.
    pub strict_crates: Vec<String>,
    /// Canonical wire verbs.
    pub verbs: Vec<String>,
    /// Files that must mention every verb (root-relative path fragments).
    pub verb_surfaces: Vec<String>,
    /// Canonical failpoint site names.
    pub failpoint_sites: Vec<String>,
    /// Path fragment of files *defining* the sites (e.g. tkc-faults).
    pub failpoint_def: Option<String>,
    /// Path fragment of files *using* the sites (e.g. tkc-engine).
    pub failpoint_use: Option<String>,
    /// Markdown file metric names are documented in (root-relative).
    pub metrics_doc: Option<String>,
    /// Crates whose `debug_assert!`s are checked for invariant tags.
    pub invariant_crates: Vec<String>,
    /// Message/comment keywords that mark an assert as invariant-bearing.
    pub invariant_keywords: Vec<String>,
    /// Path fragment of the crate holding the referenced verify checks.
    pub verify_path: Option<String>,
    /// Allowlist.
    pub allow: Vec<AllowEntry>,
}

impl Policy {
    /// Loads and validates a policy file.
    pub fn load(path: &Path) -> Result<Policy, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read policy {}: {e}", path.display()))?;
        Policy::parse(&text)
    }

    /// Parses policy text.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let doc = parse_toml(text)?;
        let mut p = Policy::default();

        if let Some(t) = doc.tables.get("lock-order") {
            p.lock_hierarchy = get_list(t, "hierarchy");
        }
        for t in doc.arrays.get("lock").into_iter().flatten() {
            p.locks.push(LockDecl {
                id: get_str(t, "id").ok_or("lock entry missing `id`")?,
                fields: get_list(t, "fields"),
                acquirers: get_list(t, "acquirers"),
            });
        }
        for t in doc.arrays.get("atomic").into_iter().flatten() {
            p.atomics.push(AtomicRule {
                var: get_str(t, "var").ok_or("atomic entry missing `var`")?,
                file: get_str(t, "file"),
                allowed: get_list(t, "allowed"),
                reason: get_str(t, "reason").ok_or("atomic entry missing `reason`")?,
            });
        }
        if let Some(t) = doc.tables.get("panic-surface") {
            p.strict_crates = get_list(t, "strict_crates");
        }
        if let Some(t) = doc.tables.get("registry") {
            p.verbs = get_list(t, "verbs");
            p.verb_surfaces = get_list(t, "verb_surfaces");
            p.failpoint_sites = get_list(t, "failpoint_sites");
            p.failpoint_def = get_str(t, "failpoint_def");
            p.failpoint_use = get_str(t, "failpoint_use");
            p.metrics_doc = get_str(t, "metrics_doc");
        }
        if let Some(t) = doc.tables.get("invariants") {
            p.invariant_crates = get_list(t, "crates");
            p.invariant_keywords = get_list(t, "keywords");
            p.verify_path = get_str(t, "verify_path");
        }
        for t in doc.arrays.get("allow").into_iter().flatten() {
            p.allow.push(AllowEntry {
                lint: get_str(t, "lint").ok_or("allow entry missing `lint`")?,
                path: get_str(t, "path").ok_or("allow entry missing `path`")?,
                line: get_int(t, "line").map(|v| v as u32),
                contains: get_str(t, "contains"),
                reason: get_str(t, "reason").ok_or("allow entry missing `reason`")?,
            });
        }

        for lock in &p.locks {
            if !p.lock_hierarchy.contains(&lock.id) {
                return Err(format!(
                    "lock `{}` is declared but absent from [lock-order].hierarchy",
                    lock.id
                ));
            }
        }
        Ok(p)
    }

    /// Finds the allowlist entry matching a finding, if any.
    pub fn allow_for(
        &self,
        lint: &str,
        file: &str,
        line: u32,
        message: &str,
    ) -> Option<&AllowEntry> {
        self.allow.iter().find(|a| {
            a.lint == lint
                && file.contains(&a.path)
                && a.line.is_none_or(|l| l == line)
                && a.contains.as_ref().is_none_or(|c| message.contains(c))
        })
    }
}

fn get_str(t: &Table, key: &str) -> Option<String> {
    match t.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_int(t: &Table, key: &str) -> Option<i64> {
    match t.get(key) {
        Some(Value::Int(v)) => Some(*v),
        _ => None,
    }
}

fn get_list(t: &Table, key: &str) -> Vec<String> {
    match t.get(key) {
        Some(Value::List(v)) => v.clone(),
        _ => Vec::new(),
    }
}

/// Parsed document: plain tables and arrays-of-tables.
struct TomlDoc {
    tables: BTreeMap<String, Table>,
    arrays: BTreeMap<String, Vec<Table>>,
}

enum Target {
    Table(String),
    Array(String),
}

fn parse_toml(text: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc {
        tables: BTreeMap::new(),
        arrays: BTreeMap::new(),
    };
    let mut target = Target::Table(String::new());
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("analyze.toml:{}: {msg}", lineno + 1);
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::Array(name);
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"').to_string();
            let value = parse_value(line[eq + 1..].trim()).map_err(|e| err(&e))?;
            let table = match &target {
                Target::Table(name) => doc.tables.entry(name.clone()).or_default(),
                Target::Array(name) => doc
                    .arrays
                    .get_mut(name)
                    .and_then(|v| v.last_mut())
                    .ok_or_else(|| err("key outside any table"))?,
            };
            table.insert(key, value);
        } else {
            return Err(err(&format!("unsupported syntax: `{line}`")));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: `{s}`"))?;
        return Ok(Value::Str(unescape(body)));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("multi-line arrays are not supported; keep arrays on one line")?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let item = rest
                .strip_prefix('"')
                .ok_or_else(|| format!("array items must be strings: `{rest}`"))?;
            let end = item
                .find('"')
                .ok_or_else(|| format!("unterminated string in array: `{rest}`"))?;
            items.push(unescape(&item[..end]));
            rest = item[end + 1..].trim().trim_start_matches(',').trim();
        }
        return Ok(Value::List(items));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value: `{s}`"))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    const SAMPLE: &str = r#"
# policy
[lock-order]
hierarchy = ["engine.writer", "obs.families"]

[[lock]]
id = "engine.writer"
fields = ["writer"]
acquirers = ["lock_writer"]

[[atomic]]
var = "stop"
allowed = ["Relaxed"]
reason = "advisory flag"

[panic-surface]
strict_crates = ["tkc-engine"]

[registry]
verbs = ["PING", "QUIT"]
metrics_doc = "DESIGN.md"

[invariants]
crates = ["tkc-core"]
keywords = ["Rule 0", "monoton"]
verify_path = "crates/tkc-verify/src"

[[allow]]
lint = "panic-surface"
path = "wal.rs"  # trailing comment
line = 42
reason = "bounds proven by header check"
"#;

    #[test]
    fn parses_full_policy() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.lock_hierarchy, vec!["engine.writer", "obs.families"]);
        assert_eq!(p.locks[0].acquirers, vec!["lock_writer"]);
        assert_eq!(p.atomics[0].allowed, vec!["Relaxed"]);
        assert_eq!(p.strict_crates, vec!["tkc-engine"]);
        assert_eq!(p.verbs, vec!["PING", "QUIT"]);
        assert_eq!(p.invariant_keywords[0], "Rule 0");
        assert_eq!(p.allow[0].line, Some(42));
    }

    #[test]
    fn allow_matching() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert!(p
            .allow_for("panic-surface", "crates/tkc-engine/src/wal.rs", 42, "x")
            .is_some());
        assert!(p
            .allow_for("panic-surface", "crates/tkc-engine/src/wal.rs", 43, "x")
            .is_none());
        assert!(p.allow_for("lock-order", "wal.rs", 42, "x").is_none());
    }

    #[test]
    fn undeclared_hierarchy_lock_is_an_error() {
        let bad = "[[lock]]\nid = \"x\"\n";
        assert!(Policy::parse(bad).unwrap_err().contains("hierarchy"));
    }

    #[test]
    fn bad_syntax_is_loud() {
        assert!(Policy::parse("key = {a = 1}").is_err());
        assert!(Policy::parse("just words").is_err());
    }
}
