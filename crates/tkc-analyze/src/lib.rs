//! # tkc-analyze — project-specific static analysis for the tkc workspace
//!
//! Generic lints (clippy, rustc) cannot see the *project's* invariants:
//! which lock outranks which, which atomic is a counter and which
//! publishes an epoch, which string tables (metrics, failpoints, wire
//! verbs) must stay in sync across crates, and which `debug_assert!`s
//! mirror a tkc-verify oracle. This crate closes that gap with a
//! std-only, `syn`-free analyzer: a hand-rolled Rust lexer
//! ([`lexer`]), a structural scanner ([`scan`]) that attributes tokens
//! to functions and skips test/debug-assert regions, and five lints
//! ([`lints`]) driven by a committed policy file (`analyze.toml`,
//! [`policy`]):
//!
//! | lint id | enforces |
//! |---|---|
//! | `lock-order` | acquisitions (incl. through direct calls) respect the declared hierarchy; no self-reacquire; no undeclared locks |
//! | `atomic-ordering` | every `Ordering::*` site matches the per-variable policy table or carries `// analyze: ordering(..)` |
//! | `panic-surface` | no `unwrap`/`expect`/indexing/unguarded division in strict crates' non-test paths |
//! | `registry-consistency` | metric names ↔ DESIGN.md §9, failpoint sites ↔ WAL call sites, wire verbs ↔ dispatch/docs/smoke |
//! | `invariant-freshness` | Rule 0 / peel-monotonicity `debug_assert!`s reference an existing tkc-verify check |
//!
//! Run it as `tkc analyze` or `cargo run -p tkc-analyze -- --format json`.
//! CI fails on any finding that is neither justified inline nor matched
//! by an `[[allow]]` entry in the policy file.

// This crate is offline analysis tooling, not a serving path: token
// walks index into slices they just bounds-derived, and the binary
// reports errors by message rather than recovering. The strict
// panic-surface discipline applies to tkc-engine/tkc-graph, not here.
#![allow(clippy::indexing_slicing)]
#![warn(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod scan;

use findings::Report;
use policy::Policy;
use std::path::Path;

/// Scans the workspace under `root` and runs every lint with `policy`,
/// returning the allowlist-applied, stably-sorted report.
pub fn analyze(root: &Path, policy: &Policy) -> std::io::Result<Report> {
    let files = scan::scan_workspace(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    report
        .findings
        .extend(lints::lock_order::run(&files, policy));
    report
        .findings
        .extend(lints::atomic_ordering::run(&files, policy));
    report
        .findings
        .extend(lints::panic_surface::run(&files, policy));
    report
        .findings
        .extend(lints::registry::run(root, &files, policy));
    report
        .findings
        .extend(lints::invariants::run(&files, policy));
    for f in &mut report.findings {
        if f.allowed_by.is_none() {
            if let Some(entry) = policy.allow_for(f.lint, &f.file, f.line, &f.message) {
                f.allowed_by = Some(entry.reason.clone());
            }
        }
    }
    report.sort();
    Ok(report)
}

/// Output format for [`run_cli`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One line per finding plus a summary.
    Text,
    /// Stable JSON schema for tooling (`scripts/analyze_report.py`).
    Json,
}

/// Shared driver for the standalone binary and the `tkc analyze`
/// subcommand: loads the policy, analyzes `root`, writes the rendered
/// report to `out`, and returns the process exit code (0 = clean,
/// 1 = active findings, 2 = setup error).
pub fn run_cli(
    root: &Path,
    policy_path: &Path,
    format: Format,
    out: &mut dyn std::io::Write,
) -> i32 {
    let policy = match Policy::load(policy_path) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(out, "tkc-analyze: {e}");
            return 2;
        }
    };
    let report = match analyze(root, &policy) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "tkc-analyze: scan failed: {e}");
            return 2;
        }
    };
    let rendered = match format {
        Format::Text => report.render_text(),
        Format::Json => report.render_json(),
    };
    let _ = out.write_all(rendered.as_bytes());
    i32::from(report.active_count() > 0)
}
