//! A small Rust lexer — just enough fidelity for the project lints.
//!
//! The analyzer deliberately avoids `syn` (the workspace is built against
//! an offline, std-only dependency set), so this module hand-rolls the
//! token classes the lints care about: identifiers, punctuation, numeric
//! and string literals (including raw strings and byte strings), char
//! literals vs. lifetimes, and both comment styles (nested block comments
//! included). Comments are not emitted as tokens; they are collected into
//! a per-line side table so lints can look up `// analyze: ...`
//! justifications next to a finding without the token matchers having to
//! skip them.

/// Token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Ordering`, `unwrap`, ...).
    Ident,
    /// `'a` in generics/references (not a char literal).
    Lifetime,
    /// Integer or float literal (including tuple indices like `0`).
    Num,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    /// `text` holds the *unquoted* body for plain strings and raw
    /// strings; escape sequences are left as written.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation. Multi-char `::` is joined; everything else is one
    /// character per token.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind::Str`] for the string convention).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment's source line and text (without the `//` / `/*` markers,
/// trimmed). Block comments produce one entry per line they span.
#[derive(Debug, Clone)]
pub struct CommentLine {
    /// 1-based line number.
    pub line: u32,
    /// Trimmed comment text.
    pub text: String,
}

/// Lex `src` into tokens plus a comment side table.
pub fn lex(src: &str) -> (Vec<Token>, Vec<CommentLine>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<CommentLine>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if c == Some('\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<CommentLine>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' if self.raw_string_ahead(1) => {
                    self.bump(); // r
                    self.raw_string(line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    self.char_body(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string(line);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".to_string(), line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        (self.tokens, self.comments)
    }

    /// Does a raw-string opener (`#*"` ... ) start at `self.pos + at`?
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(CommentLine {
            line,
            text: text.trim_start_matches(['/', '!']).trim().to_string(),
        });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        let mut line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else if c == '\n' {
                self.comments.push(CommentLine {
                    line,
                    text: text.trim_matches(['*', '!', ' ']).to_string(),
                });
                text.clear();
                self.bump();
                line = self.line;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(CommentLine {
            line,
            text: text.trim_matches(['*', '!', ' ']).to_string(),
        });
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Need `hashes` following '#' to close.
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a'` is a char; `'a` (not followed by a closing quote) is a
        // lifetime; `'\n'` is always a char.
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.bump(); // '
            self.char_body(line);
        }
    }

    fn char_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '\'' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `self.0.load` does not —
                // the `.` there is followed by an identifier.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_paths_and_numbers() {
        let toks = kinds("self.0.load(Ordering::Relaxed) + 1.5x");
        assert_eq!(toks[0], (TokKind::Ident, "self".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Num, "0".into()));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5x".into())));
    }

    #[test]
    fn strings_raw_strings_and_chars() {
        let toks = kinds(r####"("a\"b", r#"raw "x" body"#, b"bytes", 'c', '\n', &'a str)"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(strs, vec!["a\\\"b", "raw \"x\" body", "bytes"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["c", "\\n"]);
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
    }

    #[test]
    fn comments_are_side_tabled_not_tokens() {
        let (toks, comments) = lex("x // analyze: allow(panic-surface): fine\n/* multi\nline */ y");
        let idents: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["x", "y"]);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.starts_with("analyze: allow"));
        assert!(comments.iter().any(|c| c.text.contains("multi")));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, _) = lex("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn ordering_in_string_is_not_an_ident() {
        let (toks, _) = lex(r#"let s = "Ordering::SeqCst";"#);
        assert!(!toks.iter().any(|t| t.is_ident("Ordering")));
    }
}
