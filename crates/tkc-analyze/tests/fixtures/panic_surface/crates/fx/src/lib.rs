//! Panic-surface fixture. Expected findings, in file order:
//! 1. indexing (`v[i]`)
//! 2. `.unwrap()`
//! 3. `.expect()`
//! 4. `%` with a non-literal divisor
//! 5. justified indexing (reported as allowed, does not gate)
//!
//! Not flagged: indexing inside `debug_assert!`, anything under
//! `#[cfg(test)]`, float division, literal divisors.

pub fn risky(v: &[u32], i: usize, d: u32) -> u32 {
    debug_assert!(v[0] > 0, "debug-assert bodies are exempt");
    let a = v[i];
    let b = v.get(i).copied().unwrap();
    let c = v.first().copied().expect("nonempty");
    a + b + c + (a % d) + (a / 2)
}

pub fn float_division(x: f64, y: f64) -> f64 {
    x / y
}

pub fn justified(v: &[u32]) -> u32 {
    // analyze: allow(panic-surface): caller guarantees non-empty per the type's contract
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = [1u32, 2];
        assert_eq!(v[0], v[1] - 1);
    }
}
