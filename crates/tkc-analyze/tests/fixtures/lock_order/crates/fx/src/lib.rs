//! Lock-order fixture. Expected findings, in file order:
//! 1. `inversion`      — acquires alpha while holding beta.
//! 2. `through_a_call` — calls a helper that acquires alpha while
//!    holding beta.
//! 3. `reacquire`      — takes fx.alpha twice (self-deadlock).
//! 4. `undeclared`     — `.lock()` on a receiver the policy doesn't know.
//! 5. `justified`      — same as 4 but carries an inline justification
//!    (reported as allowed, does not gate).

pub fn inversion(alpha: &M, beta: &M) {
    let _b = beta.lock();
    let _a = alpha.lock();
}

fn takes_alpha(alpha: &M) {
    let _a = alpha.lock();
}

pub fn through_a_call(alpha: &M, beta: &M) {
    let _b = beta.lock();
    takes_alpha(alpha);
}

pub fn reacquire(alpha: &M) {
    let _one = lock_alpha(alpha);
    let _two = lock_alpha(alpha);
}

pub fn undeclared(other: &M) {
    let _g = other.lock();
}

pub fn justified(handle: &M) {
    // analyze: allow(lock-order): io handle lock, not a synchronization mutex
    let _g = handle.lock();
}

pub fn correct_order(alpha: &M, beta: &M) {
    let _a = alpha.lock();
    let _b = beta.lock();
}
