//! Fixture proto parser: `NOPE` is not in the policy verb list.

pub fn parse(line: &str) -> Option<Cmd> {
    match line {
        "PING" => Some(Cmd::Ping),
        "STATS" => Some(Cmd::Stats),
        "NOPE" => Some(Cmd::Nope),
        _ => None,
    }
}
