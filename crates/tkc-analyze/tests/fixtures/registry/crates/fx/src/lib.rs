//! Registry fixture. Expected findings:
//! 1. `tkc_registered_only` registered here but absent from DESIGN.md.
//! 2. `tkc_documented_only` documented but never registered (in the doc).
//! 3. `"wal.bogus"` is failpoint-shaped but not canonical.
//! 4. STATS missing from README.md (on the surface).
//! 5. `"NOPE"` in proto.rs is verb-shaped but not canonical.

mod proto;

pub fn register(reg: &Registry) {
    let _a = reg.counter("tkc_both_sides", "documented and registered");
    let _b = reg.counter("tkc_registered_only", "missing from the doc");
}

pub fn exercise_failpoints(f: &Faults) {
    f.hit("wal.append");
    f.hit("wal.bogus");
}
