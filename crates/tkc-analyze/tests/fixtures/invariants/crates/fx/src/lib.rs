//! Invariant-freshness fixture. Expected findings, in file order:
//! 1. keyword-bearing debug_assert with no `// analyze: invariant(..)`.
//! 2. tag naming a check that does not exist under verify/src.
//!
//! The third assert is correctly tagged; the fourth mentions no keyword
//! and needs no tag.

pub fn peel(k: u32, prev: u32, len: usize) {
    debug_assert!(k >= prev, "peel monotonicity violated");

    // analyze: invariant(check_that_was_renamed)
    debug_assert!(k >= prev, "rule0 locality violated");

    // analyze: invariant(real_check)
    debug_assert!(k >= prev, "monotonic peel order");

    debug_assert!(len > 0, "unrelated assert, no keyword");
}
