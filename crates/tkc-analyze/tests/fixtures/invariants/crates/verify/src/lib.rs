//! Fixture oracle crate: the one check invariant tags may reference.

pub fn real_check(kappa: &[u32]) -> bool {
    kappa.windows(2).all(|w| w[0] <= w[1])
}
