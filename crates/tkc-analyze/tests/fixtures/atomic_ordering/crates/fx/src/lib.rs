//! Atomic-ordering fixture. Expected findings, in file order:
//! 1. `violates`  — SeqCst on `flag`, whose policy allows only Relaxed.
//! 2. `uncovered` — an Ordering site on a variable no rule covers.
//! 3. `justified` — out-of-policy ordering carrying an inline
//!    `// analyze: ordering(..)` (reported as allowed, does not gate).

pub fn within_policy(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn violates(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn uncovered(other: &AtomicBool) -> bool {
    other.load(Ordering::Acquire)
}

pub fn justified(flag: &AtomicBool) -> bool {
    // analyze: ordering(Acquire): pairs with the Release store in the (hypothetical) publisher
    flag.load(Ordering::Acquire)
}
