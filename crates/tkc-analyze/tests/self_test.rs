//! Fixture self-tests: each fixture under `tests/fixtures/<lint>/` is a
//! miniature workspace whose policy enables exactly one lint, and whose
//! sources trip it a known number of times. The counts are exact so a
//! lint that goes blind (0 findings) or trigger-happy (extra findings)
//! fails loudly, and a golden-JSON test pins the output schema that
//! `scripts/analyze_report.py` and CI consume.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

use std::path::{Path, PathBuf};
use tkc_analyze::findings::Report;
use tkc_analyze::policy::Policy;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Report {
    let root = fixture_root(name);
    let policy = Policy::load(&root.join("analyze.toml")).unwrap();
    tkc_analyze::analyze(&root, &policy).unwrap()
}

/// Every finding must come from the one lint the fixture enables.
fn assert_single_lint(report: &Report, lint: &str) {
    for f in &report.findings {
        assert_eq!(f.lint, lint, "stray finding: {f}");
    }
}

#[test]
fn lock_order_fixture() {
    let report = run_fixture("lock_order");
    assert_single_lint(&report, "lock-order");
    assert_eq!(report.active_count(), 4, "{}", report.render_text());
    assert_eq!(report.allowed_count(), 1, "{}", report.render_text());
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.allowed_by.is_none())
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages
        .iter()
        .any(|m| m.contains("contradicting the declared hierarchy")));
    assert!(messages
        .iter()
        .any(|m| m.contains("calls into code that acquires")));
    assert!(messages.iter().any(|m| m.contains("self-deadlock")));
    assert!(messages.iter().any(|m| m.contains("not a declared lock")));
}

#[test]
fn atomic_ordering_fixture() {
    let report = run_fixture("atomic_ordering");
    assert_single_lint(&report, "atomic-ordering");
    assert_eq!(report.active_count(), 2, "{}", report.render_text());
    assert_eq!(report.allowed_count(), 1, "{}", report.render_text());
}

#[test]
fn panic_surface_fixture() {
    let report = run_fixture("panic_surface");
    assert_single_lint(&report, "panic-surface");
    assert_eq!(report.active_count(), 4, "{}", report.render_text());
    assert_eq!(report.allowed_count(), 1, "{}", report.render_text());
}

#[test]
fn registry_fixture() {
    let report = run_fixture("registry");
    assert_single_lint(&report, "registry-consistency");
    assert_eq!(report.active_count(), 5, "{}", report.render_text());
    assert_eq!(report.allowed_count(), 0, "{}", report.render_text());
}

#[test]
fn invariants_fixture() {
    let report = run_fixture("invariants");
    assert_single_lint(&report, "invariant-freshness");
    assert_eq!(report.active_count(), 2, "{}", report.render_text());
    assert_eq!(report.allowed_count(), 0, "{}", report.render_text());
}

/// The JSON schema is a contract with CI and `scripts/analyze_report.py`;
/// any change must be deliberate (regenerate with
/// `cargo run -p tkc-analyze -- --root tests/fixtures/atomic_ordering \
///  --policy tests/fixtures/atomic_ordering/analyze.toml --format json`).
#[test]
fn golden_json_is_stable() {
    let report = run_fixture("atomic_ordering");
    let golden_path = fixture_root("atomic_ordering").join("expected.json");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        report.render_json().trim(),
        golden.trim(),
        "JSON output drifted from {}",
        golden_path.display()
    );
}

/// The real workspace must be clean: every finding either fixed,
/// justified inline, or allowlisted in analyze.toml. This is the same
/// gate CI applies via `tkc analyze`.
#[test]
fn workspace_has_no_active_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let policy = Policy::load(&root.join("analyze.toml")).unwrap();
    let report = tkc_analyze::analyze(&root, &policy).unwrap();
    let active: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.allowed_by.is_none())
        .map(|f| f.to_string())
        .collect();
    assert!(
        active.is_empty(),
        "workspace has {} active finding(s):\n{}",
        active.len(),
        active.join("\n")
    );
}
