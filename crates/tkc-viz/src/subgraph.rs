//! Small-subgraph drawings: the detail panels of Figures 7, 8(c-e) and 12
//! — an extracted clique or bridge structure laid out on a circle, with
//! black intra-group and red inter-group edges and optional vertex labels.

use tkc_graph::{EdgeId, Graph, VertexId};

use crate::svg::SvgDocument;

/// Visual classification of an edge in a subgraph drawing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeClass {
    /// Drawn thin and black (intra-group / original).
    Normal,
    /// Drawn thicker and red (inter-group / newly added).
    Highlight,
    /// Not drawn.
    Hidden,
}

/// Renders the subgraph induced by `vertices` on a circular layout.
///
/// * `labels` — optional text per vertex (aligned with `vertices`); the
///   vertex id is used otherwise;
/// * `classify` — edge → [`EdgeClass`], e.g. red for inter-complex edges.
pub fn render_subgraph<F>(
    g: &Graph,
    vertices: &[VertexId],
    labels: Option<&[String]>,
    classify: F,
    size: u32,
) -> String
where
    F: Fn(EdgeId) -> EdgeClass,
{
    let mut doc = SvgDocument::new(size, size);
    let n = vertices.len().max(1);
    let cx = size as f64 / 2.0;
    let cy = size as f64 / 2.0;
    let r = size as f64 / 2.0 - 40.0;
    let pos = |i: usize| -> (f64, f64) {
        let angle = std::f64::consts::TAU * (i as f64) / (n as f64) - std::f64::consts::FRAC_PI_2;
        (cx + r * angle.cos(), cy + r * angle.sin())
    };
    doc.rect(0.0, 0.0, size as f64, size as f64, "#ffffff");

    // Edges first so vertices draw on top.
    for (i, &u) in vertices.iter().enumerate() {
        for (j, &v) in vertices.iter().enumerate().skip(i + 1) {
            if let Some(e) = g.edge_between(u, v) {
                let (x1, y1) = pos(i);
                let (x2, y2) = pos(j);
                match classify(e) {
                    EdgeClass::Normal => {
                        doc.line(x1, y1, x2, y2, "#333333", 1.0);
                    }
                    EdgeClass::Highlight => {
                        doc.line(x1, y1, x2, y2, "#dc2626", 2.0);
                    }
                    EdgeClass::Hidden => {}
                }
            }
        }
    }
    for (i, &v) in vertices.iter().enumerate() {
        let (x, y) = pos(i);
        doc.circle(x, y, 9.0, "#eff6ff", "#1d4ed8");
        let label = labels
            .and_then(|ls| ls.get(i).cloned())
            .unwrap_or_else(|| v.to_string());
        doc.text(x + 11.0, y + 4.0, 11, "#111111", &label);
    }
    doc.finish()
}

/// Convenience: draw a structure with "new"/inter-group edges highlighted
/// by a boolean predicate.
pub fn render_structure(
    g: &Graph,
    vertices: &[VertexId],
    is_highlight: impl Fn(EdgeId) -> bool,
    size: u32,
) -> String {
    render_subgraph(
        g,
        vertices,
        None,
        |e| {
            if is_highlight(e) {
                EdgeClass::Highlight
            } else {
                EdgeClass::Normal
            }
        },
        size,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tkc_graph::generators;

    #[test]
    fn draws_all_clique_edges_and_vertices() {
        let g = generators::complete(5);
        let vs: Vec<VertexId> = (0..5u32).map(VertexId).collect();
        let svg = render_structure(&g, &vs, |_| false, 300);
        assert_eq!(svg.matches("<circle").count(), 5);
        // 10 clique edges + 0 axes (subgraph drawings have no axes).
        assert_eq!(svg.matches("<line").count(), 10);
        assert!(svg.contains("#333333"));
    }

    #[test]
    fn highlights_classified_edges() {
        let mut g = generators::complete(4);
        let bridge = g.add_vertex();
        g.add_edge(VertexId(0), bridge).unwrap();
        let vs: Vec<VertexId> = (0..5u32).map(VertexId).collect();
        let special = g.edge_between(VertexId(0), bridge).unwrap();
        let svg = render_structure(&g, &vs, |e| e == special, 300);
        assert_eq!(svg.matches("#dc2626").count(), 1);
    }

    #[test]
    fn labels_override_ids() {
        let g = generators::complete(3);
        let vs: Vec<VertexId> = (0..3u32).map(VertexId).collect();
        let labels: Vec<String> = ["PRE1", "RPN11", "RPN12"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let svg = render_subgraph(&g, &vs, Some(&labels), |_| EdgeClass::Normal, 240);
        assert!(svg.contains("PRE1"));
        assert!(svg.contains("RPN12"));
    }

    #[test]
    fn hidden_edges_are_omitted() {
        let g = generators::complete(4);
        let vs: Vec<VertexId> = (0..4u32).map(VertexId).collect();
        let svg = render_subgraph(&g, &vs, None, |_| EdgeClass::Hidden, 200);
        assert_eq!(svg.matches("<line").count(), 0);
        assert_eq!(svg.matches("<circle").count(), 4);
    }
}
