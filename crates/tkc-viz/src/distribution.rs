//! κ-distribution charts: histogram and complementary CDF of the edge
//! density values — the aggregate companions to the per-vertex density
//! plots, useful for comparing datasets and for spotting the heavy tail
//! that makes the bucket-queue peel linear in practice.

use std::fmt::Write as _;

use crate::svg::SvgDocument;

/// Renders a κ histogram (`hist[k]` = number of edges with κ = k`) as a
/// log-scaled bar chart.
pub fn render_kappa_histogram(hist: &[usize], title: &str, width: u32, height: u32) -> String {
    let mut doc = SvgDocument::new(width, height);
    let w = width as f64;
    let h = height as f64;
    let (ml, mr, mt, mb) = (46.0, 10.0, 26.0, 30.0);
    doc.rect(0.0, 0.0, w, h, "#ffffff");
    doc.text(ml, 16.0, 12, "#111111", title);
    doc.line(ml, mt, ml, h - mb, "#888888", 1.0);
    doc.line(ml, h - mb, w - mr, h - mb, "#888888", 1.0);

    let n = hist.len().max(1);
    let max_count = hist.iter().copied().max().unwrap_or(1).max(1);
    let log_max = (max_count as f64).ln_1p();
    let band = (w - ml - mr) / n as f64;
    for (k, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let bar_h = (h - mt - mb) * (count as f64).ln_1p() / log_max;
        let x = ml + band * k as f64 + band * 0.1;
        doc.rect(x, h - mb - bar_h, band * 0.8, bar_h, "#2563eb");
    }
    // Sparse x labels.
    let step = (n / 8).max(1);
    for k in (0..n).step_by(step) {
        doc.text(
            ml + band * k as f64,
            h - mb + 14.0,
            10,
            "#444444",
            &k.to_string(),
        );
    }
    doc.text(2.0, mt + 6.0, 10, "#444444", &max_count.to_string());
    doc.text(2.0, h - mb, 10, "#444444", "0");
    doc.finish()
}

/// The complementary CDF of κ: `ccdf[k]` = fraction of edges with κ ≥ k.
pub fn kappa_ccdf(hist: &[usize]) -> Vec<f64> {
    let total: usize = hist.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(hist.len());
    let mut at_least = total;
    for &c in hist {
        out.push(at_least as f64 / total as f64);
        at_least -= c;
    }
    out
}

/// Serializes histogram + CCDF as TSV: `kappa  count  ccdf`.
pub fn distribution_tsv(hist: &[usize]) -> String {
    let ccdf = kappa_ccdf(hist);
    let mut out = String::from("kappa\tcount\tccdf\n");
    for (k, &c) in hist.iter().enumerate() {
        writeln!(out, "{k}\t{c}\t{:.6}", ccdf.get(k).copied().unwrap_or(0.0))
            .expect("String writes are infallible");
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn ccdf_is_monotone_and_anchored() {
        let hist = [10usize, 5, 3, 2];
        let ccdf = kappa_ccdf(&hist);
        assert_eq!(ccdf[0], 1.0);
        assert!(ccdf.windows(2).all(|w| w[0] >= w[1]));
        assert!((ccdf[3] - 0.1).abs() < 1e-12);
        assert!(kappa_ccdf(&[]).is_empty());
        assert!(kappa_ccdf(&[0, 0]).is_empty());
    }

    #[test]
    fn histogram_svg_draws_nonzero_bars_only() {
        let svg = render_kappa_histogram(&[5, 0, 3, 1], "test", 400, 200);
        // Background + 3 bars.
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("test"));
    }

    #[test]
    fn tsv_rows_match_histogram_length() {
        let tsv = distribution_tsv(&[2, 1, 1]);
        assert_eq!(tsv.lines().count(), 4);
        assert!(tsv.lines().nth(1).unwrap().starts_with("0\t2\t1.0"));
    }

    #[test]
    fn real_decomposition_roundtrip() {
        use tkc_core::decompose::triangle_kcore_decomposition;
        let g = tkc_graph::generators::connected_caveman(3, 6);
        let d = triangle_kcore_decomposition(&g);
        let hist = d.histogram();
        let ccdf = kappa_ccdf(&hist);
        assert_eq!(ccdf[0], 1.0);
        let svg = render_kappa_histogram(&hist, "caveman", 500, 220);
        assert!(svg.starts_with("<svg"));
    }
}
